"""Ablation A2: property-driven dynamic dispatch on vs off.

Section 5.1's point is that run-time property tracking lets the kernel
choose cheaper implementations (sync/merge/datavector variants instead
of generic hash ones).  We run the full TPC-D query mix with the
optimizer's dynamic dispatch disabled and compare fault totals and the
implementation histogram.
"""

from repro.bench import format_table
from repro.monet.buffer import BufferManager, use
from repro.monet.optimizer import Optimizer, get_optimizer
from repro.monet.optimizer import use as use_optimizer
from repro.tpcd import QUERIES

MIX = (1, 3, 4, 6, 10, 13)


def _run_mix(db):
    for number in MIX:
        QUERIES[number].run(db)


def test_dispatch_on(benchmark, tpcd_db):
    manager = BufferManager()
    dynamic = Optimizer(dynamic=True)

    def run():
        manager.evict_all()
        for registry in tpcd_db.kernel.registries.values():
            registry.invalidate()
        with use(manager), use_optimizer(dynamic):
            _run_mix(tpcd_db)
        return manager.faults

    faults = benchmark(run)
    print("\ndynamic dispatch ON: %d faults" % faults)
    _print_histogram(dynamic)


def test_dispatch_off(benchmark, tpcd_db):
    manager = BufferManager()
    static = Optimizer(dynamic=False)

    def run():
        manager.evict_all()
        with use(manager), use_optimizer(static):
            _run_mix(tpcd_db)
        return manager.faults

    faults = benchmark(run)
    print("\ndynamic dispatch OFF: %d faults" % faults)
    _print_histogram(static)

    dynamic = Optimizer(dynamic=True)
    on_manager = BufferManager()
    for registry in tpcd_db.kernel.registries.values():
        registry.invalidate()
    with use(on_manager), use_optimizer(dynamic):
        _run_mix(tpcd_db)
    print("dispatch on vs off faults: %d vs %d"
          % (on_manager.faults, faults))
    assert on_manager.faults <= faults


def _print_histogram(optimizer):
    rows = sorted(optimizer.stats.items())
    print(format_table(["op:impl", "count"], rows,
                       title="implementation histogram"))
