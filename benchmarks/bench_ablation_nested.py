"""Ablation A3: flattened nested-set selection vs per-set iteration.

Section 4.3.2: "instead of executing repeated selections for each
nested set, we can do all work together in one selection on the
flattened representation."  We compare the rewriter's one-shot
flattened plan for a selection on ``Supplier.supplies`` against a
naive per-owner loop (what a non-flattened object engine would do).
"""

from repro.moa.values import Bag, Row, sequences_equivalent

QUERY = ("project[<name : name, "
         "select[<(%available, 500)](%supplies) : low>](Supplier)")


def test_flattened_nested_selection(benchmark, tpcd_db):
    rows = benchmark(lambda: tpcd_db.query(QUERY).rows)
    assert len(rows) == len(tpcd_db.flat.data["Supplier"])


def test_per_set_iteration(benchmark, tpcd_db, dataset):
    """The naive semantics: loop over owners, filter each set."""

    def naive():
        out = []
        for oid in sorted(dataset.data["Supplier"]):
            record = dataset.data["Supplier"][oid]
            low = [Row(list(e.items())) for e in record["supplies"]
                   if e["available"] < 500]
            out.append(Row([("name", record["name"]),
                            ("low", Bag(low))]))
        return out

    naive_rows = benchmark(naive)
    flattened = tpcd_db.query(QUERY).rows
    assert len(naive_rows) == len(flattened)
    # same sets come out of both strategies (modulo tuple field
    # representation: compare sizes per supplier)
    naive_sizes = sorted(len(r["low"]) for r in naive_rows)
    flat_sizes = sorted(len(r["low"]) for r in flattened)
    assert naive_sizes == flat_sizes
