"""Ablation A1/A4: semijoin implementation variants + lookup cache.

Section 5.2.1 claims the datavector semijoin "reduces the cost of
multiple semijoins by more than half" in many TPC-D queries.  This
ablation reassembles p value attributes of a selection through each
semijoin implementation and compares simulated fault counts, and
measures the effect of the cached LOOKUP array ("blazed trail") on
repeated semijoins.
"""

import numpy as np
import pytest

from repro.costmodel import build_decomposed
from repro.monet import operators as ops
from repro.monet.buffer import BufferManager, use
from repro.monet.optimizer import Optimizer, use as use_optimizer

N_ROWS = 30_000
N_ATTRS = 8
SELECTIVITY = 0.02
P_ATTRS = 4


@pytest.fixture(scope="module")
def decomposed():
    kernel, attr_names = build_decomposed(N_ROWS, N_ATTRS, seed=3)
    return kernel, attr_names


def _selection(kernel, attr_names):
    bat = kernel.get(attr_names[0])
    values = sorted(int(v) for v in bat.tail.logical())
    hi = values[int(SELECTIVITY * len(values))]
    selected = ops.select_range(bat, None, hi)
    return ops.sort_head(selected)


def _value_phase(kernel, attr_names, selection):
    for attr in range(1, 1 + P_ATTRS):
        ops.semijoin(kernel.get(attr_names[attr]), selection)


def test_datavector_semijoin(benchmark, decomposed):
    kernel, attr_names = decomposed
    selection = _selection(kernel, attr_names)
    manager = BufferManager()

    def run():
        manager.evict_all()
        for registry in kernel.registries.values():
            registry.invalidate()
        with use(manager):
            _value_phase(kernel, attr_names, selection)
        return manager.faults

    faults = benchmark(run)
    impl = _last_impl(kernel, attr_names, selection)
    print("\ndatavector semijoin: %d faults (impl=%s)" % (faults, impl))
    assert impl == "datavectorsemijoin"


def test_hash_semijoin(benchmark, decomposed):
    kernel, attr_names = decomposed
    selection = _selection(kernel, attr_names)
    manager = BufferManager()
    static = Optimizer(dynamic=False)

    def run():
        manager.evict_all()
        with use(manager), use_optimizer(static):
            _value_phase(kernel, attr_names, selection)
        return manager.faults

    faults = benchmark(run)
    print("\nhash semijoin (dispatch off): %d faults" % faults)
    # the fault advantage of the datavector variant (thin vectors,
    # no full scans of left operands)
    dv_manager = BufferManager()
    for registry in kernel.registries.values():
        registry.invalidate()
    with use(dv_manager):
        _value_phase(kernel, attr_names, selection)
    print("datavector vs hash faults: %d vs %d"
          % (dv_manager.faults, faults))
    assert dv_manager.faults < faults


def test_lookup_cache_blazed_trail(benchmark, decomposed):
    """A4: repeated semijoins against one selection reuse the LOOKUP."""
    kernel, attr_names = decomposed
    selection = _selection(kernel, attr_names)
    registry = kernel.registries["T"]

    def run_pair():
        registry.invalidate()
        first = BufferManager()
        with use(first):
            ops.semijoin(kernel.get(attr_names[1]), selection)
        second = BufferManager()
        with use(second):
            ops.semijoin(kernel.get(attr_names[2]), selection)
        return first.faults, second.faults

    first_faults, second_faults = benchmark(run_pair)
    print("\nfirst dv-semijoin: %d faults, second (cached trail): %d"
          % (first_faults, second_faults))
    assert second_faults < first_faults


def _last_impl(kernel, attr_names, selection):
    from repro.monet.optimizer import get_optimizer
    ops.semijoin(kernel.get(attr_names[1]), selection)
    return get_optimizer().last.get("semijoin")
