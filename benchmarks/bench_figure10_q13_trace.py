"""Figure 10 (and Figure 5): the detailed Q13 execution trace.

Prints the MIL translation of the paper's example query Q13 (the
Figure 5 tree, as a straight-line program) and its per-statement
execution trace with elapsed milliseconds and simulated page faults —
the format of Figure 10.  Also checks the paper's "blazed trail"
claim: the second and third datavector semijoins against the same
selection reuse the cached LOOKUP array and are much cheaper than the
first.
"""

from repro.monet.buffer import BufferManager, use
from repro.tpcd import QUERIES


def test_q13_trace(benchmark, tpcd_db, dataset):
    query = QUERIES[13]
    text = query.texts()[0]
    print("\nMOA (paper section 4.1 example):\n%s" % text)
    print("MIL translation (Figure 5 as a program):")
    print(tpcd_db.mil_text(text))

    manager = BufferManager(page_size=4096)

    def run_traced():
        manager.evict_all()
        with use(manager):
            return tpcd_db.query(text)

    result = benchmark.pedantic(run_traced, rounds=2, iterations=1,
                                warmup_rounds=1)
    print("\nFigure 10: Q13 detailed Monet execution results")
    print(result.trace.format_table())
    assert result.trace.total_faults > 0


def test_blazed_trail(benchmark, tpcd_db):
    """Lines 10-11 of Figure 10 are cheap because line 3 already
    blazed the trail into the extent: lookups are computed once per
    right operand and then reused."""
    registries = tpcd_db.kernel.registries
    item_registry = registries["Item"]
    before_computed = item_registry.lookups_computed
    before_reused = item_registry.lookups_reused
    benchmark.pedantic(QUERIES[13].run, args=(tpcd_db,), rounds=1,
                       iterations=1)
    computed = item_registry.lookups_computed - before_computed
    reused = item_registry.lookups_reused - before_reused
    print("\ndatavector LOOKUP arrays: computed=%d reused=%d"
          % (computed, reused))
    assert reused >= computed, \
        "expected the Q13 value phase to reuse cached LOOKUP arrays"
