"""Figure 8: select-project IO cost, relational vs datavector.

Regenerates the paper's cost curves (page faults vs selectivity for
p in {1,3,6,9,12} against the relational strategy, n=16, X=6e6, w=4,
B=4096) and checks the published crossover (s ~ 0.004 at p=3).
"""

from repro.bench import ascii_chart, format_table
from repro.costmodel import (CostModelParams, crossover, e_dv, e_rel,
                             figure8_series)

PARAMS = CostModelParams(n_rows=6_000_000, n_attrs=16, width=4,
                         page_size=4096)


def test_figure8_series(benchmark):
    grid, series = benchmark(figure8_series, PARAMS)
    assert len(grid) == 61
    assert set(series) == {"Erel(n=16)", "Edv(p=1,n=16)",
                           "Edv(p=3,n=16)", "Edv(p=6,n=16)",
                           "Edv(p=9,n=16)", "Edv(p=12,n=16)"}
    # the figure's qualitative content: at moderate selectivity the
    # datavector strategy beats the relational one for small p ...
    assert e_dv(0.02, 3, PARAMS) < e_rel(0.02, PARAMS)
    # ... but loses at very low selectivity (paper section 6.2)
    assert e_dv(0.001, 3, PARAMS) > e_rel(0.001, PARAMS)
    _print_figure8(grid, series)


def test_crossover_matches_paper(benchmark):
    point = benchmark(crossover, 3, PARAMS)
    # "the crossover point for n=16, p=3 is at s ~ 0.004"
    assert point is not None
    assert 0.003 <= point <= 0.006
    print("\ncrossover(p=3, n=16) = %.4f   (paper: ~0.004)" % point)


def _print_figure8(grid, series):
    sample_points = [0.0, 0.004, 0.01, 0.02, 0.03]
    rows = []
    for s in sample_points:
        rows.append([
            "%.3f" % s,
            round(e_rel(s, PARAMS)),
            round(e_dv(s, 1, PARAMS)),
            round(e_dv(s, 3, PARAMS)),
            round(e_dv(s, 6, PARAMS)),
            round(e_dv(s, 9, PARAMS)),
            round(e_dv(s, 12, PARAMS)),
        ])
    print("\n" + format_table(
        ["s", "Erel", "Edv p=1", "Edv p=3", "Edv p=6", "Edv p=9",
         "Edv p=12"], rows,
        title="Figure 8: expected page faults (X=6e6, n=16, w=4, "
              "B=4096)"))
    print("\n" + ascii_chart(grid, series,
                             title="Figure 8 (ASCII rendering)"))
