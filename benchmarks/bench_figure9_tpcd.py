"""Figure 9: the 15 TPC-D queries, flattened Monet vs row-store.

Regenerates the paper's main table: per query, elapsed seconds for the
relational baseline ("DB2" column) and the flattened MOA/Monet engine
("Monet" column), simulated cold-cache page faults for both, the Item
selectivity, and the Figure 9 comment — plus the geometric-mean QppD
row.  Absolute times differ from 1997 hardware (and our SF is
laptop-sized), but the comparison columns reproduce the paper's
*shape*: Monet wins clearly on the fault metric for moderate
selectivities (Q3,4,6,7,9,10,14) and loses where selectivity is very
low or the whole wide table is touched (Q1, Q2, Q11, Q13).
"""

import time

import pytest

from repro.bench import (format_table, geometric_mean,
                         measure_query_faults, measure_rowstore_faults)
from repro.tpcd import QUERIES

_RESULTS = {}


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_query(benchmark, number, tpcd_db, rowstore, dataset):
    query = QUERIES[number]
    params = query.params()

    started = time.perf_counter()
    baseline_rows = rowstore.run(number, params)
    baseline_s = time.perf_counter() - started

    monet_rows = benchmark.pedantic(query.run, args=(tpcd_db,),
                                    rounds=3, iterations=1,
                                    warmup_rounds=1)
    monet_s = min(benchmark.stats.stats.data)

    monet_faults = measure_query_faults(tpcd_db, query)
    rel_faults = measure_rowstore_faults(rowstore, number, params)
    selectivity = query.item_selectivity(dataset)

    def _shape(rows):
        if rows is None:
            return "-"
        if isinstance(rows, (int, float)):
            return "scalar"
        return str(len(rows))

    assert _shape(monet_rows) == _shape(baseline_rows)
    _RESULTS[number] = {
        "rel_s": baseline_s,
        "monet_s": monet_s,
        "rel_faults": rel_faults,
        "monet_faults": monet_faults,
        "select": selectivity,
        "rows": _shape(monet_rows),
        "comment": query.comment,
    }
    if len(_RESULTS) == len(QUERIES):
        _print_figure9()


def _print_figure9():
    rows = []
    for number in sorted(_RESULTS):
        r = _RESULTS[number]
        rows.append([
            "Q%d" % number,
            "%.3f" % r["rel_s"],
            "%.3f" % r["monet_s"],
            r["rel_faults"],
            r["monet_faults"],
            "n.a." if r["select"] is None
            else "%.1f%%" % (100 * r["select"]),
            r["rows"],
            r["comment"],
        ])
    rel_rate = geometric_mean([r["rel_s"] for r in _RESULTS.values()])
    monet_rate = geometric_mean([r["monet_s"]
                                 for r in _RESULTS.values()])
    rel_frate = geometric_mean([max(1, r["rel_faults"])
                                for r in _RESULTS.values()])
    monet_frate = geometric_mean([max(1, r["monet_faults"])
                                  for r in _RESULTS.values()])
    rows.append(["QppD(geo)", "%.3f" % rel_rate, "%.3f" % monet_rate,
                 round(rel_frate), round(monet_frate), "", "",
                 "geometric means (paper: 43.8 vs 59.1 q/h)"])
    print("\n" + format_table(
        ["Qx", "rel s", "monet s", "rel faults", "monet faults",
         "Item sel%", "rows", "comment"], rows,
        title="Figure 9: TPC-D results (baseline row-store vs "
              "flattened MOA-on-Monet)"))
    monet_wins = sum(1 for r in _RESULTS.values()
                     if r["monet_faults"] < r["rel_faults"])
    print("Monet wins on the fault metric for %d/15 queries"
          % monet_wins)
