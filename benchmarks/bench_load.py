"""Figure 9's load row: bulk load, accelerator creation, reorder.

The paper reports 1:28 h ascii import, ~0.5 h extent/datavector
creation and ~1 h tail reordering for 1 GB, with the database
occupying 1.6 GB (1.3 GB base + 300 MB vectors).  This benchmark
reproduces the three-phase pipeline at our scale and prints the same
breakdown; the *ratio* vectors/base (~23% in the paper) is checked to
land in the same region.
"""

from repro.tpcd import generate, load_tpcd

from conftest import SCALE, SEED


def test_load_phases(benchmark):
    dataset = generate(scale=SCALE, seed=SEED)

    def load():
        _db, report = load_tpcd(dataset)
        return report

    report = benchmark.pedantic(load, rounds=2, iterations=1)
    print("\n" + report.format_table())
    assert report.load_s > 0
    assert report.total_bytes > 0
    ratio = report.vector_bytes / max(1, report.base_bytes)
    print("vectors/base ratio = %.2f (paper: 300MB/1.3GB = 0.23)"
          % ratio)
    assert 0.05 < ratio < 0.8


def test_generate(benchmark):
    dataset = benchmark.pedantic(generate, args=(SCALE,),
                                 kwargs={"seed": SEED}, rounds=2,
                                 iterations=1)
    assert dataset.counts["item"] > 0
