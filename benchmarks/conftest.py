"""Shared fixtures for the benchmark suite.

The TPC-D scale factor is configurable through the environment
variable ``REPRO_TPCD_SF`` (default 0.002 — roughly 12 k line items,
seconds-scale benchmarks).  The paper's runs used SF = 1 (6 M line
items) on 1997 hardware; the *shape* of the results is scale-free,
which is what EXPERIMENTS.md compares.
"""

import os

import pytest

from repro.tpcd import RowStore, generate, load_tpcd

SCALE = float(os.environ.get("REPRO_TPCD_SF", "0.002"))
SEED = int(os.environ.get("REPRO_TPCD_SEED", "42"))


@pytest.fixture(scope="session")
def dataset():
    return generate(scale=SCALE, seed=SEED)


@pytest.fixture(scope="session")
def tpcd_db(dataset):
    db, _report = load_tpcd(dataset)
    return db


@pytest.fixture(scope="session")
def rowstore(dataset):
    return RowStore(dataset)
