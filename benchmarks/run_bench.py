"""Thin wrapper so the harness runs from the benchmarks directory.

Equivalent to ``PYTHONPATH=src python -m repro.bench.run`` but
bootstraps ``src/`` onto ``sys.path`` itself; see
:mod:`repro.bench.run` for the flags (``--sf``, ``--reps``,
``--quick``, ``--out``, ``--db-dir``, ``--validate``, ``--workers``)
and the ``BENCH_operators.json`` format.
"""

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench.run import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    sys.exit(main())
