"""The datavector accelerator and dynamic dispatch (section 5).

Shows the kernel choosing semijoin implementations at run time based
on operand state (section 5.1/5.2.1): datavector semijoin when the
left operand carries a datavector, merge semijoin on ordered heads,
sync semijoin on aligned operands — and the "blazed trail": the
cached LOOKUP array makes repeated semijoins against one selection
nearly free.

Run:  python examples/datavector_demo.py
"""

from repro.costmodel import build_decomposed
from repro.monet import operators as ops
from repro.monet.buffer import BufferManager, use
from repro.monet.optimizer import Optimizer, get_optimizer
from repro.monet.optimizer import use as use_optimizer

N_ROWS = 20_000
SELECTIVITY = 0.01


def main():
    kernel, attr_names = build_decomposed(N_ROWS, n_attrs=6, seed=11)
    select_bat = kernel.get(attr_names[0])

    # selection phase: binary search on the tail-sorted attribute BAT
    values = sorted(int(v) for v in select_bat.tail.logical())
    hi = values[int(SELECTIVITY * len(values))]
    selection = ops.sort_head(ops.select_range(select_bat, None, hi))
    print("selected %d of %d oids (s = %.3f)"
          % (len(selection), N_ROWS, len(selection) / N_ROWS))
    print("select impl chosen: %s"
          % get_optimizer().last.get("select"))

    # value phase: semijoins choose the datavector implementation
    print("\n--- value phase: dynamic dispatch ---")
    manager = BufferManager()
    with use(manager):
        first = ops.semijoin(kernel.get(attr_names[1]), selection)
    print("semijoin impl: %s, faults: %d, result: %d BUNs"
          % (get_optimizer().last["semijoin"], manager.faults,
             len(first)))

    # the blazed trail: the LOOKUP array is cached per right operand
    manager = BufferManager()
    with use(manager):
        second = ops.semijoin(kernel.get(attr_names[2]), selection)
    print("second semijoin (cached LOOKUP): faults: %d" % manager.faults)

    # the two results are synced: multiplex runs positionally
    from repro.monet.properties import synced
    print("results synced: %s" % synced(first, second))
    product = ops.multiplex("*", first, second)
    print("multiplex [*] impl: %s (%d BUNs)"
          % (get_optimizer().last["multiplex"], len(product)))

    # sync semijoin: semijoining a result against an operand it is
    # already aligned with degenerates to a copy
    third = ops.semijoin(first, first)
    print("self-semijoin impl: %s" % get_optimizer().last["semijoin"])
    assert len(third) == len(first)

    # ablation: force the generic implementations
    print("\n--- same plan with dynamic dispatch disabled ---")
    manager = BufferManager()
    static = Optimizer(dynamic=False)
    with use(manager), use_optimizer(static):
        ops.semijoin(kernel.get(attr_names[1]), selection)
        ops.semijoin(kernel.get(attr_names[2]), selection)
    print("generic hash semijoins: faults: %d" % manager.faults)
    print("impl histogram: %s" % dict(static.stats))


if __name__ == "__main__":
    main()
