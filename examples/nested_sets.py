"""Nested sets: the section 4.3.2 example, in full.

"Assume that we want to retrieve, for each supplier, the set of parts
that are out of stock, so that available is equal to 0" — the paper's
own nested-set query, run against a generated TPC-D database.  The
point demonstrated: the flattened representation executes ONE
selection over all suppliers' sets at once, instead of a selection per
supplier; the emitted MIL program shows this (a single select +
semijoin pair over the flattened supplies BATs).

Run:  python examples/nested_sets.py
"""

from repro.tpcd import generate, load_tpcd

# the paper's query (section 4.3.2), modulo our threshold: DBGEN never
# produces available == 0, so "nearly out of stock" (< 200) is used
QUERY = """
project[<%name,
         select[<(%available, 200)](%supplies) : out_of_stock>](Supplier)
"""

UNNEST_QUERY = """
sort[cost asc](
 project[<%1.name : supplier, %2.part.name : part, %2.cost : cost>](
  select[<(%2.available, 200)](unnest[supplies](Supplier))))
"""


def main():
    dataset = generate(scale=0.001, seed=1)
    db, _report = load_tpcd(dataset)

    print("=== the paper's nested-set selection (section 4.3.2) ===")
    print(QUERY)
    print("--- MIL: one flattened selection for ALL suppliers ---")
    print(db.mil_text(QUERY))
    result = db.query(QUERY)
    shown = 0
    for row in result.rows:
        if len(row["out_of_stock"]) and shown < 5:
            print("  %s -> %d low-stock supply entries"
                  % (row["name"], len(row["out_of_stock"])))
            shown += 1

    print("\n=== the same data unnested into pairs ===")
    print(UNNEST_QUERY)
    rows = db.query(UNNEST_QUERY).rows
    for row in rows[:8]:
        print("  ", row)
    print("  ... (%d rows)" % len(rows))

    # both formulations agree with the reference evaluator (Figure 6)
    db.check_commutes(QUERY)
    db.check_commutes(UNNEST_QUERY)
    print("\nFigure 6 commuting diagram holds for both queries.")


if __name__ == "__main__":
    main()
