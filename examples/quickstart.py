"""Quickstart: define a schema, load objects, run MOA queries.

Shows the full pipeline of the paper on a tiny music database:
schema definition -> vertical decomposition into BATs (section 3.3)
-> textual MOA queries (section 4.1) -> MIL translation (section 4.3)
-> results, with the MIL program printed so you can see the
flattening at work.

Run:  python examples/quickstart.py
"""

from repro.moa import MOADatabase, Schema, ref, setof
from repro.moa.types import DOUBLE, INT, STRING


def build_schema():
    schema = Schema()
    schema.define("Label", [
        ("name", STRING),
        ("country", STRING),
    ])
    schema.define("Artist", [
        ("name", STRING),
        ("label", ref("Label")),
        ("ratings", setof(INT)),          # a nested set of base values
    ])
    schema.define("Album", [
        ("title", STRING),
        ("artist", ref("Artist")),
        ("year", INT),
        ("price", DOUBLE),
    ])
    return schema


DATA = {
    "Label": {
        0: {"name": "Blue Note", "country": "US"},
        1: {"name": "ECM", "country": "DE"},
    },
    "Artist": {
        0: {"name": "Monk", "label": 0, "ratings": [9, 10, 8]},
        1: {"name": "Jarrett", "label": 1, "ratings": [10, 9]},
        2: {"name": "Hancock", "label": 0, "ratings": [8, 8, 9]},
    },
    "Album": {
        0: {"title": "Genius of Modern Music", "artist": 0,
            "year": 1951, "price": 18.99},
        1: {"title": "The Koeln Concert", "artist": 1, "year": 1975,
            "price": 24.50},
        2: {"title": "Maiden Voyage", "artist": 2, "year": 1965,
            "price": 15.00},
        3: {"title": "Empyrean Isles", "artist": 2, "year": 1964,
            "price": 14.00},
    },
}


def main():
    db = MOADatabase(build_schema())
    db.load(DATA)
    db.build_accelerators()     # datavectors + tail reorder (section 6)

    print("=== catalog (vertical decomposition, Figure 3) ===")
    for name in db.kernel.names():
        print("  %-18s %s" % (name, db.kernel.get(name).signature()))

    queries = [
        # selection with reference navigation (the Q13 pattern)
        'select[=(artist.label.name, "Blue Note")](Album)',
        # projection with computed values
        'project[<title : title, *(price, 0.9) : sale_price>](Album)',
        # grouping + aggregation (SQL GROUP BY = MOA nest, section 1)
        "project[<name : artist, count(%group) : albums>]"
        "(nest[artist.name : name](Album))",
        # one-shot selection on nested sets (section 4.3.2)
        "project[<%name, select[>=(%0, 9)](%ratings) : top_marks>]"
        "(Artist)",
        # ordering extension
        "top[2](sort[price desc](Album))",
    ]
    for text in queries:
        print("\n=== MOA ===\n%s" % text)
        print("--- MIL translation ---")
        print(db.mil_text(text))
        result = db.query(text)
        print("--- result ---")
        for row in result.rows:
            print("  ", row)
        # the Figure 6 commuting diagram, checked live
        db.check_commutes(text)
        print("(reference evaluator agrees)")


if __name__ == "__main__":
    main()
