"""Query-service smoke: concurrent clients vs an independent serial run.

Starts ``python -m repro.server`` as a real subprocess on a saved
TPC-D catalog, fans ``--clients`` concurrent :class:`QueryClient`
connections over the **full query set**, and diffs every returned
sha1 checksum against a serial execution computed independently in
this process.  Single-statement queries are additionally issued as
textual Moa requests a second time, so the server's per-worker plan
cache demonstrably engages (the run fails if the stats response shows
zero plan-cache hits).  Every query is also submitted a third time as
**SQL text** over the socket (:mod:`repro.sql.suite`'s formulation),
asserting the SQL front-end's served checksum equals the Moa path's —
on both wire formats when the fleet is split — and one client checks
that malformed SQL answers a typed ``SqlParseError`` frame and an
unsupported construct a ``SqlUnsupportedError`` frame, with the
connection surviving both.

``--wire`` picks the client wire format: ``json``, ``binary``, or
``both`` (default), which splits the client fleet between the two
formats so a single run diffs binary-wire checksums against
JSON-wire checksums against the serial run.  ``--spool DIR`` starts
the server with a local spool directory and makes every client opt
into the mmap spool fast path (threshold 0, so each result payload
ships as a spool file).

This is both the README's client example and the CI server-smoke job::

    python examples/serve_smoke.py --db-dir /tmp/tpcd-db --clients 4

A missing ``--db-dir`` is built at ``--sf`` first (dbgen + load +
save), so the script is self-contained.  Exit status 0 = every
checksum matched.
"""

import argparse
import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.errors import SqlParseError, SqlUnsupportedError
from repro.monet.multiproc import result_checksum, ship_value
from repro.server import QueryClient
from repro.sql.suite import sql_text
from repro.tpcd import (QUERIES, generate, load_tpcd, open_tpcd,
                        peek_tpcd_meta)


def ensure_db(db_dir, sf, seed):
    meta = peek_tpcd_meta(db_dir)
    if meta is not None:
        print("using saved catalog %s (sf=%s, seed=%s)"
              % (db_dir, meta.get("scale"), meta.get("seed")))
        return
    print("building catalog %s at sf=%s ..." % (db_dir, sf))
    dataset = generate(scale=sf, seed=seed)
    load_tpcd(dataset, db_dir=db_dir)


def serial_checksums(db_dir):
    """Independent serial run: open our own kernel, execute, digest."""
    db, _report = open_tpcd(db_dir)
    checksums = {}
    for number in sorted(QUERIES):
        checksums[number] = result_checksum(
            ship_value(QUERIES[number].run(db)))
    return checksums


def start_server(db_dir, procs, tmp_dir, spool_dir=None,
                 result_cache_bytes=0):
    port_file = os.path.join(tmp_dir, "server.port")
    command = [sys.executable, "-m", "repro.server", "--db-dir",
               str(db_dir), "--port", "0", "--procs", str(procs),
               "--port-file", port_file]
    if spool_dir:
        command += ["--spool-dir", str(spool_dir),
                    "--spool-threshold", "0"]
    if result_cache_bytes:
        command += ["--result-cache-bytes", str(result_cache_bytes)]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60.0
    while not os.path.exists(port_file):
        if process.poll() is not None or time.monotonic() > deadline:
            # kill before reading: draining stdout of a live process
            # would block on a pipe that never reaches EOF
            process.kill()
            try:
                output = process.communicate(timeout=10)[0] or ""
            except subprocess.TimeoutExpired:
                output = ""
            raise RuntimeError("server did not come up:\n" + output)
        time.sleep(0.05)
    with open(port_file) as handle:
        host, port = handle.read().split()
    return process, host, int(port)


def client_pass(host, port, expected, failures, latencies, lock, tid,
                wire="json", spool=False):
    try:
        with QueryClient(host, port, wire=wire, spool=spool,
                         spool_threshold=0 if spool else None) as client:
            if client.wire != wire:
                raise AssertionError(
                    "client %d asked for the %s wire but negotiated "
                    "%s" % (tid, wire, client.wire))
            for number in sorted(QUERIES):
                texts = QUERIES[number].texts()
                replies = [client.tpcd(number)]
                if len(texts) == 1:
                    # second lap as raw Moa text: same checksum, and
                    # repeated texts warm the per-worker plan cache
                    replies.append(client.moa(texts[0]))
                # third lap as SQL text: the front-end must serve the
                # very checksum the Moa path does, over this wire
                replies.append(client.sql(sql_text(number)))
                for reply in replies:
                    if reply.checksum != expected[number]:
                        raise AssertionError(
                            "Q%d diverged on client %d (%s wire): "
                            "served %s, serial %s"
                            % (number, tid, wire, reply.checksum,
                               expected[number]))
                    if spool and not reply.spooled:
                        raise AssertionError(
                            "client %d opted into spooling but Q%d "
                            "arrived inline" % (tid, number))
                    with lock:
                        latencies.append(reply.service_ms)
            if tid == 0:
                _check_sql_errors(client)
    except BaseException as exc:                # noqa: BLE001
        with lock:
            failures.append((tid, exc))


def _check_sql_errors(client):
    """Malformed and unsupported SQL must answer typed error frames
    (re-raised client-side as the matching exception) and leave the
    connection fully usable."""
    try:
        client.sql("select frum lineitem")
    except SqlParseError:
        pass
    else:
        raise AssertionError("malformed SQL did not raise a typed "
                             "SqlParseError over the wire")
    try:
        client.sql("select rank() over (order by l_quantity) "
                   "from lineitem")
    except SqlUnsupportedError:
        pass
    else:
        raise AssertionError("a window function did not raise a typed "
                             "SqlUnsupportedError over the wire")
    client.ping()           # the connection survived both errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--db-dir", required=True)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument("--sf", type=float, default=0.0005,
                        help="scale factor when the catalog must be "
                             "built first")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--wire", choices=("both", "json", "binary"),
                        default="both",
                        help="client wire format; 'both' splits the "
                             "fleet so binary checksums are diffed "
                             "against json checksums in one run")
    parser.add_argument("--spool", metavar="DIR", default=None,
                        help="serve results through the local mmap "
                             "spool fast path rooted at DIR")
    parser.add_argument("--result-cache-bytes", type=int, default=0,
                        help="byte budget for the server's result "
                             "cache (0 disables)")
    args = parser.parse_args(argv)

    ensure_db(args.db_dir, args.sf, args.seed)
    expected = serial_checksums(args.db_dir)
    print("serial run: %d queries digested" % len(expected))

    process, host, port = start_server(
        args.db_dir, args.procs,
        tempfile.mkdtemp(prefix="serve-smoke-"),
        spool_dir=args.spool,
        result_cache_bytes=args.result_cache_bytes)
    print("server up on %s:%d (pid %d)" % (host, port, process.pid))
    if args.wire == "both":
        # even tids ride the binary wire, odd ones classic JSON
        wires = ["binary" if tid % 2 == 0 else "json"
                 for tid in range(args.clients)]
    else:
        wires = [args.wire] * args.clients
    try:
        failures, latencies = [], []
        lock = threading.Lock()
        started = time.perf_counter()
        threads = [threading.Thread(target=client_pass,
                                    args=(host, port, expected,
                                          failures, latencies, lock,
                                          tid),
                                    kwargs={"wire": wires[tid],
                                            "spool":
                                                args.spool is not None})
                   for tid in range(args.clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        if failures:
            for tid, exc in failures:
                print("client %d FAILED: %r" % (tid, exc))
            return 1
        with QueryClient(host, port) as client:
            stats = client.stats()
        plan = stats["plan_cache"]
        print("%d clients x %d queries: %d verified replies in %.2fs "
              "(%.1f q/s)" % (args.clients, len(expected),
                              len(latencies), wall,
                              len(latencies) / max(wall, 1e-9)))
        print("latency p50/p95/p99: %s/%s/%s ms over last %d"
              % (stats["latency_ms"]["p50"], stats["latency_ms"]["p95"],
                 stats["latency_ms"]["p99"],
                 stats["latency_ms"]["count"]))
        print("plan cache: %(hits)d hits / %(misses)d misses "
              "(hit rate %(hit_rate)s)" % plan)
        print("wire fleet: %d binary, %d json%s"
              % (wires.count("binary"), wires.count("json"),
                 " (spool fast path)" if args.spool else ""))
        if args.result_cache_bytes:
            cache = stats["result_cache"]
            print("result cache: %(hits)d hits, %(bytes)d/"
                  "%(budget_bytes)d bytes (peak %(peak_bytes)d)"
                  % cache)
            if cache["peak_bytes"] > cache["budget_bytes"]:
                print("FAILED: result cache exceeded its byte budget")
                return 1
        print("buffer faults across the fleet: %d"
              % stats["buffer"]["faults"])
        # each client issues each Moa text once and caches are per
        # worker, so a fleet-wide hit is only pigeonhole-guaranteed
        # when more clients than workers executed each text
        if args.clients > args.procs and plan["hits"] == 0:
            print("FAILED: no plan-cache hits observed")
            return 1
        print("OK: every served checksum matches the independent "
              "serial run across all wire modes")
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
