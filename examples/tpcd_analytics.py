"""TPC-D analytics: the paper's section 6 experiment, end to end.

Generates a scaled TPC-D database, loads it through the section 6
pipeline (bulk load, datavectors, tail reorder), runs the paper's
example query Q13 with a full MIL trace (Figure 10), and then the
whole 15-query mix with timings and simulated page faults (Figure 9).

Run:  python examples/tpcd_analytics.py [scale] [db-dir]

With a ``db-dir`` the loaded database is persisted through the mmap
storage layer: the first run saves it, later runs skip dbgen + load
and reopen the heaps as ``np.memmap`` views (a warm start).
"""

import sys
import time

from repro.monet.buffer import BufferManager, use
from repro.tpcd import QUERIES, generate, load_tpcd, open_tpcd, \
    peek_tpcd_meta


def main(scale=0.001, db_dir=None):
    meta = peek_tpcd_meta(db_dir) if db_dir else None
    if meta is not None and meta.get("scale") == scale \
            and meta.get("seed") == 42:
        print("reopening saved TPC-D database from %s ..." % db_dir)
        db, report = open_tpcd(db_dir)
    else:
        print("generating TPC-D at SF=%g ..." % scale)
        dataset = generate(scale=scale, seed=42)
        print("  %s" % dataset)
        db, report = load_tpcd(dataset, db_dir=db_dir)
    print("\n=== load pipeline (paper section 6) ===")
    print(report.format_table())

    # --- Figure 10: the detailed Q13 trace --------------------------------
    q13 = QUERIES[13]
    text = q13.texts()[0]
    print("\n=== Q13 in MOA (paper section 4.1) ===")
    print(text)
    print("=== MIL translation (Figure 5) ===")
    print(db.mil_text(text))

    manager = BufferManager(page_size=4096)
    with use(manager):
        result = db.query(text)
    print("\n=== Figure 10: detailed execution trace ===")
    print(result.trace.format_table())
    print("result:", result.rows)

    # --- Figure 9: the full query mix --------------------------------------
    print("\n=== Figure 9: all 15 queries ===")
    print("%-4s %9s %8s %7s  %s" % ("Qx", "elapsed_s", "faults",
                                    "rows", "comment"))
    for number in sorted(QUERIES):
        query = QUERIES[number]
        manager = BufferManager(page_size=4096)
        started = time.perf_counter()
        with use(manager):
            rows = query.run(db)
        elapsed = time.perf_counter() - started
        shape = ("scalar" if isinstance(rows, (int, float))
                 else str(len(rows)))
        print("%-4s %9.3f %8d %7s  %s"
              % ("Q%d" % number, elapsed, manager.faults, shape,
                 query.comment))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.001,
         sys.argv[2] if len(sys.argv) > 2 else None)
