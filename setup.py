"""Legacy setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot
build the editable wheel.  This shim lets ``python setup.py develop``
and legacy ``pip install -e .`` paths work offline; all metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
