"""repro — reproduction of "Flattening an Object Algebra to Provide
Performance" (Boncz, Wilschut, Kersten; ICDE 1998).

The package maps the paper's architecture one-to-one:

* :mod:`repro.monet` — the Monet kernel substrate: BATs, the Figure 4
  BAT algebra with run-time dispatched implementations, property
  management, the datavector accelerator, simulated paging, MIL.
* :mod:`repro.moa` — the MOA object data model, its formally
  specified flattening onto BATs, the textual algebra, the MOA->MIL
  term rewriter, and the reference evaluator for the Figure 6
  commuting diagram.
* :mod:`repro.tpcd` — the TPC-D substrate: generator, nested schema,
  Q1-Q15, reference oracle, load pipeline, row-store baseline.
* :mod:`repro.costmodel` — the section 5.2.2 IO cost model.
* :mod:`repro.bench` — shared benchmark harness utilities.

Entry point for most uses::

    from repro.moa import MOADatabase
    from repro.tpcd import generate, load_tpcd, QUERIES
"""

from . import costmodel, faults, moa, monet, tpcd
from .errors import ReproError

__version__ = "0.1.0"

__all__ = ["costmodel", "faults", "moa", "monet", "tpcd",
           "ReproError", "__version__"]
