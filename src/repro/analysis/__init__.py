"""Static analysis over MIL programs and the project tree.

The compiler (MOA -> MIL rewriter) and the query service both emit or
accept straight-line MIL programs; until this layer existed, the only
check on such a program was executing it.  This package provides:

* :mod:`repro.analysis.signatures` — a declarative operator-signature
  registry for every MIL instruction the evaluator dispatches,
  asserted complete against ``repro.monet.mil._OPS``;
* :mod:`repro.analysis.verify` — the plan verifier: per-statement
  type checking against the registry, def-use/liveness analysis, and
  static cardinality/byte bounds seeded from catalog stats and scored
  with the section 5.2.2 IO cost model;
* :mod:`repro.analysis.selfcheck` — an AST lint over the source tree
  enforcing project invariants (fault-point chaos coverage, error
  retryability classification, no bare ``except``, fsync before
  rename in write-temp paths);
* ``python -m repro.analysis`` — the command-line front end linting a
  MOA query file or the whole TPC-D suite, plus ``--selfcheck``.
"""

from .signatures import SIGNATURES, signature_for
from .verify import (Finding, PlanBudget, VerifiedPlan, check_program,
                     catalog_stats_from_kernel,
                     catalog_stats_from_manifest, live_statements,
                     verify_program)

__all__ = [
    "Finding", "PlanBudget", "SIGNATURES", "VerifiedPlan",
    "catalog_stats_from_kernel", "catalog_stats_from_manifest",
    "check_program", "live_statements", "signature_for",
    "verify_program",
]
