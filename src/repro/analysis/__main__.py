"""``python -m repro.analysis`` — the static-analysis front end.

Three modes, combinable with budget knobs:

``--selfcheck``
    Run the project-invariant lint (:mod:`repro.analysis.selfcheck`)
    over the repository tree; non-zero exit on any finding.
``--tpcd``
    Compile every TPC-D query (all phases) against a TPC-D database
    and verify each plan, reporting per-plan findings, static bounds,
    and verifier wall time — the QueryTorque-style per-plan report.
    ``--db-dir`` reopens a saved database (warm, no dbgen); without
    it a tiny dataset is generated in memory.
``FILE``
    Lint one textual MOA query (read from FILE, or ``-`` for stdin)
    against the TPC-D schema.

``--max-rows`` / ``--max-bytes`` / ``--max-pages`` attach a
:class:`~repro.analysis.verify.PlanBudget`, so the same command
answers "would the server admit this plan under budget B?".
Exit status: 0 = clean, 1 = findings/errors.
"""

import argparse
import sys

from . import selfcheck
from .verify import PlanBudget, catalog_stats_from_kernel, verify_program


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="MIL plan verifier and project-invariant linter")
    parser.add_argument("file", nargs="?", default=None,
                        help="MOA query file to lint ('-' = stdin)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="run the project-invariant lint")
    parser.add_argument("--tpcd", action="store_true",
                        help="verify every TPC-D query plan")
    parser.add_argument("--db-dir", default=None,
                        help="saved TPC-D database directory to reopen "
                             "(default: generate a tiny dataset)")
    parser.add_argument("--sf", type=float, default=0.0005,
                        help="scale factor when generating (default "
                             "0.0005)")
    parser.add_argument("--seed", type=int, default=11,
                        help="dbgen seed when generating (default 11)")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="budget: largest intermediate, in BUNs")
    parser.add_argument("--max-bytes", type=int, default=None,
                        help="budget: total materialised bytes")
    parser.add_argument("--max-pages", type=int, default=None,
                        help="budget: total page-fault bound")
    parser.add_argument("--warnings", action="store_true",
                        help="count warnings as failures too")
    return parser


def _budget(args):
    if args.max_rows is None and args.max_bytes is None \
            and args.max_pages is None:
        return None
    return PlanBudget(max_rows=args.max_rows, max_bytes=args.max_bytes,
                      max_pages=args.max_pages)


def _database(args):
    if args.db_dir:
        from ..tpcd import open_tpcd
        db, _report = open_tpcd(args.db_dir)
        return db
    from ..tpcd import load_tpcd
    from ..tpcd.dbgen import generate
    db, _report = load_tpcd(generate(scale=args.sf, seed=args.seed))
    return db


def _report_plan(label, plan, fail_on_warnings):
    errors, warnings = plan.errors, plan.warnings
    status = "FAIL" if errors or (fail_on_warnings and warnings) \
        else "ok"
    bounds = "rows<=%s bytes<=%s pages<=%s" % (
        plan.max_rows if plan.max_rows is not None else "?",
        plan.total_bytes if plan.total_bytes is not None else "?",
        plan.total_pages if plan.total_pages is not None else "?")
    print("%-10s %-4s %3d stmts  %s  %.2fms"
          % (label, status, len(plan.program), bounds, plan.verify_ms))
    for finding in errors + warnings:
        print("    " + finding.render())
    return status == "ok"


def _lint_tpcd(args):
    from ..tpcd import QUERIES
    db = _database(args)
    stats = catalog_stats_from_kernel(db.kernel)
    budget = _budget(args)
    clean = True
    for number in sorted(QUERIES):
        for phase, text in enumerate(QUERIES[number].texts()):
            _resolved, result = db.compile(text)
            plan = verify_program(result.program, catalog=stats,
                                  budget=budget)
            label = "Q%d" % number if phase == 0 \
                else "Q%d.%d" % (number, phase)
            clean &= _report_plan(label, plan, args.warnings)
    return clean


def _lint_file(args):
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    db = _database(args)
    stats = catalog_stats_from_kernel(db.kernel)
    _resolved, result = db.compile(text)
    plan = verify_program(result.program, catalog=stats,
                          budget=_budget(args))
    return _report_plan(args.file, plan, args.warnings)


def _run_selfcheck():
    findings = selfcheck.run_selfcheck()
    for finding in findings:
        print(finding.render())
    print("selfcheck: %d finding(s)" % len(findings))
    return not findings


def main(argv=None):
    args = _parser().parse_args(argv)
    if not (args.selfcheck or args.tpcd or args.file):
        _parser().error("nothing to do: pass --selfcheck, --tpcd, "
                        "or a query file")
    clean = True
    if args.selfcheck:
        clean &= _run_selfcheck()
    if args.tpcd:
        clean &= _lint_tpcd(args)
    if args.file:
        clean &= _lint_file(args)
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
