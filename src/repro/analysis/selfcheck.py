"""AST lint over the source tree: project invariants as CI checks.

Four invariants, each of which has silently broken (or nearly broken)
at least once in this repo's history and is cheap to enforce
mechanically:

1. **Chaos coverage** — every injection point declared via
   ``faults.declare(...)`` in ``src/`` must appear as a string literal
   somewhere in ``tests/chaos/``: a point no chaos test arms is a
   fault path that has never executed.
2. **Error taxonomy** — every exception class defined in
   ``src/repro/errors.py`` must have an entry in ``errors.RETRYABLE``
   (the client's retry policy is a total function over the taxonomy)
   and must be referenced by name somewhere under ``tests/`` (an error
   no test ever mentions is an untested contract).
3. **No bare excepts** — ``except:`` swallows ``KeyboardInterrupt``
   and ``SystemExit``; the narrowest-possible handler is repo policy.
4. **Durable renames** — any function that stages a write through a
   ``*.tmp`` path and publishes it with ``os.replace``/``os.rename``
   must ``fsync`` before the rename, otherwise a crash can leave the
   rename durable while the bytes are not (the storage layer's
   write-temp discipline, enforced everywhere it is imitated).
5. **SQL lowering totality** — the ``_LOWERS`` registry in
   ``src/repro/sql/lower.py`` must cover exactly the node classes in
   ``src/repro/sql/ast.py``'s ``NODE_CLASSES`` tuple, both ways: a
   node the lowering does not dispatch is a construct the parser can
   produce but the back half silently cannot handle (the mirror of
   the MIL interpreter's ``_OPS`` totality assertion).

``run_selfcheck`` returns a list of findings (empty = clean tree);
``python -m repro.analysis --selfcheck`` exits non-zero on any.
"""

import ast
import os

from .verify import Finding

#: repository-relative directories the invariants are scoped to
SRC_DIR = "src"
TESTS_DIR = "tests"
CHAOS_DIR = os.path.join("tests", "chaos")
ERRORS_MODULE = os.path.join("src", "repro", "errors.py")


def repo_root(start=None):
    """The enclosing repository root (the directory holding ``src/``)."""
    here = os.path.abspath(start or os.path.dirname(__file__))
    while True:
        if os.path.isdir(os.path.join(here, SRC_DIR)) and \
                os.path.isfile(os.path.join(here, ERRORS_MODULE)):
            return here
        parent = os.path.dirname(here)
        if parent == here:
            raise RuntimeError("cannot locate the repository root "
                               "(no src/repro/errors.py above %r)"
                               % (start or __file__))
        here = parent


def _python_files(root, subdir):
    base = os.path.join(root, subdir)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _parse(path):
    with open(path, "r", encoding="utf-8") as handle:
        return ast.parse(handle.read(), filename=path)


def _rel(root, path):
    return os.path.relpath(path, root)


def _string_constants(tree):
    return set(node.value for node in ast.walk(tree)
               if isinstance(node, ast.Constant)
               and isinstance(node.value, str))


# ----------------------------------------------------------------------
# invariant 1: chaos coverage of declared fault points
# ----------------------------------------------------------------------
def _declared_fault_points(root):
    """(point, file, line) for every ``faults.declare(...)`` literal."""
    points = []
    for path in _python_files(root, SRC_DIR):
        for node in ast.walk(_parse(path)):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            named = (isinstance(func, ast.Attribute)
                     and func.attr == "declare") or \
                    (isinstance(func, ast.Name)
                     and func.id == "declare")
            if not named:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Constant) and \
                        isinstance(arg.value, str):
                    points.append((arg.value, _rel(root, path),
                                   node.lineno))
    return points


def check_chaos_coverage(root):
    armed = set()
    for path in _python_files(root, CHAOS_DIR):
        armed |= _string_constants(_parse(path))
    findings = []
    for point, rel, line in _declared_fault_points(root):
        if point not in armed:
            findings.append(Finding(
                "error", "unarmed-fault-point", None,
                "%s:%d declares fault point %r but no test in %s/ "
                "arms it" % (rel, line, point, CHAOS_DIR)))
    return findings


# ----------------------------------------------------------------------
# invariant 2: error taxonomy classified and tested
# ----------------------------------------------------------------------
def _error_classes(root):
    tree = _parse(os.path.join(root, ERRORS_MODULE))
    classes = []
    retryable = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            classes.append((node.name, node.lineno))
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if "RETRYABLE" in targets and \
                    isinstance(node.value, ast.Dict):
                retryable = set(
                    key.value for key in node.value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str))
    return classes, retryable


def _names_referenced_in_tests(root):
    names = set()
    for path in _python_files(root, TESTS_DIR):
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.alias):
                names.add(node.name.rpartition(".")[2])
            elif isinstance(node, ast.Constant) and \
                    isinstance(node.value, str):
                names.add(node.value)
    return names


def check_error_taxonomy(root):
    classes, retryable = _error_classes(root)
    referenced = _names_referenced_in_tests(root)
    findings = []
    for name, line in classes:
        if name not in retryable:
            findings.append(Finding(
                "error", "unclassified-error", None,
                "%s:%d defines %s without a RETRYABLE entry — the "
                "client retry policy must be total over the taxonomy"
                % (ERRORS_MODULE, line, name)))
        if name not in referenced:
            findings.append(Finding(
                "error", "untested-error", None,
                "%s:%d defines %s but no test under %s/ references it"
                % (ERRORS_MODULE, line, name, TESTS_DIR)))
    return findings


# ----------------------------------------------------------------------
# invariant 3: no bare excepts
# ----------------------------------------------------------------------
def check_bare_excepts(root):
    findings = []
    for path in _python_files(root, SRC_DIR):
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.ExceptHandler) and \
                    node.type is None:
                findings.append(Finding(
                    "error", "bare-except", None,
                    "%s:%d uses a bare `except:` (swallows "
                    "KeyboardInterrupt/SystemExit)"
                    % (_rel(root, path), node.lineno)))
    return findings


# ----------------------------------------------------------------------
# invariant 4: fsync before publishing a .tmp staging write
# ----------------------------------------------------------------------
def _is_os_call(node, names):
    """True for ``os.<name>(...)`` or a bare ``<name>(...)`` call."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in names:
        return True
    return isinstance(func, ast.Name) and func.id in names


def check_fsync_before_rename(root):
    findings = []
    for path in _python_files(root, SRC_DIR):
        for node in ast.walk(_parse(path)):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            stages_tmp = any(
                isinstance(inner, ast.Constant)
                and isinstance(inner.value, str)
                and inner.value.endswith(".tmp")
                for inner in ast.walk(node))
            if not stages_tmp:
                continue
            calls = [inner for inner in ast.walk(node)
                     if isinstance(inner, ast.Call)]
            renames = [c for c in calls
                       if _is_os_call(c, ("replace", "rename"))]
            if not renames:
                continue
            fsyncs = [c for c in calls if _is_os_call(c, ("fsync",))]
            first_rename = min(c.lineno for c in renames)
            if not any(c.lineno < first_rename for c in fsyncs):
                findings.append(Finding(
                    "error", "unsynced-rename", None,
                    "%s:%d: function %r publishes a .tmp staging "
                    "write with os.replace/os.rename but never "
                    "fsyncs the staged file first — a crash could "
                    "keep the rename and lose the bytes"
                    % (_rel(root, path), node.lineno, node.name)))
    return findings


# ----------------------------------------------------------------------
# invariant 5: SQL lowering dispatch is total over the SQL AST
# ----------------------------------------------------------------------
SQL_AST_MODULE = os.path.join("src", "repro", "sql", "ast.py")
SQL_LOWER_MODULE = os.path.join("src", "repro", "sql", "lower.py")


def _sql_node_classes(root):
    """Names listed in ``NODE_CLASSES`` in the SQL ast module."""
    tree = _parse(os.path.join(root, SQL_AST_MODULE))
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "NODE_CLASSES"
                for t in node.targets):
            if isinstance(node.value, (ast.Tuple, ast.List)):
                return set(elt.id for elt in node.value.elts
                           if isinstance(elt, ast.Name)), node.lineno
    return set(), 0


def _sql_lowered_names(root):
    """String keys of the ``_LOWERS`` registry in the lowering pass."""
    tree = _parse(os.path.join(root, SQL_LOWER_MODULE))
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "_LOWERS"
                for t in node.targets):
            if isinstance(node.value, ast.Dict):
                return set(key.value for key in node.value.keys
                           if isinstance(key, ast.Constant)
                           and isinstance(key.value, str)), node.lineno
    return set(), 0


def check_sql_lowering_totality(root):
    if not os.path.isfile(os.path.join(root, SQL_AST_MODULE)):
        return []
    declared, ast_line = _sql_node_classes(root)
    lowered, lower_line = _sql_lowered_names(root)
    findings = []
    if not declared:
        findings.append(Finding(
            "error", "sql-ast-untracked", None,
            "%s declares no NODE_CLASSES tuple — the lowering "
            "totality invariant has nothing to check against"
            % SQL_AST_MODULE))
    if not lowered:
        findings.append(Finding(
            "error", "sql-lowering-untracked", None,
            "%s declares no _LOWERS registry — the lowering "
            "totality invariant has nothing to check"
            % SQL_LOWER_MODULE))
    for name in sorted(declared - lowered):
        findings.append(Finding(
            "error", "sql-node-not-lowered", None,
            "%s:%d lists SQL AST node %s in NODE_CLASSES but %s's "
            "_LOWERS registry never dispatches it — the parser can "
            "produce a construct the lowering cannot handle"
            % (SQL_AST_MODULE, ast_line, name, SQL_LOWER_MODULE)))
    for name in sorted(lowered - declared):
        findings.append(Finding(
            "error", "sql-lowering-orphan", None,
            "%s:%d dispatches %r which %s's NODE_CLASSES does not "
            "declare — dead dispatch entry or an unregistered node"
            % (SQL_LOWER_MODULE, lower_line, name, SQL_AST_MODULE)))
    return findings


# ----------------------------------------------------------------------
def run_selfcheck(root=None):
    """All invariant findings for the tree (empty list = clean)."""
    root = root or repo_root()
    findings = []
    findings += check_chaos_coverage(root)
    findings += check_error_taxonomy(root)
    findings += check_bare_excepts(root)
    findings += check_fsync_before_rename(root)
    findings += check_sql_lowering_totality(root)
    return findings
