"""Declarative operator signatures for every MIL instruction.

Each entry in :data:`SIGNATURES` describes one op of the evaluator's
dispatch table (:data:`repro.monet.mil._OPS`): accepted argument
counts, operand kinds (BAT vs literal), the statically checkable type
constraints the kernel enforces at run time (varsized-comparability of
join columns, aggregable tail atoms, registered multiplex functions,
coercible selection literals, ...), and how the result's head/tail
atoms, properties and cardinality bound derive from the operands.

The registry is asserted complete against ``mil._OPS`` at import time
(and again in the test suite), so adding a MIL operator without a
signature fails loudly instead of silently weakening the verifier.

The rules are deliberately *no stricter than the kernel*: a plan is
only rejected for conditions that make execution certain to raise.
Data-dependent failures (e.g. ``fillzero`` padding a string aggregate
only when a group is missing) stay runtime concerns — the verifier
must never reject a plan the evaluator would accept.
"""

from ..errors import AtomError, OperatorError
from ..monet import atoms as _atoms
from ..monet import mil as _mil
from ..monet.operators.aggregate import AGGREGATES
from ..monet.operators.multiplex import get_function

#: Atoms whose tails ``{sum}`` accepts (see ``aggregate._sum_atom``).
SUMMABLE = ("short", "int", "long", "float", "double")


class SignatureError(Exception):
    """One statically certain signature violation (internal to the
    analysis package; the verifier converts it into a Finding)."""


class AnyValue:
    """An operand about which nothing is known statically (an unbound
    name verified without a catalog).  Passes every check."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "ANY"


#: The "no static knowledge" operand.
ANY = AnyValue()


class ScalarType:
    """Abstract value of an ``aggr_all`` result: a Python scalar.

    ``atom`` is the atom name the value would coerce to, or ``None``
    when unknown (min/max over an unknown tail, or a possibly-``None``
    result of an empty aggregate)."""

    __slots__ = ("atom",)

    def __init__(self, atom=None):
        self.atom = atom

    def __repr__(self):
        return "scalar(%s)" % (self.atom or "?")


class BatType:
    """Abstract value of a BAT: atom names, properties, cardinality.

    ``head``/``tail`` are atom names or ``None`` (unknown).  ``count``
    is an upper bound on the number of BUNs (``None`` = unbounded);
    ``count_exact`` marks bounds that are exact (base catalog BATs and
    results of cardinality-preserving ops), which is what licenses
    "certainly non-empty" conclusions.  The property flags are
    tri-state: ``True`` = guaranteed, ``None`` = unknown (``False``
    never arises statically — a property can fail to be guaranteed,
    not be guaranteed absent)."""

    __slots__ = ("head", "tail", "count", "count_exact",
                 "hkey", "tkey", "hordered", "tordered")

    def __init__(self, head=None, tail=None, count=None,
                 count_exact=False, hkey=None, tkey=None,
                 hordered=None, tordered=None):
        self.head = head
        self.tail = tail
        self.count = count
        self.count_exact = count_exact and count is not None
        self.hkey = hkey
        self.tkey = tkey
        self.hordered = hordered
        self.tordered = tordered

    def swapped(self):
        return BatType(self.tail, self.head, self.count,
                       self.count_exact, hkey=self.tkey, tkey=self.hkey,
                       hordered=self.tordered, tordered=self.hordered)

    def subsequence(self):
        """The type of a BUN-subsequence result (select, semijoin,
        unique, ...): atoms and order/key flags survive, the count
        becomes an upper bound."""
        return BatType(self.head, self.tail, self.count, False,
                       hkey=self.hkey, tkey=self.tkey,
                       hordered=self.hordered, tordered=self.tordered)

    def byte_width(self):
        """Bytes per BUN under the section 5.2.2 model, or ``None``."""
        widths = []
        for name in (self.head, self.tail):
            if name is None:
                return None
            widths.append(_atoms.atom(name).width)
        return sum(widths)

    def __repr__(self):
        bound = "?" if self.count is None else \
            ("%d" % self.count if self.count_exact else "<=%d" % self.count)
        return "[%s,%s]#%s" % (self.head or "?", self.tail or "?", bound)


def _varsized(name):
    return _atoms.atom(name).varsized


def _mul(a, b):
    return None if a is None or b is None else a * b


def _add(a, b):
    return None if a is None or b is None else a + b


def _min_bound(*bounds):
    known = [b for b in bounds if b is not None]
    return min(known) if known else None


def _bat(op, pos, value):
    """The operand at ``pos`` as a :class:`BatType`, or raise."""
    if isinstance(value, BatType):
        return value
    if value is ANY:
        return BatType()
    raise SignatureError(
        "%s: operand %d must be a BAT, got %s"
        % (op, pos + 1, _describe(value)))


def _describe(value):
    if isinstance(value, ScalarType):
        return "a scalar (%s)" % (value.atom or "unknown atom")
    if isinstance(value, BatType):
        return "a BAT %r" % value
    return "literal %r" % (value,)


def _is_literal(value):
    return value is not ANY and \
        not isinstance(value, (BatType, ScalarType))


def _comparable(op, what, left, right):
    """Enforce ``equality_keys`` comparability: a varsized column can
    only be matched against another varsized column."""
    if left is None or right is None:
        return
    if _varsized(left) != _varsized(right):
        raise SignatureError(
            "%s: %s compares %s with %s (varsized vs fixed-width "
            "columns can never match)" % (op, what, left, right))


def _canon(name):
    """Collapse ``void`` onto ``oid`` for compatibility checks.

    A void column *is* a dense oid sequence — the kernel materialises
    it as OID (``VoidColumn``), ``concat_columns``/``equality_keys``
    treat it as OID, and only the storage manifest distinguishes the
    two.  Width accounting keeps the distinction (void stores zero
    bytes); type compatibility must not.
    """
    return "oid" if name == "void" else name


def _same_atom(op, what, left, right):
    if left is None or right is None:
        return
    if _canon(left) != _canon(right):
        raise SignatureError(
            "%s: %s requires identical atoms, got %s vs %s"
            % (op, what, left, right))


def _coercible(op, what, atom_name, literal):
    """A selection literal must coerce into the tail atom."""
    if atom_name is None or not _is_literal(literal):
        return
    try:
        _atoms.atom(atom_name).coerce(literal)
    except AtomError as exc:
        raise SignatureError("%s: %s: %s" % (op, what, exc)) from None


def _int_literal(op, what, value, allow_missing=False):
    if not _is_literal(value):
        return
    if value is None and allow_missing:
        return
    if isinstance(value, bool) or not isinstance(value, int):
        raise SignatureError(
            "%s: %s must be an integer, got %r" % (op, what, value))


# ----------------------------------------------------------------------
# per-op result rules
# ----------------------------------------------------------------------
def _sig_select(stmt, args):
    ab = _bat("select", 0, args[0])
    if len(args) == 2:
        _coercible("select", "selection value", ab.tail, args[1])
        if args[1] is None and _is_literal(args[1]):
            raise SignatureError(
                "select: point selection value may not be nil")
    else:
        # a nil range bound means "open" and is always legal
        if args[1] is not None:
            _coercible("select", "low bound", ab.tail, args[1])
        if args[2] is not None:
            _coercible("select", "high bound", ab.tail, args[2])
    return ab.subsequence()


def _sig_join(stmt, args):
    ab = _bat("join", 0, args[0])
    cd = _bat("join", 1, args[1])
    _comparable("join", "tail against head", ab.tail, cd.head)
    bound = _mul(ab.count, cd.count)
    if cd.hkey:
        bound = _min_bound(bound, ab.count)
    if ab.tkey:
        bound = _min_bound(bound, cd.count)
    hkey = True if (ab.hkey and cd.hkey) else None
    return BatType(ab.head, cd.tail, bound,
                   hkey=hkey, hordered=ab.hordered)


def _sig_semijoin(stmt, args):
    ab = _bat("semijoin", 0, args[0])
    cd = _bat("semijoin", 1, args[1])
    _comparable("semijoin", "head against head", ab.head, cd.head)
    out = ab.subsequence()
    if ab.hkey:
        out.count = _min_bound(ab.count, cd.count)
    return out


def _sig_headdiff(op):
    def rule(stmt, args):
        ab = _bat(op, 0, args[0])
        cd = _bat(op, 1, args[1])
        _comparable(op, "head against head", ab.head, cd.head)
        return ab.subsequence()
    return rule


def _sig_mirror(stmt, args):
    return _bat("mirror", 0, args[0]).swapped()


def _sig_ident(stmt, args):
    ab = _bat("ident", 0, args[0])
    return BatType(ab.head, ab.head, ab.count, ab.count_exact,
                   hkey=ab.hkey, tkey=ab.hkey,
                   hordered=ab.hordered, tordered=ab.hordered)


def _sig_unique(stmt, args):
    return _bat("unique", 0, args[0]).subsequence()


def _sig_group(stmt, args):
    if len(args) == 1:
        ab = _bat("group", 0, args[0])
        return BatType(ab.head, "oid", ab.count, ab.count_exact,
                       hkey=ab.hkey, hordered=ab.hordered)
    grp = _bat("group", 0, args[0])
    cd = _bat("group", 1, args[1])
    if grp.tail is not None and _varsized(grp.tail):
        raise SignatureError(
            "group: first operand's tail must hold group codes "
            "(integer-valued), got %s" % grp.tail)
    _comparable("group", "head against head", grp.head, cd.head)
    return BatType(grp.head, "oid", grp.count, grp.count_exact,
                   hkey=grp.hkey, hordered=grp.hordered)


def _sig_multiplex(stmt, args):
    func = get_function(stmt.fn)     # raises OperatorError when unknown
    if func.arity is not None and len(args) != func.arity:
        raise SignatureError(
            "multiplex [%s] expects %d operands, got %d"
            % (stmt.fn, func.arity, len(args)))
    bats = [a for a in args if isinstance(a, BatType)]
    if not bats and not any(a is ANY for a in args):
        raise SignatureError(
            "multiplex [%s] needs at least one BAT operand" % stmt.fn)
    operand_atoms = []
    for value in args:
        if isinstance(value, BatType):
            operand_atoms.append(value.tail)
        elif isinstance(value, ScalarType):
            operand_atoms.append(value.atom)
        elif value is ANY:
            operand_atoms.append(None)
        else:
            operand_atoms.append(_literal_atom(stmt.fn, value))
    result = None
    if isinstance(func.result_atom, _atoms.Atom):
        result = func.result_atom.name
    elif all(name is not None for name in operand_atoms):
        try:
            result = func.result_atom(
                [_atoms.atom(name) for name in operand_atoms]).name
        except OperatorError as exc:
            raise SignatureError("multiplex [%s]: %s"
                                 % (stmt.fn, exc)) from None
    first = bats[0] if bats else BatType()
    return BatType(first.head, result, first.count,
                   hordered=first.hordered)


def _literal_atom(fn, value):
    """Atom of a broadcast scalar literal (``multiplex._scalar_atom``)."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int" if -(2 ** 31) <= value < 2 ** 31 else "long"
    if isinstance(value, float):
        return "double"
    if isinstance(value, str):
        return "string"
    raise SignatureError("multiplex [%s]: cannot type scalar operand %r"
                         % (fn, value))


def _check_aggregate_fn(op, fn):
    if fn not in AGGREGATES:
        raise SignatureError("%s: unknown aggregate %r (supported: %s)"
                             % (op, fn, ", ".join(AGGREGATES)))


def _sig_aggr(stmt, args):
    _check_aggregate_fn("aggr", stmt.fn)
    ab = _bat("aggr", 0, args[0])
    tail = ab.tail
    if stmt.fn == "sum":
        if tail is not None and tail not in SUMMABLE:
            raise SignatureError("aggr: cannot sum %s values" % tail)
        out_tail = None if tail is None else \
            ("long" if tail in ("short", "int", "long") else "double")
    elif stmt.fn == "avg":
        if tail is not None and _varsized(tail) and \
                ab.count_exact and ab.count > 0:
            raise SignatureError(
                "aggr: cannot average %s values" % tail)
        out_tail = "double"
    elif stmt.fn == "count":
        out_tail = "long"
    else:                                    # min / max
        out_tail = tail
    hordered = None
    if ab.head is not None:
        hordered = True if not _varsized(ab.head) else None
    return BatType(ab.head, out_tail, ab.count,
                   hkey=True, hordered=hordered)


def _sig_fillzero(stmt, args):
    agg = _bat("fillzero", 0, args[0])
    carrier = _bat("fillzero", 1, args[1])
    _comparable("fillzero", "carrier head against aggregate head",
                carrier.head, agg.head)
    return BatType(agg.head, agg.tail, _add(agg.count, carrier.count),
                   hkey=True)


def _sig_aggr_all(stmt, args):
    _check_aggregate_fn("aggr_all", stmt.fn)
    ab = _bat("aggr_all", 0, args[0])
    tail = ab.tail
    if stmt.fn in ("sum", "avg") and tail is not None \
            and _varsized(tail) and ab.count_exact and ab.count > 0:
        raise SignatureError("aggr_all: cannot %s %s values"
                             % (stmt.fn, tail))
    if stmt.fn == "count":
        return ScalarType("long")
    if stmt.fn == "avg":
        return ScalarType("double")
    if stmt.fn == "sum":
        if tail in ("short", "int", "long"):
            return ScalarType("long")
        if tail in ("float", "double"):
            return ScalarType("double")
        return ScalarType(None)
    return ScalarType(tail)                  # min / max


def _sig_mark(stmt, args):
    ab = _bat("mark", 0, args[0])
    if len(args) > 1:
        _int_literal("mark", "oid base", args[1])
    return BatType(ab.head, "void", ab.count, ab.count_exact,
                   hkey=ab.hkey, hordered=ab.hordered,
                   tkey=True, tordered=True)


def _sig_number(stmt, args):
    ab = _bat("number", 0, args[0])
    if len(args) > 1:
        _int_literal("number", "oid base", args[1])
    return BatType("void", ab.tail, ab.count, ab.count_exact,
                   hkey=True, hordered=True,
                   tkey=ab.tkey, tordered=ab.tordered)


def _sig_pairjoin(stmt, args):
    if len(args) < 2 or len(args) % 2:
        raise SignatureError(
            "pairjoin needs an even number of key columns, got %d"
            % len(args))
    half = len(args) // 2
    lefts = [_bat("pairjoin", i, args[i]) for i in range(half)]
    rights = [_bat("pairjoin", half + i, args[half + i])
              for i in range(half)]
    for side_name, side in (("left", lefts), ("right", rights)):
        for i, bat in enumerate(side[1:], start=2):
            _comparable("pairjoin",
                        "%s key column %d head against the side's "
                        "first head" % (side_name, i),
                        side[0].head, bat.head)
    for slot, (lbat, rbat) in enumerate(zip(lefts, rights), start=1):
        _comparable("pairjoin", "key slot %d" % slot,
                    lbat.tail, rbat.tail)
    return BatType("oid", "oid",
                   _mul(lefts[0].count, rights[0].count),
                   hordered=True)


def _sig_sort(stmt, args):
    ab = _bat("sort", 0, args[0])
    return BatType(ab.head, ab.tail, ab.count, ab.count_exact,
                   hkey=ab.hkey, tkey=ab.tkey, tordered=True)


def _sig_sortby(stmt, args):
    if not args:
        raise SignatureError("sortby needs a carrier BAT")
    carrier = _bat("sortby", 0, args[0])
    rest = args[1:]
    if len(rest) % 2:
        raise SignatureError("sortby expects (key, desc) pairs")
    for i in range(0, len(rest), 2):
        key = _bat("sortby", 1 + i, rest[i])
        if key.count_exact and carrier.count_exact \
                and key.count != carrier.count:
            raise SignatureError(
                "sortby: key %d has %d BUNs but the carrier has %d"
                % (i // 2 + 1, key.count, carrier.count))
    return BatType(carrier.head, carrier.tail, carrier.count,
                   carrier.count_exact, hkey=carrier.hkey,
                   tkey=carrier.tkey)


def _sig_slice(stmt, args):
    ab = _bat("slice", 0, args[0])
    _int_literal("slice", "low position", args[1])
    _int_literal("slice", "high position", args[2])
    window = None
    if _is_literal(args[1]) and _is_literal(args[2]):
        window = max(0, args[2] - max(0, args[1]))
    out = ab.subsequence()
    out.count = _min_bound(ab.count, window)
    return out


def _sig_union(stmt, args):
    ab = _bat("union", 0, args[0])
    cd = _bat("union", 1, args[1])
    _same_atom("union", "head concatenation", ab.head, cd.head)
    _same_atom("union", "tail concatenation", ab.tail, cd.tail)
    return BatType(ab.head or cd.head, ab.tail or cd.tail,
                   _add(ab.count, cd.count))


def _sig_setop(op):
    def rule(stmt, args):
        ab = _bat(op, 0, args[0])
        cd = _bat(op, 1, args[1])
        _comparable(op, "head against head", ab.head, cd.head)
        _comparable(op, "tail against tail", ab.tail, cd.tail)
        return ab.subsequence()
    return rule


class Signature:
    """One operator's static signature.

    ``arities`` is the set of accepted argument counts, or ``None``
    for variadic ops (which validate their own shape in ``rule``);
    ``rule`` maps ``(stmt, abstract_args)`` to the abstract result,
    raising :class:`SignatureError` on a statically certain violation.
    """

    __slots__ = ("op", "arities", "rule")

    def __init__(self, op, arities, rule):
        self.op = op
        self.arities = frozenset(arities) if arities is not None else None
        self.rule = rule

    def check(self, stmt, args):
        """Abstract result of ``stmt`` applied to abstract ``args``."""
        if self.arities is not None and len(args) not in self.arities:
            raise SignatureError(
                "%s expects %s argument(s), got %d"
                % (self.op,
                   " or ".join(str(n) for n in sorted(self.arities)),
                   len(args)))
        try:
            return self.rule(stmt, args)
        except OperatorError as exc:
            raise SignatureError("%s: %s" % (self.op, exc)) from None


#: op name -> :class:`Signature`, complete over ``mil._OPS``.
SIGNATURES = {
    "select": Signature("select", (2, 3, 5), _sig_select),
    "join": Signature("join", (2,), _sig_join),
    "semijoin": Signature("semijoin", (2,), _sig_semijoin),
    "antijoin": Signature("antijoin", (2,), _sig_headdiff("antijoin")),
    "kdiff": Signature("kdiff", (2,), _sig_headdiff("kdiff")),
    "mirror": Signature("mirror", (1,), _sig_mirror),
    "ident": Signature("ident", (1,), _sig_ident),
    "unique": Signature("unique", (1,), _sig_unique),
    "group": Signature("group", (1, 2), _sig_group),
    "multiplex": Signature("multiplex", None, _sig_multiplex),
    "aggr": Signature("aggr", (1,), _sig_aggr),
    "fillzero": Signature("fillzero", (2,), _sig_fillzero),
    "aggr_all": Signature("aggr_all", (1,), _sig_aggr_all),
    "mark": Signature("mark", (1, 2), _sig_mark),
    "number": Signature("number", (1, 2), _sig_number),
    "pairjoin": Signature("pairjoin", None, _sig_pairjoin),
    "sort": Signature("sort", (1,), _sig_sort),
    "sortby": Signature("sortby", None, _sig_sortby),
    "slice": Signature("slice", (3,), _sig_slice),
    "union": Signature("union", (2,), _sig_union),
    "difference": Signature("difference", (2,), _sig_setop("difference")),
    "intersection": Signature("intersection", (2,),
                              _sig_setop("intersection")),
}


def signature_for(op):
    """The :class:`Signature` of a MIL op; raises ``KeyError`` for
    unknown ops (the verifier reports those as findings)."""
    return SIGNATURES[op]


def _assert_complete():
    ops = set(_mil._OPS)
    signed = set(SIGNATURES)
    missing = ops - signed
    extra = signed - ops
    if missing or extra:
        raise AssertionError(
            "operator signature registry out of sync with mil._OPS: "
            "missing %s, extra %s"
            % (sorted(missing) or "none", sorted(extra) or "none"))


_assert_complete()
