"""The MIL plan verifier: types, def-use, liveness, static bounds.

``verify_program`` walks a straight-line :class:`~repro.monet.mil.MILProgram`
once, carrying an abstract environment of
:class:`~repro.analysis.signatures.BatType` values:

* every statement is checked against the operator-signature registry
  (:data:`~repro.analysis.signatures.SIGNATURES`) — unknown ops, wrong
  arities and statically certain type violations become findings;
* references are resolved the way the interpreter resolves them
  (environment first, then catalog): a name that neither an earlier
  statement nor the catalog defines is an ``undefined-ref`` (or, when
  a *later* statement defines it, a ``use-before-def``) — this is
  exactly the set of plans on which ``MILInterpreter.resolve`` raises;
* a statement that redefines a catalog BAT **after** an earlier
  statement read it through the catalog is a ``war-hazard``: the one
  anti-dependence :func:`~repro.monet.mil.partition_independent` does
  not track, because it treats catalog references as read-only.  Such
  a plan is rejected, which is what makes the partitioner's assumption
  an invariant instead of a convention;
* dead statements (results never observed) are reported as warnings
  and exposed through :func:`live_statements`, which is also the
  engine of the optimizer's flag-enabled dead-code elimination;
* per-statement cardinality and byte bounds are propagated from
  catalog stats and scored as page-fault bounds with the section
  5.2.2 cost model (:mod:`repro.costmodel.iomodel`), giving admission
  control a static budget to enforce **before** a worker executes
  anything.

The verifier is sound for acceptance: a plan it rejects with an
``error`` finding is certain to raise at execution time (or to be
unsafe to partition).  It is deliberately *not* complete — data
dependent failures still surface at run time.
"""

import math
import time

from ..costmodel.iomodel import CostModelParams
from ..errors import PlanBudgetExceededError, PlanVerificationError
from ..monet.mil import Var
from .signatures import (ANY, BatType, ScalarType, SignatureError,
                         SIGNATURES)


class Finding:
    """One verifier diagnosis, anchored to a statement."""

    __slots__ = ("level", "code", "index", "message")

    def __init__(self, level, code, index, message):
        self.level = level            # "error" | "warning"
        self.code = code
        self.index = index            # statement index, or None
        self.message = message

    @property
    def is_error(self):
        return self.level == "error"

    def render(self):
        where = "plan" if self.index is None else "stmt %d" % self.index
        return "%s [%s] %s: %s" % (self.level, self.code, where,
                                   self.message)

    def __repr__(self):
        return "Finding(%s)" % self.render()


class PlanBudget:
    """Static admission limits for one plan.

    ``max_rows`` bounds the largest single intermediate (BUNs),
    ``max_bytes`` the total bytes materialised across all statements,
    ``max_pages`` the total page-fault bound under ``params`` (a
    :class:`~repro.costmodel.iomodel.CostModelParams`; only its
    ``page_size`` matters here).  ``None`` disables a limit.  A bound
    the verifier cannot derive (missing catalog stats) counts as
    exceeding any configured limit — admission control must be
    conservative, not hopeful.
    """

    __slots__ = ("max_rows", "max_bytes", "max_pages", "params")

    def __init__(self, max_rows=None, max_bytes=None, max_pages=None,
                 params=None):
        self.max_rows = max_rows
        self.max_bytes = max_bytes
        self.max_pages = max_pages
        self.params = params or CostModelParams()

    def describe(self):
        parts = []
        if self.max_rows is not None:
            parts.append("rows<=%d" % self.max_rows)
        if self.max_bytes is not None:
            parts.append("bytes<=%d" % self.max_bytes)
        if self.max_pages is not None:
            parts.append("pages<=%d" % self.max_pages)
        return ", ".join(parts) or "unlimited"


class VerifiedPlan:
    """The result of one verification pass."""

    __slots__ = ("program", "findings", "var_types", "stmt_bounds",
                 "max_rows", "total_bytes", "total_pages", "verify_ms")

    def __init__(self, program, findings, var_types, stmt_bounds,
                 max_rows, total_bytes, total_pages, verify_ms):
        self.program = program
        self.findings = findings
        #: final abstract value per variable name
        self.var_types = var_types
        #: per-statement (rows, bytes) bounds (entries may be None)
        self.stmt_bounds = stmt_bounds
        #: largest single intermediate, total bytes, total page bound
        #: (each None when underivable)
        self.max_rows = max_rows
        self.total_bytes = total_bytes
        self.total_pages = total_pages
        self.verify_ms = verify_ms

    @property
    def errors(self):
        return [f for f in self.findings if f.is_error]

    @property
    def warnings(self):
        return [f for f in self.findings if not f.is_error]

    @property
    def ok(self):
        return not self.errors

    def raise_for_errors(self):
        """Raise :class:`~repro.errors.PlanVerificationError` when any
        error finding exists (budget findings raise the budget
        subclass)."""
        failed = self.errors
        if not failed:
            return self
        if all(f.code == "budget" for f in failed):
            raise PlanBudgetExceededError(
                "; ".join(f.message for f in failed), findings=failed)
        raise PlanVerificationError(
            "plan verification failed with %d error(s): %s"
            % (len(failed),
               "; ".join(f.render() for f in failed[:5])
               + ("; ..." if len(failed) > 5 else "")),
            findings=failed)


# ----------------------------------------------------------------------
# catalog stats
# ----------------------------------------------------------------------
def _props_flag(value):
    return True if value else None


def _column_atom(column):
    """The stored atom name: ``void`` for virtual dense-oid columns
    (matching the manifest's ``kind``), the atom name otherwise."""
    from ..monet.column import VoidColumn
    if isinstance(column, VoidColumn):
        return "void"
    return column.atom.name


def catalog_stats_from_kernel(kernel):
    """Abstract types for every BAT in a live kernel catalog.

    Derives the same :class:`~repro.analysis.signatures.BatType` a
    :func:`catalog_stats_from_manifest` over the saved form would —
    virtual columns report ``void`` either way, so parent-side (mil)
    and worker-side (moa) admission see identical stats.
    """
    stats = {}
    for name in kernel.names():
        bat = kernel.get(name)
        stats[name] = BatType(
            _column_atom(bat.head), _column_atom(bat.tail), len(bat),
            count_exact=True,
            hkey=_props_flag(bat.props.hkey),
            tkey=_props_flag(bat.props.tkey),
            hordered=_props_flag(bat.props.hordered),
            tordered=_props_flag(bat.props.tordered))
    return stats


def catalog_stats_from_manifest(manifest):
    """Abstract types from an on-disk manifest dict — no column data
    is touched, so a server can derive admission stats from the
    mmap catalog's metadata alone."""
    stats = {}
    for name, entry in manifest.get("bats", {}).items():
        head, tail = entry["head"], entry["tail"]
        flags = set(entry.get("props", ()))
        stats[name] = BatType(
            _manifest_atom(head), _manifest_atom(tail),
            int(head.get("length", tail.get("length", 0))),
            count_exact=True,
            hkey=_props_flag("hkey" in flags),
            tkey=_props_flag("tkey" in flags),
            hordered=_props_flag("hordered" in flags),
            tordered=_props_flag("tordered" in flags))
    return stats


def _manifest_atom(column_entry):
    if column_entry.get("kind") == "void":
        return "void"
    return column_entry.get("atom")


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------
def live_statements(program, roots=None):
    """Indices of statements whose effect is observable.

    ``roots`` is the set of variable names whose *final* values must
    survive (e.g. the rewriter's result variables, or a request's
    fetch list); ``None`` means every variable's final value is
    observable (the conservative default used for lint warnings).  A
    statement is live when it computes a root's final value or feeds,
    transitively, a live statement.  Single backward pass — programs
    are straight-line.
    """
    stmts = list(program)
    if roots is None:
        needed = set(stmt.target for stmt in stmts)
    else:
        needed = set(roots)
    live = []
    for index in range(len(stmts) - 1, -1, -1):
        stmt = stmts[index]
        if stmt.target in needed:
            live.append(index)
            needed.discard(stmt.target)
            needed.update(stmt.referenced_vars())
    live.reverse()
    return live


# ----------------------------------------------------------------------
# the verifier
# ----------------------------------------------------------------------
def verify_program(program, catalog=None, budget=None, roots=None):
    """Statically verify a MIL program; returns a :class:`VerifiedPlan`.

    ``catalog`` maps BAT names to :class:`BatType` stats (see the
    ``catalog_stats_from_*`` builders); without it, unresolved names
    are assumed well-typed and reference checking is skipped.
    ``budget`` is an optional :class:`PlanBudget`; ``roots`` narrows
    the liveness analysis to the variables a caller will actually
    fetch.
    """
    started = time.perf_counter()
    findings = []
    env = {}
    defined_at = {}
    catalog_reads = {}
    stmts = list(program)
    all_targets = set(stmt.target for stmt in stmts)
    stmt_bounds = []
    max_rows = 0
    total_bytes = 0
    rows_unknown = bytes_unknown = False

    for index, stmt in enumerate(stmts):
        abstract_args = []
        for arg in stmt.args:
            if not isinstance(arg, Var):
                abstract_args.append(arg)
                continue
            name = arg.name
            if name in env:
                abstract_args.append(env[name])
            elif catalog is not None and name in catalog:
                catalog_reads.setdefault(name, index)
                abstract_args.append(catalog[name])
            elif catalog is None:
                abstract_args.append(ANY)
            else:
                code = ("use-before-def" if name in all_targets
                        else "undefined-ref")
                findings.append(Finding(
                    "error", code, index,
                    "%r is not defined %s (statement: %s)"
                    % (name,
                       "yet" if code == "use-before-def"
                       else "by the plan or the catalog",
                       stmt.render())))
                abstract_args.append(ANY)

        if catalog is not None and stmt.target in catalog:
            read_at = catalog_reads.get(stmt.target)
            if read_at is not None:
                findings.append(Finding(
                    "error", "war-hazard", index,
                    "redefines catalog BAT %r after statement %d read "
                    "it through the catalog — unsafe to partition "
                    "(violates the read-only-catalog assumption of "
                    "partition_independent)" % (stmt.target, read_at)))
            else:
                findings.append(Finding(
                    "warning", "shadows-catalog", index,
                    "shadows catalog BAT %r" % stmt.target))

        signature = SIGNATURES.get(stmt.op)
        if signature is None:
            findings.append(Finding(
                "error", "unknown-op", index,
                "unknown MIL op %r" % stmt.op))
            result = ANY
        else:
            try:
                result = signature.check(stmt, abstract_args)
            except SignatureError as exc:
                findings.append(Finding("error", "type", index,
                                        str(exc)))
                result = ANY
        env[stmt.target] = result
        defined_at[stmt.target] = index

        rows = bytes_ = None
        if isinstance(result, BatType):
            rows = result.count
            width = result.byte_width()
            if rows is not None and width is not None:
                bytes_ = rows * width
            if rows is None:
                rows_unknown = True
            else:
                max_rows = max(max_rows, rows)
            if bytes_ is None:
                bytes_unknown = True
            else:
                total_bytes += bytes_
        stmt_bounds.append((rows, bytes_))

    live = set(live_statements(program, roots=roots))
    for index, stmt in enumerate(stmts):
        if index not in live:
            findings.append(Finding(
                "warning", "dead-instruction", index,
                "result %r is never used (statement: %s)"
                % (stmt.target, stmt.render())))

    plan_rows = None if rows_unknown else max_rows
    plan_bytes = None if bytes_unknown else total_bytes
    params = budget.params if budget is not None else CostModelParams()
    plan_pages = None
    if not bytes_unknown:
        plan_pages = sum(
            math.ceil(b / params.page_size)
            for _r, b in stmt_bounds if b)
    if budget is not None:
        _check_budget(budget, plan_rows, plan_bytes, plan_pages,
                      findings)
    verify_ms = (time.perf_counter() - started) * 1000.0
    return VerifiedPlan(program, findings, env, stmt_bounds,
                        plan_rows, plan_bytes, plan_pages, verify_ms)


def _check_budget(budget, plan_rows, plan_bytes, plan_pages, findings):
    checks = (("rows", budget.max_rows, plan_rows,
               "largest intermediate"),
              ("bytes", budget.max_bytes, plan_bytes,
               "total materialised bytes"),
              ("pages", budget.max_pages, plan_pages,
               "total page-fault bound"))
    for unit, limit, bound, label in checks:
        if limit is None:
            continue
        if bound is None:
            findings.append(Finding(
                "error", "budget", None,
                "static %s bound is underivable (missing catalog "
                "stats) but a %s budget of %d is configured"
                % (label, unit, limit)))
        elif bound > limit:
            findings.append(Finding(
                "error", "budget", None,
                "static %s bound %d exceeds the %s budget %d"
                % (label, bound, unit, limit)))


def check_program(program, catalog=None, budget=None, roots=None):
    """Verify and raise on errors; returns the :class:`VerifiedPlan`.

    The one-call form the rewriter and the server admission path use:
    :class:`~repro.errors.PlanVerificationError` for malformed plans,
    :class:`~repro.errors.PlanBudgetExceededError` for well-formed
    plans that blow the static budget.
    """
    plan = verify_program(program, catalog=catalog, budget=budget,
                          roots=roots)
    return plan.raise_for_errors()
