"""Shared benchmark harness utilities."""

from .harness import (ascii_chart, format_table, geometric_mean,
                      measure_query_faults, measure_rowstore_faults)

__all__ = ["ascii_chart", "format_table", "geometric_mean",
           "measure_query_faults", "measure_rowstore_faults"]
