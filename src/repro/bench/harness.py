"""Benchmark harness helpers: tables, charts, fault measurement.

Every benchmark regenerates a table or figure of the paper; these
helpers keep the output format consistent (and close to the paper's
layout, e.g. Figure 9's column set).
"""

import math

from ..monet.buffer import BufferManager, use


def format_table(headers, rows, title=None):
    """Fixed-width ASCII table."""
    widths = [len(str(h)) for h in headers]
    rendered = []
    for row in rows:
        cells = [_fmt(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w)
                           for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return "%.0f" % cell
        return "%.3g" % cell
    return str(cell)


def ascii_chart(grid, series, width=64, height=18, title=None):
    """Rough ASCII rendering of Figure-8-style line series."""
    all_values = [v for values in series.values() for v in values]
    top = max(all_values) or 1.0
    lines = []
    if title:
        lines.append(title)
    marks = "*o+x#@%&"
    canvas = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(sorted(series.items())):
        mark = marks[index % len(marks)]
        for column in range(width):
            position = column * (len(grid) - 1) // max(1, width - 1)
            value = values[position]
            row = height - 1 - int(value / top * (height - 1))
            canvas[row][column] = mark
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(" s: 0 .. %.3g   faults: 0 .. %.3g" % (grid[-1], top))
    for index, label in enumerate(sorted(series)):
        lines.append("   %s = %s" % (marks[index % len(marks)], label))
    return "\n".join(lines)


def percentiles(values, points=(50, 95, 99)):
    """``{"p50": ..., "p95": ..., "p99": ...}`` of a sample.

    Linear interpolation between closest ranks (numpy's default
    ``quantile`` method), implemented locally so stats code that runs
    inside the query service never materialises an array per request.
    Empty input yields ``None`` for every point — serving stats start
    life before the first request has a latency.
    """
    result = {}
    if not values:
        return {("p%g" % point): None for point in points}
    ordered = sorted(values)
    top = len(ordered) - 1
    for point in points:
        rank = top * (point / 100.0)
        lower = int(math.floor(rank))
        upper = min(top, lower + 1)
        weight = rank - lower
        value = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
        result["p%g" % point] = round(value, 4)
    return result


def geometric_mean(values):
    """Geometric mean, as in the paper's QppD metric."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def measure_query_faults(db, query, params=None, page_size=4096):
    """Cold-cache simulated page faults of one MOA query run."""
    manager = BufferManager(page_size=page_size)
    with use(manager):
        query.run(db, params)
    return manager.faults


def measure_rowstore_faults(store, number, params, page_size=4096):
    """Cold-cache simulated page faults of one row-store query run."""
    manager = BufferManager(page_size=page_size)
    with use(manager):
        store.run(number, params)
    return manager.faults
