"""Benchmark-regression harness: ``python -m repro.bench.run``.

Runs the operator microbenchmarks and the Figure 9 TPC-D queries at a
fixed small scale factor and writes ``BENCH_operators.json`` — the
repo's perf trajectory file.  Each operator entry records

* ``median_ms`` — median wall time of the full operator call,
* ``kernel_ms`` — the vectorised kernel alone on the same key arrays,
* ``reference_ms`` — the naive dict/set/loop kernel
  (:mod:`repro.monet.operators.naive`, the pre-vectorisation
  algorithms) on the same arrays,
* ``speedup`` — ``reference_ms / kernel_ms``,
* ``rows`` — result cardinality (a correctness canary: the vectorised
  and reference kernels must agree before timings are recorded),
* ``faults`` — simulated cold-cache page faults of the operator call.

Query entries record median wall ms, simulated faults and result
cardinality.  An ``analysis`` section verifies every compiled query
plan with the static plan verifier (:mod:`repro.analysis.verify`) and
records per-query verifier wall time and static row/byte/page bounds;
the run hard-errors if any plan has a finding or if verification costs
more than 5% of that query's median runtime (admission-time analysis
must stay cheap).  A ``sql`` section runs every query again through
the SQL front-end (:mod:`repro.sql`) and records the prepared
execution's median next to the Moa path's, hard-gating that the two
paths' result checksums are byte-identical.  ``--quick`` shrinks SF and repetitions for the smoke
test wired into the tier-1 suite (``tests/test_bench_smoke.py``), so
the harness cannot silently rot between PRs.

``--db-dir DIR`` caches the loaded TPC-D database through the storage
layer: the first run saves it, later runs skip dbgen + load entirely
and reopen the heaps as ``np.memmap`` views (the ``load`` section of
the JSON records whether the start was warm and how long it took).
``--validate`` additionally runs every query against a freshly
mmap-reopened database and compares the *simulated* page-fault
accounting with the pages the OS really faulted in (resident-set
deltas of the mapped files) — the paper's Figure 9/10 observable
checked against a real pager.

``--workers N`` (repeatable) sweeps the chunked parallel execution
layer (:mod:`repro.monet.parallel`): the join/semijoin/group/aggregate
operators are re-timed under a ``ParallelConfig`` per requested worker
count — the chunk plan is forced small enough that the merge path runs
even at ``--quick`` scale — and a ``parallel`` section records the
per-thread-count medians, speedups vs the first count, and a result
checksum.  The checksum is asserted identical across the sweep (the
chunk plan never depends on the worker count, so results are
bit-identical), which is what the CI equality gate diffs between a
``--workers 1`` and a ``--workers 4`` run.  The default sweep is
``1,4``; ``--workers 0`` skips the sweep entirely.  Query timings and
``--validate`` runs always stay serial so fault traces remain
deterministic.

``--procs N`` (needs ``--db-dir``) additionally executes the whole
TPC-D query set through the **multi-process dispatcher**
(:mod:`repro.monet.multiproc`): N worker processes each mmap-reopen
the saved database at the generation the parent pinned, run their
share of the queries with a per-process BufferManager, and ship
results back with sha1 checksums.  The harness asserts every worker
checksum identical to the serial run of the same query (hard
``RuntimeError`` on divergence) and records a ``multiproc`` section —
per-query worker milliseconds, checksums, faults, the worker pids
used, and the catalog generation served.  Serial query entries always
record their own ``checksum``, which is what the CI step diffs
between a serial and a ``--procs 2`` run.

``--serve N`` (repeatable, needs ``--db-dir``) drives the whole stack
through the **concurrent query service** (:mod:`repro.server`): a
socket server is started in-process on an ephemeral port, and each
requested concurrency level runs that many closed-loop clients, each
executing the full TPC-D query set over the wire for several rounds —
single-statement queries as textual Moa requests (exercising the
per-worker plan cache), the two-phase queries (11/14/15) as ``tpcd``
requests.  Every reply checksum is asserted equal to the serial run of
the same query (hard ``RuntimeError`` on divergence) and a ``serve``
section records the concurrency sweep — requests, wall, throughput,
and p50/p95/p99 request latencies per client count — plus the
server-side stats (plan-cache hit rate, admission counters, merged
buffer faults).  Query entries record p50/p95/p99 over their reps
alongside the median for the same reason: tail latency is the serving
observable.

The serve section also carries a ``wire`` subsection: one client per
wire mode (``json``, ``binary``, and the local ``spool`` fast path)
runs the same request mix — the TPC-D set plus a column-shipping MIL
fetch — against a service with a byte-weighted result cache.  Per
mode it records qps, p50/p95 latency, and total reply bytes; hard
gates assert every checksum identical across modes, binary reply
bytes <= JSON reply bytes, and the cache never above its byte budget.

The harness **fails with a nonzero exit** when any operator or query
median regresses by more than 2x against the previous JSON at the
output path (same scale + mode only; disable with
``--no-regression-check``).
"""

import argparse
import json
import os
import platform
import shutil
import statistics
import sys
import tempfile
import threading
import time

import numpy as np

from ..monet import bat_from_columns_values, compute_props
from ..monet import parallel as par
from ..monet.buffer import BufferManager
from ..monet.buffer import use as use_manager
from ..monet.column import equality_keys
from ..monet import operators as ops
from ..monet.operators import naive
from ..monet.multiproc import (MultiprocExecutor, result_checksum,
                               ship_value)
from ..analysis.verify import catalog_stats_from_kernel, verify_program
from ..monet.optimizer import dispatch_disabled
from ..monet.storage import PAGESIZE, residency_report, residency_snapshot
from ..monet import vectorized as vz
from ..tpcd import QUERIES, generate, load_tpcd, open_tpcd, peek_tpcd_meta
from .harness import measure_query_faults, percentiles

DEFAULT_SF = 0.01
QUICK_SF = 0.0005
DEFAULT_SEED = 42

#: Rounds of the full query set each closed-loop serve client runs
#: (>= 2, so the second round observes warm plan caches).
SERVE_ROUNDS = 2

#: Regression gate: fail when a median exceeds REGRESSION_FACTOR x the
#: previous run's median (sub-floor baselines are clamped so timer
#: noise on micro-entries cannot trip the gate).
REGRESSION_FACTOR = 2.0
REGRESSION_FLOOR_MS = 0.2


def _times_ms(fn, reps):
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        times.append((time.perf_counter() - started) * 1000.0)
    return times


def _median_ms(fn, reps):
    return statistics.median(_times_ms(fn, reps))


def _faults(fn):
    manager = BufferManager(page_size=4096)
    with use_manager(manager):
        fn()
    return manager.faults


def _bat(head_atom, heads, tail_atom, tails):
    bat = bat_from_columns_values(head_atom, heads, tail_atom, tails)
    bat.props = compute_props(bat)
    return bat


def _operand_source(dataset):
    """The raw columns the operand BATs are built from (cold start)."""
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    return {
        "seed": dataset.seed,
        "item_order": np.asarray(item["order"]),
        "item_part": np.asarray(item["part"]),
        "item_quantity": np.asarray(item["quantity"]),
        "item_price": np.asarray(item["extendedprice"]),
        "orders_cust": np.asarray(orders["cust"]),
        "orders_clerk": np.asarray(orders["clerk"], dtype=object),
    }


def _operand_source_from_db(db, seed):
    """The same columns recovered from a reopened catalog (warm start).

    Datavectors hold each attribute in extent (oid) order, which is
    exactly the row order of ``dataset.tables`` — so warm-start
    operands are BUN-for-BUN identical to cold-start ones.
    """
    kernel = db.kernel

    def vector(name):
        return np.asarray(
            kernel.get(name).accel["datavector"].vector.logical())

    return {
        "seed": seed,
        "item_order": vector("Item_order"),
        "item_part": vector("Item_part"),
        "item_quantity": vector("Item_quantity"),
        "item_price": vector("Item_extendedprice"),
        "orders_cust": vector("Order_cust"),
        "orders_clerk": vector("Order_clerk"),
    }


def _operand_bats(source):
    """Operator benchmark operands drawn from the TPC-D columns."""
    n_item = len(source["item_order"])
    n_orders = len(source["orders_cust"])
    item_oids = list(range(n_item))
    rng = np.random.default_rng(source["seed"])

    operands = {}
    # [item oid, order id]: the N:1 join/grouping column of Q3/Q10/Q13
    operands["item_order"] = _bat("oid", item_oids, "long",
                                  source["item_order"].tolist())
    # [order id (permuted), customer]: hashjoin inner, not head-ordered
    perm = rng.permutation(n_orders)
    operands["orders_cust"] = _bat(
        "long", perm.tolist(),
        "long", source["orders_cust"][perm].tolist())
    # [item oid, extendedprice]: aggregation payload
    operands["item_price"] = _bat("oid", item_oids, "double",
                                  source["item_price"].tolist())
    # grouped aggregate input [order id, extendedprice]
    operands["order_price"] = _bat("long", source["item_order"].tolist(),
                                   "double",
                                   source["item_price"].tolist())
    # a selection of item oids (~20%), semijoin probe side
    step5 = list(range(0, n_item, 5))
    operands["item_sel"] = _bat("oid", step5, "oid", step5)
    # two overlapping [oid, quantity] windows for the set operations
    half = n_item // 2
    quantity = source["item_quantity"].tolist()
    operands["items_lo"] = bat_from_columns_values(
        "oid", item_oids[:half + half // 2], "long",
        quantity[:half + half // 2])
    operands["items_hi"] = bat_from_columns_values(
        "oid", item_oids[half // 2:], "long", quantity[half // 2:])

    # --- var-sized (string) join/semijoin keys ------------------------
    clerks = source["orders_clerk"].tolist()
    order_ids = list(range(n_orders))
    # [order id, clerk]: string-tail join outer
    operands["orders_clerk"] = _bat("long", order_ids, "string", clerks)
    # [clerk, clerk id]: string-head join inner (distinct clerks, own
    # heap, so the cross-heap re-encode path of equality_keys runs)
    distinct = sorted(set(clerks))
    operands["clerk_names"] = _bat("string", distinct, "long",
                                   list(range(len(distinct))))
    # [clerk, order id]: string-head semijoin outer + ~20% probe side
    operands["clerk_orders"] = _bat("string", clerks, "long", order_ids)
    probe = distinct[::5] or distinct[:1]
    operands["clerk_sel"] = _bat("string", probe, "long",
                                 list(range(len(probe))))

    # --- pairjoin composite keys (order, part), right side permuted ---
    item_perm = rng.permutation(n_item)
    operands["pair_l1"] = _bat("oid", item_oids, "long",
                               source["item_order"].tolist())
    operands["pair_l2"] = _bat("oid", item_oids, "long",
                               source["item_part"].tolist())
    operands["pair_r1"] = _bat("oid", item_perm.tolist(), "long",
                               source["item_order"][item_perm].tolist())
    operands["pair_r2"] = _bat("oid", item_perm.tolist(), "long",
                               source["item_part"][item_perm].tolist())
    return operands


def _operator_cases(operands):
    """name -> (operator thunk, kernel thunk, reference thunk, rows checker).

    Kernel and reference thunks run on identical equality-key arrays;
    their results are compared once before timing so the recorded
    speedup is for verified-identical output.
    """
    ab = operands["item_order"]
    cd = operands["orders_cust"]
    sel = operands["item_sel"]
    price = operands["item_price"]
    grouped = operands["order_price"]
    lo, hi = operands["items_lo"], operands["items_hi"]
    oc, cn = operands["orders_clerk"], operands["clerk_names"]
    co, cs = operands["clerk_orders"], operands["clerk_sel"]

    join_l, join_r = equality_keys(ab.tail, cd.head)
    semi_l, semi_r = equality_keys(price.head, sel.head)
    sjoin_l, sjoin_r = equality_keys(oc.tail, cn.head)
    ssemi_l, ssemi_r = equality_keys(co.head, cs.head)
    group_keys = grouped.head.keys()
    sum_codes, sum_groups = vz.factorize(group_keys)
    sum_values = np.asarray(grouped.tail.logical(), dtype=np.float64)
    uniq_h, uniq_t = lo.head.keys(), lo.tail.keys()
    diff_l, diff_r = equality_keys(lo.tail, hi.tail)

    def hashjoin():
        with dispatch_disabled():
            return ops.join(ab, cd)

    def join_str():
        with dispatch_disabled():
            return ops.join(oc, cn)

    def semijoin():
        with dispatch_disabled():
            return ops.semijoin(price, sel)

    def semijoin_str():
        with dispatch_disabled():
            return ops.semijoin(co, cs)

    def pairjoin():
        return ops.pairjoin([operands["pair_l1"], operands["pair_l2"],
                             operands["pair_r1"], operands["pair_r2"]])

    def unique_codes():
        h_codes, _n_h = vz.factorize(uniq_h)
        t_codes, n_t = vz.factorize(uniq_t)
        return vz.first_occurrence(
            vz.combine_codes(h_codes, t_codes, n_t))

    def unique_codes_naive():
        h_codes, _n_h = naive.factorize(uniq_h)
        t_codes, n_t = naive.factorize(uniq_t)
        return naive.first_occurrence(
            vz.combine_codes(h_codes, t_codes, n_t))

    cases = {
        "hashjoin": (
            hashjoin,
            lambda: vz.join_match(join_l, join_r),
            lambda: naive.join_match(join_l, join_r),
            lambda out: len(out)),
        "join_str": (
            join_str,
            lambda: vz.join_match(sjoin_l, sjoin_r),
            lambda: naive.join_match(sjoin_l, sjoin_r),
            lambda out: len(out)),
        "semijoin": (
            semijoin,
            lambda: vz.membership_mask(semi_l, semi_r),
            lambda: naive.membership_mask(semi_l, semi_r),
            lambda out: len(out)),
        "semijoin_str": (
            semijoin_str,
            lambda: vz.membership_mask(ssemi_l, ssemi_r),
            lambda: naive.membership_mask(ssemi_l, ssemi_r),
            lambda out: len(out)),
        "pairjoin": (
            pairjoin,
            None, None, lambda out: len(out)),
        "group": (
            lambda: ops.group1(grouped),
            lambda: vz.factorize(group_keys),
            lambda: naive.factorize(group_keys),
            lambda out: len(out)),
        "aggregate": (
            lambda: ops.set_aggregate("sum", grouped),
            # the operator's float-sum kernel is a weighted bincount
            lambda: np.bincount(sum_codes, weights=sum_values,
                                minlength=sum_groups),
            lambda: naive.grouped_sum(sum_values, sum_codes,
                                      sum_groups),
            lambda out: len(out)),
        "unique": (
            lambda: ops.unique(lo),
            unique_codes,
            unique_codes_naive,
            lambda out: len(out)),
        "difference": (
            lambda: ops.difference(lo, hi),
            lambda: vz.membership_mask(diff_l, diff_r),
            lambda: naive.membership_mask(diff_l, diff_r),
            lambda out: len(out)),
        "intersection": (
            lambda: ops.intersection(lo, hi),
            # membership plus the first-occurrence dedup stage that
            # distinguishes intersection from difference
            lambda: vz.first_occurrence(
                diff_l[vz.membership_mask(diff_l, diff_r)]),
            lambda: naive.first_occurrence(
                diff_l[naive.membership_mask(diff_l, diff_r)]),
            lambda out: len(out)),
        "mergejoin": (
            lambda: ops.join(sel, operands["item_price_sorted"]),
            None, None, lambda out: len(out)),
        "select_scan": (
            lambda: ops.select_range(price, 1000.0, 50000.0),
            None, None, lambda out: len(out)),
    }
    return cases


#: Worker processes per pool when --serve runs without --procs.
DEFAULT_PROCS_SERVE = 2

#: Operators re-timed under the parallel sweep — the four whose hot
#: kernels chunk (MultiMap probe, membership, factorize, grouped sum).
#: Keys into :func:`_operator_cases`, whose thunks the sweep reuses.
PARALLEL_OPS = ("hashjoin", "semijoin", "group", "aggregate")

DEFAULT_WORKER_SWEEP = (1, 4)


def _result_fingerprint(bat):
    """Checksum of a result BAT's BUNs (head + tail, in BUN order) —
    the same canonical sha1 the multiproc section and the serial query
    entries use, so checksums are comparable across sections."""
    return result_checksum(ship_value(bat))


def _parallel_section(operands, cases, reps, workers_sweep):
    """Per-worker-count timings of the chunked operators.

    The operator thunks come from :func:`_operator_cases` (the exact
    closures the serial table times), filtered to ``PARALLEL_OPS``.
    One fixed chunk plan serves the whole sweep; ``chunk_bytes`` is
    derived from the operand size (≈4 chunks for 8-byte keys, ≈8 for
    the 16-byte grouped-sum rows) so every chunked path — the
    partial-width grouped-sum gate included — really runs even at
    --quick scale; when the operands are too small to chunk at all the
    sweep is *skipped* with a note (returns ``None``) rather than
    silently timing the serial paths.  Results are checksummed and
    must come back bit-identical across worker counts before any
    timing is recorded.
    """
    sweep_cases = {name: cases[name][0] for name in PARALLEL_OPS}
    grouped = operands["order_price"]
    n_rows = len(operands["item_order"])
    chunk_bytes = max(4096, 2 * n_rows)
    probe = par.ParallelConfig(workers=1, chunk_bytes=chunk_bytes,
                               min_rows=1)
    n_groups = len(np.unique(grouped.head.keys()))
    with par.use(probe):
        engaged = probe.plan(n_rows, 8) is not None and \
            vz.grouped_weighted_sum_plan(len(grouped),
                                         n_groups) is not None
    if not engaged:
        print("  parallel sweep skipped: %d rows are too few to chunk "
              "(pass --workers 0 to silence)" % n_rows)
        return None
    section = {
        "chunk_bytes": chunk_bytes,
        "cpus": os.cpu_count() or 1,
        "workers_swept": list(workers_sweep),
        "operators": {name: {"median_ms": {}, "speedup": {}}
                      for name in sweep_cases},
    }
    base_workers = workers_sweep[0]
    for workers in workers_sweep:
        config = par.ParallelConfig(workers=workers,
                                    chunk_bytes=chunk_bytes, min_rows=1)
        with par.use(config):
            for name, fn in sweep_cases.items():
                entry = section["operators"][name]
                result = fn()
                fingerprint = _result_fingerprint(result)
                if "checksum" not in entry:
                    entry["checksum"] = fingerprint
                    entry["rows"] = int(len(result))
                elif entry["checksum"] != fingerprint:
                    # a hard error, not an assert: the bit-identity
                    # contract must hold under python -O too
                    raise RuntimeError(
                        "parallel results diverged for %s at "
                        "workers=%d" % (name, workers))
                entry["median_ms"][str(workers)] = round(
                    _median_ms(fn, reps), 4)
    for entry in section["operators"].values():
        base_ms = entry["median_ms"][str(base_workers)]
        for workers in workers_sweep[1:]:
            entry["speedup"][str(workers)] = round(
                base_ms / max(entry["median_ms"][str(workers)], 1e-9), 2)
    return section


def _kernel_equal(a, b):
    if isinstance(a, tuple):
        return all(_kernel_equal(x, y) for x, y in zip(a, b))
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype.kind == "f" or b.dtype.kind == "f":
        # summation order differs between reduceat and the Python
        # accumulation loop; equality up to float rounding is the spec
        return a.shape == b.shape and bool(
            np.allclose(a, b, rtol=1e-9, atol=0.0))
    return np.array_equal(a, b)


def _load_database(sf, seed, db_dir):
    """(db, source, load seconds, warm flag) honouring the cache dir."""
    started = time.perf_counter()
    if db_dir is not None:
        meta = peek_tpcd_meta(db_dir)
        if meta is not None and meta.get("scale") == sf \
                and meta.get("seed") == seed:
            db, _report = open_tpcd(db_dir)
            source = _operand_source_from_db(db, seed)
            return db, source, time.perf_counter() - started, True
    dataset = generate(scale=sf, seed=seed)
    db, _report = load_tpcd(dataset, db_dir=db_dir)
    return db, _operand_source(dataset), time.perf_counter() - started, \
        False


def _validate_queries(db_dir):
    """Simulated vs real page touches per query, each on a cold mmap.

    Every query gets a *freshly reopened* database, so its mappings
    start with zero resident pages and the smaps deltas are true
    cold-start fault counts for the pages the execution touched.
    """
    validation = {}
    for number in sorted(QUERIES):
        db, _report = open_tpcd(db_dir)
        manager = BufferManager(page_size=PAGESIZE, track_pages=True)
        before = residency_snapshot(db.kernel)
        with use_manager(manager):
            QUERIES[number].run(db)
        rows, totals = residency_report(db.kernel, manager,
                                        before=before)
        entry = {
            "simulated_pages": totals["simulated_pages"],
            "resident_pages": totals["resident_pages"],
            "simulated_faults": int(manager.faults),
        }
        if number == 13:
            # Figure 10's query keeps its per-heap breakdown
            entry["heaps"] = rows
        validation[str(number)] = entry
    return validation


#: Verifier-cost gate floor: at --quick scale query medians are a few
#: milliseconds and 5% of that is below timer resolution, so a
#: verification pass under this absolute wall time always passes —
#: sub-millisecond admission work is negligible whatever the query
#: costs.  The 5% relative gate takes over for queries slower than
#: ``ANALYSIS_FLOOR_MS / 0.05`` (20 ms).
ANALYSIS_FLOOR_MS = 1.0


def _analysis_section(db, serial):
    """Static verification cost per TPC-D plan, gated against runtime.

    Every query's plan(s) — both phases for the two-phase queries —
    are compiled and verified against the kernel catalog.  Two hard
    gates ride on the section: the rewriter's plans are the verifier's
    own acceptance corpus, so any finding is a ``RuntimeError``; and
    verification is admission-time work on the serving path, so its
    wall time must stay under 5% of the query's median runtime
    (floored at ``ANALYSIS_FLOOR_MS`` so --quick-scale timer noise
    cannot trip the gate).  Records per-query verifier milliseconds,
    plan sizes, and the static row/byte/page bounds the admission
    budget checks against.
    """
    stats = catalog_stats_from_kernel(db.kernel)
    section = {"queries": {}, "budget_ok": True,
               "floor_ms": ANALYSIS_FLOOR_MS}
    for number in sorted(QUERIES):
        plans = []
        for text in QUERIES[number].texts():
            _resolved, result = db.compile(text)
            plans.append(verify_program(result.program, catalog=stats))
        findings = [finding for plan in plans
                    for finding in plan.errors + plan.warnings]
        if findings:
            raise RuntimeError(
                "Q%d plan failed static verification: %s"
                % (number, "; ".join(f.render() for f in findings)))
        verify_ms = sum(plan.verify_ms for plan in plans)
        median_ms = float(serial[str(number)]["median_ms"])
        within = verify_ms <= max(0.05 * median_ms, ANALYSIS_FLOOR_MS)
        rows = [plan.max_rows for plan in plans]
        total_bytes = [plan.total_bytes for plan in plans]
        pages = [plan.total_pages for plan in plans]
        section["queries"][str(number)] = {
            "plans": len(plans),
            "stmts": sum(len(plan.program) for plan in plans),
            "verify_ms": round(verify_ms, 4),
            "rows_bound": None if None in rows else max(rows),
            "bytes_bound": None if None in total_bytes
            else sum(total_bytes),
            "pages_bound": None if None in pages else sum(pages),
            "within_budget": within,
        }
        section["budget_ok"] = bool(section["budget_ok"] and within)
    if not section["budget_ok"]:
        slow = sorted(name for name, entry in section["queries"].items()
                      if not entry["within_budget"])
        raise RuntimeError(
            "plan verification exceeded 5%% of the query median for "
            "Q%s — admission-time analysis must stay cheap"
            % ", Q".join(slow))
    return section


def _multiproc_section(db_dir, procs, serial):
    """Fan the query set over worker processes; gate on checksums.

    ``serial`` is the per-query section this run just measured — its
    checksums are the contract: a worker result that differs is a hard
    error (the shared-catalog fan-out must be bit-equivalent to serial
    execution).  Records per-query worker timings/faults, the worker
    pids used, and the pinned catalog generation.
    """
    started = time.perf_counter()
    with MultiprocExecutor(db_dir, procs=procs) as executor:
        outcomes = executor.run_queries()
        generation = executor.generation
    wall_ms = (time.perf_counter() - started) * 1000.0
    section = {
        "procs": int(procs),
        "cpus": os.cpu_count() or 1,
        "generation": int(generation),
        "wall_ms": round(wall_ms, 4),
        "workers_used": sorted({outcome.pid
                                for outcome in outcomes.values()}),
        "queries": {},
    }
    serial_total = 0.0
    for number, outcome in sorted(outcomes.items()):
        expected = serial[str(number)]["checksum"]
        if outcome.checksum != expected:
            raise RuntimeError(
                "multiproc result diverged for Q%d: worker pid %d "
                "shipped %s, serial run computed %s"
                % (number, outcome.pid, outcome.checksum, expected))
        serial_total += serial[str(number)]["median_ms"]
        section["queries"][str(number)] = {
            "ms": round(outcome.elapsed_ms, 4),
            "checksum": outcome.checksum,
            "faults": int(outcome.stats.faults),
        }
    section["serial_total_ms"] = round(serial_total, 4)
    section["speedup_vs_serial"] = round(
        serial_total / max(wall_ms, 1e-9), 2)
    section["checksums_match"] = True
    return section


def _serve_requests():
    """The closed-loop request mix: one entry per TPC-D query.

    Single-statement queries ship as textual Moa requests (their
    driver is ``db.query(text).rows``, so the served result is
    checksum-identical to the serial entry and the per-worker plan
    cache engages); the two-phase queries (a scalar aggregate feeds a
    literal into the main query) ship as ``tpcd`` requests.
    """
    requests = []
    for number in sorted(QUERIES):
        texts = QUERIES[number].texts()
        if len(texts) == 1:
            requests.append((number, "moa", texts[0]))
        else:
            requests.append((number, "tpcd", None))
    return requests


def _serve_section(db_dir, clients_sweep, procs, serial,
                   rounds=SERVE_ROUNDS):
    """Closed-loop load generation through the socket server.

    ``serial`` is the per-query section this run just measured; its
    checksums are the contract every served reply is diffed against.
    Each concurrency level spins that many clients (threads, one
    connection each); a client executes the full request mix
    ``rounds`` times.  Latencies are whole-request (client-observed)
    milliseconds.
    """
    from ..server import QueryClient, QueryServer, QueryService

    requests = _serve_requests()
    section = {
        "procs": int(procs),
        "cpus": os.cpu_count() or 1,
        "rounds": int(rounds),
        "clients_swept": [int(count) for count in clients_sweep],
        "sweep": {},
    }
    service = QueryService(db_dir, procs=procs,
                           max_inflight=max(8, *clients_sweep),
                           max_queue=64)
    try:
        with QueryServer(service) as server:
            host, port = server.address
            resilience = {"client_retries": 0, "client_reconnects": 0}
            for clients in clients_sweep:
                latencies = []
                failures = []
                lock = threading.Lock()

                def _client_loop():
                    local = []
                    try:
                        # retry-enabled, like a production client: any
                        # transient reconnect/backoff shows up in the
                        # resilience counters instead of failing the run
                        with QueryClient(host, port, retries=2,
                                         backoff_base=0.02) as client:
                            for _ in range(rounds):
                                for number, kind, text in requests:
                                    sent = time.perf_counter()
                                    if kind == "moa":
                                        reply = client.moa(text)
                                    else:
                                        reply = client.tpcd(number)
                                    # client-observed: framing, wire,
                                    # decode + sha1 re-verify included
                                    request_ms = (time.perf_counter()
                                                  - sent) * 1000.0
                                    expected = \
                                        serial[str(number)]["checksum"]
                                    if reply.checksum != expected:
                                        raise RuntimeError(
                                            "served result diverged "
                                            "for Q%d: got %s, serial "
                                            "run computed %s"
                                            % (number, reply.checksum,
                                               expected))
                                    local.append(request_ms)
                    except BaseException as exc:   # noqa: BLE001
                        with lock:
                            failures.append(exc)
                        return
                    with lock:
                        latencies.extend(local)
                        resilience["client_retries"] += \
                            client.retries_used
                        resilience["client_reconnects"] += \
                            client.reconnects

                started = time.perf_counter()
                threads = [threading.Thread(target=_client_loop,
                                            name="serve-client-%d" % i)
                           for i in range(clients)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall_ms = (time.perf_counter() - started) * 1000.0
                if failures:
                    raise failures[0]
                entry = {
                    "clients": int(clients),
                    "requests": len(latencies),
                    "wall_ms": round(wall_ms, 4),
                    "qps": round(len(latencies)
                                 / max(wall_ms / 1000.0, 1e-9), 2),
                }
                entry.update({"%s_ms" % name: value for name, value
                              in percentiles(latencies).items()})
                section["sweep"][str(clients)] = entry
            stats = service.stats()
    finally:
        service.close()
    section["plan_cache"] = stats["plan_cache"]
    section["result_cache"] = stats["result_cache"]
    section["buffer"] = stats["buffer"]
    section["counters"] = stats["counters"]
    counters = stats["counters"]
    resilience.update({
        "crash_retries": counters.get("crash_retries", 0),
        "shed": counters.get("overloads", 0),
        "quota_rejections": counters.get("quota_rejections", 0),
        "drain_rejections": counters.get("drain_rejections", 0),
        "auth_failures": counters.get("auth_failures", 0),
        "errors": counters.get("errors", 0),
    })
    section["resilience"] = resilience
    if counters.get("errors", 0):
        # hard gate: with no faults armed, a healthy sweep must not
        # record a single unexplained execution error
        raise RuntimeError("serve sweep recorded %d unexplained "
                           "server-side errors" % counters["errors"])
    section["generation"] = int(
        max(int(generation) for generation in stats["pools"])
        if stats["pools"] else 0)
    if rounds > 1 and stats["plan_cache"]["hits"] == 0:
        # the acceptance observable: repeated rounds of identical Moa
        # texts must hit the per-worker plan caches
        raise RuntimeError("serve sweep recorded zero plan-cache hits "
                           "across %d rounds" % rounds)
    section["checksums_match"] = True
    return section


#: Rounds of the request mix each wire-format client runs (>= 2, so
#: the second round observes the byte-weighted result cache).
WIRE_ROUNDS = 2

#: Result-cache budget for the wire sweep (bytes).  Small on purpose:
#: the sweep gates that the cache never exceeds it.
WIRE_CACHE_BUDGET = 4 << 20


def _wire_program():
    """A column-shipping MIL request: a 64 KiB int64 window scaled
    through multiplex.  TPC-D results are short row lists, where the
    wire format barely matters; this is the payload shape the binary
    wire exists for (raw little-endian buffers vs base64-in-JSON)."""
    from ..monet import MILProgram, Var

    program = MILProgram()
    window = program.emit("slice", [Var("Item_quantity"), 0, 8191])
    program.emit("multiplex", [window, 1], fn="*", target="col")
    return program


def _wire_section(db_dir, procs, serial, rounds=WIRE_ROUNDS):
    """Wire-format comparison: the same request mix over the JSON and
    binary wires plus the local mmap spool fast path, one client per
    mode, every reply checksum-diffed across modes and (for the TPC-D
    entries) against this run's serial checksums.

    Runs against its own service with a byte-weighted result cache so
    the sweep also gates the cache contract: the second round of each
    mode must hit, and the cache may never exceed its budget.  Hard
    gates (RuntimeError): cross-mode checksum divergence, binary reply
    bytes exceeding JSON reply bytes, cache over budget, zero cache
    hits.
    """
    from ..server import QueryClient, QueryServer, QueryService

    requests = _serve_requests()
    program = _wire_program()
    section = {
        "budget_bytes": WIRE_CACHE_BUDGET,
        "rounds": int(rounds),
        "modes": {},
    }
    checksums = {}
    spool_dir = tempfile.mkdtemp(prefix="repro-bench-spool-")
    service = QueryService(db_dir, procs=procs,
                           result_cache_bytes=WIRE_CACHE_BUDGET)
    try:
        with QueryServer(service, spool_dir=spool_dir) as server:
            host, port = server.address
            for mode in ("json", "binary", "spool"):
                wire = "json" if mode == "json" else "binary"
                latencies = []
                seen = {}
                with QueryClient(host, port, wire=wire,
                                 spool=(mode == "spool"),
                                 spool_threshold=0) as client:
                    if client.wire != wire:
                        raise RuntimeError(
                            "wire negotiation degraded to %r while "
                            "sweeping %r" % (client.wire, mode))
                    started = time.perf_counter()
                    for _ in range(rounds):
                        for number, kind, text in requests:
                            sent = time.perf_counter()
                            if kind == "moa":
                                reply = client.moa(text)
                            else:
                                reply = client.tpcd(number)
                            latencies.append(
                                (time.perf_counter() - sent) * 1000.0)
                            expected = serial[str(number)]["checksum"]
                            if reply.checksum != expected:
                                raise RuntimeError(
                                    "%s wire diverged for Q%d: got "
                                    "%s, serial run computed %s"
                                    % (mode, number, reply.checksum,
                                       expected))
                            seen["q%d" % number] = reply.checksum
                        sent = time.perf_counter()
                        reply = client.mil(program, ["col"])
                        latencies.append(
                            (time.perf_counter() - sent) * 1000.0)
                        seen["mil_col"] = reply.checksum
                    wall_ms = (time.perf_counter() - started) * 1000.0
                    entry = {
                        "wire": client.wire,
                        "spool": client.spooling,
                        "requests": len(latencies),
                        "reply_bytes": int(client.bytes_received),
                        "spool_bytes": int(client.spool_bytes),
                        "wall_ms": round(wall_ms, 4),
                        "qps": round(len(latencies)
                                     / max(wall_ms / 1000.0, 1e-9), 2),
                    }
                    entry.update({"%s_ms" % name: value for name, value
                                  in percentiles(latencies).items()})
                section["modes"][mode] = entry
                checksums[mode] = seen
            cache = service.stats()["result_cache"]
    finally:
        service.close()
        shutil.rmtree(spool_dir, ignore_errors=True)
    for mode, seen in checksums.items():
        if seen != checksums["json"]:
            raise RuntimeError(
                "wire sweep checksum divergence between json and %s: "
                "%r vs %r" % (mode, checksums["json"], seen))
    json_bytes = section["modes"]["json"]["reply_bytes"]
    binary_bytes = section["modes"]["binary"]["reply_bytes"]
    if binary_bytes > json_bytes:
        raise RuntimeError(
            "binary wire shipped more reply bytes than JSON "
            "(%d > %d)" % (binary_bytes, json_bytes))
    if cache["bytes"] > cache["budget_bytes"] \
            or cache["peak_bytes"] > cache["budget_bytes"]:
        raise RuntimeError(
            "result cache exceeded its byte budget: %r" % (cache,))
    if rounds > 1 and cache["hits"] == 0:
        raise RuntimeError("wire sweep recorded zero result-cache "
                           "hits across %d rounds" % rounds)
    section["result_cache"] = cache
    section["checksums_match"] = True
    return section


def _sql_section(db, serial, reps):
    """Per-query SQL-front-end latency vs the direct Moa plans.

    Every reproduced TPC-D query also exists as SQL text
    (:mod:`repro.sql.suite`); this section prepares each one (parse ->
    bind -> lower, hole-free phases compiled once) and times the
    prepared execution, next to the Moa path's median this run just
    measured.  The gate is hard: the SQL path's result checksum must
    be byte-identical to the serial Moa entry — a lowering that drifts
    from the hand-written plans fails the bench run, not just a test.
    """
    from ..sql.runtime import prepare_sql
    from ..sql.suite import sql_queries
    section = {"queries": {}, "checksums_match": True}
    for number, text in sorted(sql_queries().items()):
        prepared = prepare_sql(db, text)
        rows = prepared.run()
        checksum = result_checksum(ship_value(rows))
        expected = serial[str(number)]["checksum"]
        if checksum != expected:
            raise RuntimeError(
                "SQL/Moa checksum divergence for Q%d: the SQL "
                "front-end computed %s, the Moa path %s"
                % (number, checksum, expected))
        times = _times_ms(prepared.run, reps)
        median = statistics.median(times)
        moa_ms = float(serial[str(number)]["median_ms"])
        section["queries"][str(number)] = {
            "median_ms": round(median, 4),
            "moa_ms": round(moa_ms, 4),
            "overhead": round(median / max(moa_ms, 1e-9), 2),
            "phases": len(prepared.lowered.phases),
            "checksum": checksum,
        }
    return section


def run(sf, reps, quick, out_path, db_dir=None, validate=False,
        seed=DEFAULT_SEED, workers_sweep=DEFAULT_WORKER_SWEEP,
        procs=0, serve_sweep=()):
    db, source, load_s, warm = _load_database(sf, seed, db_dir)
    operands = _operand_bats(source)
    # mergejoin inner: head-ordered + key [oid, extendedprice]
    operands["item_price_sorted"] = operands["item_price"]

    results = {
        "meta": {
            "sf": sf,
            "reps": reps,
            "quick": quick,
            "rows_item": int(len(source["item_order"])),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count() or 1,
        },
        "load": {
            "warm_start": warm,
            "seconds": round(load_s, 4),
            "db_dir": db_dir,
        },
        "operators": {},
        "queries": {},
    }

    cases = _operator_cases(operands)
    for name, (op_fn, kernel_fn, ref_fn, rows_of) in sorted(
            cases.items()):
        entry = {
            "median_ms": round(_median_ms(op_fn, reps), 4),
            "rows": int(rows_of(op_fn())),
            "faults": int(_faults(op_fn)),
        }
        if kernel_fn is not None:
            assert _kernel_equal(kernel_fn(), ref_fn()), \
                "kernel/reference mismatch for %s" % name
            entry["kernel_ms"] = round(_median_ms(kernel_fn, reps), 4)
            entry["reference_ms"] = round(_median_ms(ref_fn, reps), 4)
            entry["speedup"] = round(
                entry["reference_ms"] / max(entry["kernel_ms"], 1e-9), 2)
        results["operators"][name] = entry

    if workers_sweep:
        section = _parallel_section(operands, cases, reps,
                                    list(workers_sweep))
        if section is not None:
            results["parallel"] = section

    for number in sorted(QUERIES):
        query = QUERIES[number]
        rows = query.run(db)
        if rows is None:
            shape = 0
        elif isinstance(rows, (int, float)):
            shape = 1
        else:
            shape = len(rows)
        times = _times_ms(lambda q=query: q.run(db), reps)
        entry = {
            "median_ms": round(statistics.median(times), 4),
            "faults": int(measure_query_faults(db, query)),
            "rows": int(shape),
            # canonical sha1 of the result rows — the equality contract
            # the multiproc section (and the CI cross-run diff) asserts
            "checksum": result_checksum(ship_value(rows)),
        }
        # tail latency over the reps, the serving-layer observable
        entry.update({"%s_ms" % name: value for name, value
                      in percentiles(times).items()})
        results["queries"][str(number)] = entry

    results["analysis"] = _analysis_section(db, results["queries"])
    results["sql"] = _sql_section(db, results["queries"], reps)

    if procs and db_dir is not None:
        results["multiproc"] = _multiproc_section(
            db_dir, procs, results["queries"])

    if serve_sweep and db_dir is not None:
        results["serve"] = _serve_section(
            db_dir, list(serve_sweep), procs or DEFAULT_PROCS_SERVE,
            results["queries"])
        results["serve"]["wire"] = _wire_section(
            db_dir, procs or DEFAULT_PROCS_SERVE, results["queries"])

    if validate and db_dir is not None:
        results["residency"] = _validate_queries(db_dir)

    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return results


def find_regressions(previous, results, factor=REGRESSION_FACTOR,
                     floor_ms=REGRESSION_FLOOR_MS):
    """Medians that regressed >``factor``x vs the previous trajectory.

    Only comparable runs are checked: same scale factor, same mode,
    and same start temperature — a warm (mmap reopen) and a cold
    (dbgen + load) run differ by page-cache state alone, enough to
    shift medians ~2x without any code regression.  Entries new in
    this run are skipped.  Returns a list of human-readable
    regression descriptions (empty = gate passes).
    """
    if not isinstance(previous, dict):
        return []
    prev_meta = previous.get("meta", {})
    if prev_meta.get("sf") != results["meta"]["sf"] \
            or prev_meta.get("quick") != results["meta"]["quick"]:
        return []
    if previous.get("load", {}).get("warm_start") != \
            results.get("load", {}).get("warm_start"):
        return []
    regressions = []
    for section in ("operators", "queries"):
        for name, entry in sorted(results.get(section, {}).items()):
            old = previous.get(section, {}).get(name, {}).get("median_ms")
            new = entry.get("median_ms")
            if old is None or new is None:
                continue
            baseline = max(float(old), floor_ms)
            if float(new) > factor * baseline:
                regressions.append(
                    "%s/%s: %.3f ms vs %.3f ms baseline (>%.1fx)"
                    % (section, name, new, old, factor))
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="operator + Figure 9 benchmark regression harness")
    parser.add_argument("--sf", type=float, default=None,
                        help="TPC-D scale factor (default %s)"
                             % DEFAULT_SF)
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per measurement (median)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: tiny SF, 2 reps")
    parser.add_argument("--out", default=None,
                        help="output path (default "
                             "<repo>/BENCH_operators.json)")
    parser.add_argument("--db-dir", default=None,
                        help="persistent database cache: first run "
                             "saves the loaded TPC-D database there, "
                             "later runs reopen it via mmap and skip "
                             "dbgen entirely")
    parser.add_argument("--validate", action="store_true",
                        help="compare simulated page faults against "
                             "real resident-set deltas of the mapped "
                             "heap files (needs --db-dir); the "
                             "parallel layer stays off so fault "
                             "traces are deterministic")
    parser.add_argument("--workers", action="append", type=int,
                        default=None, metavar="N",
                        help="parallel sweep thread count; repeatable "
                             "(--workers 1 --workers 4).  Each count "
                             "re-times the chunked join/semijoin/"
                             "group/aggregate operators under a "
                             "ParallelConfig and the results are "
                             "asserted bit-identical across the "
                             "sweep.  Default: 1 and 4; "
                             "--workers 0 skips the sweep entirely")
    parser.add_argument("--procs", type=int, default=0, metavar="N",
                        help="fan the TPC-D query set across N worker "
                             "processes sharing the --db-dir catalog "
                             "(each worker mmap-reopens the pinned "
                             "generation); per-query sha1 checksums "
                             "are asserted identical to the serial "
                             "run and a 'multiproc' section is "
                             "recorded.  0 (default) skips the sweep")
    parser.add_argument("--serve", action="append", type=int,
                        default=None, metavar="N",
                        help="closed-loop client count for the query-"
                             "service sweep; repeatable (--serve 1 "
                             "--serve 4).  Each count drives the full "
                             "TPC-D query set through a socket server "
                             "started on the --db-dir catalog; reply "
                             "checksums are asserted identical to the "
                             "serial run and a 'serve' section records "
                             "p50/p95/p99 request latencies per "
                             "concurrency.  Needs --db-dir; omitted = "
                             "no serve sweep")
    parser.add_argument("--no-regression-check", action="store_true",
                        help="do not fail on >%gx median regressions "
                             "vs the previous JSON" % REGRESSION_FACTOR)
    args = parser.parse_args(argv)

    sf = args.sf if args.sf is not None else \
        (QUICK_SF if args.quick else DEFAULT_SF)
    reps = args.reps if args.reps is not None else \
        (2 if args.quick else 5)
    if reps < 1:
        parser.error("--reps must be at least 1")
    if args.validate and args.db_dir is None:
        parser.error("--validate needs --db-dir")
    if args.procs < 0:
        parser.error("--procs must be >= 0")
    if args.procs and args.db_dir is None:
        parser.error("--procs needs --db-dir (workers reopen the "
                     "saved catalog)")
    serve_sweep = tuple(args.serve) if args.serve else ()
    if serve_sweep and args.db_dir is None:
        parser.error("--serve needs --db-dir (the server workers "
                     "reopen the saved catalog)")
    if any(clients < 1 for clients in serve_sweep):
        parser.error("--serve client counts must be at least 1")
    workers_sweep = tuple(args.workers) if args.workers \
        else DEFAULT_WORKER_SWEEP
    if workers_sweep == (0,):
        workers_sweep = ()               # opt out of the sweep
    elif any(workers < 1 for workers in workers_sweep):
        parser.error("--workers must be at least 1 "
                     "(a single --workers 0 disables the sweep)")
    out_path = args.out
    if out_path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        out_path = os.path.join(repo_root, "BENCH_operators.json")
    out_dir = os.path.dirname(os.path.abspath(out_path))
    if not os.path.isdir(out_dir):
        parser.error("output directory does not exist: %s" % out_dir)

    previous = None
    if not args.no_regression_check and os.path.exists(out_path):
        try:
            with open(out_path) as handle:
                previous = json.load(handle)
        except ValueError:
            previous = None

    results = run(sf, reps, args.quick, out_path, db_dir=args.db_dir,
                  validate=args.validate, workers_sweep=workers_sweep,
                  procs=args.procs, serve_sweep=serve_sweep)
    ops_table = results["operators"]
    print("BENCH sf=%s reps=%d -> %s" % (sf, reps, out_path))
    print("  load: %s in %.2fs"
          % ("warm (mmap reopen)" if results["load"]["warm_start"]
             else "cold (dbgen + load)", results["load"]["seconds"]))
    for name, entry in sorted(ops_table.items()):
        extra = ""
        if "speedup" in entry:
            extra = "  kernel %.3fms vs naive %.3fms (%.1fx)" % (
                entry["kernel_ms"], entry["reference_ms"],
                entry["speedup"])
        print("  %-12s %8.3f ms  rows=%-7d faults=%-6d%s"
              % (name, entry["median_ms"], entry["rows"],
                 entry["faults"], extra))
    if "parallel" in results:
        section = results["parallel"]
        print("  parallel sweep (cpus=%d, chunk_bytes=%d, "
              "results identical across workers):"
              % (section["cpus"], section["chunk_bytes"]))
        for name, entry in sorted(section["operators"].items()):
            timings = "  ".join(
                "w%s=%.3fms" % (workers, entry["median_ms"][workers])
                for workers in sorted(entry["median_ms"], key=int))
            speedups = "  ".join(
                "x%.2f@w%s" % (entry["speedup"][workers], workers)
                for workers in sorted(entry["speedup"], key=int))
            print("    %-10s %s  %s" % (name, timings, speedups))
    slowest = max(results["queries"].items(),
                  key=lambda kv: kv[1]["median_ms"])
    print("  %d queries; slowest Q%s at %.1f ms"
          % (len(results["queries"]), slowest[0],
             slowest[1]["median_ms"]))
    section = results["analysis"]
    print("  analysis: %d plans (%d stmts) verified clean in %.2f ms "
          "total, budget_ok=%s"
          % (sum(entry["plans"]
                 for entry in section["queries"].values()),
             sum(entry["stmts"]
                 for entry in section["queries"].values()),
             sum(entry["verify_ms"]
                 for entry in section["queries"].values()),
             section["budget_ok"]))
    if "multiproc" in results:
        section = results["multiproc"]
        print("  multiproc sweep: %d queries across %d procs "
              "(%d worker pids, generation %d) in %.1f ms wall — "
              "all checksums identical to serial (x%.2f vs summed "
              "serial medians)"
              % (len(section["queries"]), section["procs"],
                 len(section["workers_used"]), section["generation"],
                 section["wall_ms"], section["speedup_vs_serial"]))
    if "serve" in results:
        section = results["serve"]
        print("  serve sweep (%d procs, %d rounds, plan-cache hit "
              "rate %.0f%%, all checksums identical to serial):"
              % (section["procs"], section["rounds"],
                 100.0 * section["plan_cache"]["hit_rate"]))
        for clients, entry in sorted(section["sweep"].items(),
                                     key=lambda kv: int(kv[0])):
            print("    clients=%-3s %5d requests  %8.1f ms wall  "
                  "%7.1f q/s  p50=%.2fms p95=%.2fms p99=%.2fms"
                  % (clients, entry["requests"], entry["wall_ms"],
                     entry["qps"], entry["p50_ms"], entry["p95_ms"],
                     entry["p99_ms"]))
        wire = section.get("wire")
        if wire:
            cache = wire["result_cache"]
            print("  wire sweep (result cache %d/%d bytes peak, "
                  "%d hits, all checksums identical across modes):"
                  % (cache["peak_bytes"], cache["budget_bytes"],
                     cache["hits"]))
            for mode, entry in sorted(wire["modes"].items()):
                print("    %-6s %5d requests  %8d reply bytes  "
                      "%7.1f q/s  p50=%.2fms p95=%.2fms"
                      % (mode, entry["requests"], entry["reply_bytes"],
                         entry["qps"], entry["p50_ms"],
                         entry["p95_ms"]))
    if "residency" in results:
        print("  residency validation (simulated vs real pages):")
        for number, entry in sorted(results["residency"].items(),
                                    key=lambda kv: int(kv[0])):
            print("    Q%-3s sim=%-7d real=%-7d"
                  % (number, entry["simulated_pages"],
                     entry["resident_pages"]))

    regressions = find_regressions(previous, results)
    if regressions:
        # keep the last good trajectory as the baseline — otherwise a
        # regressed run becomes its own baseline and the gate only
        # fires once; the failing run is preserved next to it
        failed_path = out_path + ".regressed"
        os.replace(out_path, failed_path)
        with open(out_path, "w") as handle:
            json.dump(previous, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("REGRESSION: %d median(s) regressed >%gx "
              "(failing run kept at %s):"
              % (len(regressions), REGRESSION_FACTOR, failed_path))
        for line in regressions:
            print("  " + line)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
