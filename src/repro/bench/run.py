"""Benchmark-regression harness: ``python -m repro.bench.run``.

Runs the operator microbenchmarks and the Figure 9 TPC-D queries at a
fixed small scale factor and writes ``BENCH_operators.json`` — the
repo's perf trajectory file.  Each operator entry records

* ``median_ms`` — median wall time of the full operator call,
* ``kernel_ms`` — the vectorised kernel alone on the same key arrays,
* ``reference_ms`` — the naive dict/set/loop kernel
  (:mod:`repro.monet.operators.naive`, the pre-vectorisation
  algorithms) on the same arrays,
* ``speedup`` — ``reference_ms / kernel_ms``,
* ``rows`` — result cardinality (a correctness canary: the vectorised
  and reference kernels must agree before timings are recorded),
* ``faults`` — simulated cold-cache page faults of the operator call.

Query entries record median wall ms, simulated faults and result
cardinality.  ``--quick`` shrinks SF and repetitions for the smoke
test wired into the tier-1 suite (``tests/test_bench_smoke.py``), so
the harness cannot silently rot between PRs.
"""

import argparse
import json
import os
import platform
import statistics
import sys
import time

import numpy as np

from ..monet import bat_from_columns_values, compute_props
from ..monet import operators as ops
from ..monet.buffer import BufferManager
from ..monet.buffer import use as use_manager
from ..monet.column import equality_keys
from ..monet.operators import naive
from ..monet.optimizer import dispatch_disabled
from ..monet import vectorized as vz
from ..tpcd import QUERIES, generate, load_tpcd
from .harness import measure_query_faults

DEFAULT_SF = 0.01
QUICK_SF = 0.0005


def _median_ms(fn, reps):
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        times.append((time.perf_counter() - started) * 1000.0)
    return statistics.median(times)


def _faults(fn):
    manager = BufferManager(page_size=4096)
    with use_manager(manager):
        fn()
    return manager.faults


def _bat(head_atom, heads, tail_atom, tails):
    bat = bat_from_columns_values(head_atom, heads, tail_atom, tails)
    bat.props = compute_props(bat)
    return bat


def _operand_bats(dataset):
    """Operator benchmark operands drawn from the TPC-D columns."""
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    n_item = len(item["order"])
    n_orders = len(orders["cust"])
    item_oids = list(range(n_item))
    rng = np.random.default_rng(dataset.seed)

    operands = {}
    # [item oid, order id]: the N:1 join/grouping column of Q3/Q10/Q13
    operands["item_order"] = _bat("oid", item_oids, "long",
                                  item["order"].tolist())
    # [order id (permuted), customer]: hashjoin inner, not head-ordered
    perm = rng.permutation(n_orders)
    operands["orders_cust"] = _bat(
        "long", perm.tolist(),
        "long", orders["cust"][perm].tolist())
    # [item oid, extendedprice]: aggregation payload
    operands["item_price"] = _bat("oid", item_oids, "double",
                                  item["extendedprice"].tolist())
    # grouped aggregate input [order id, extendedprice]
    operands["order_price"] = _bat("long", item["order"].tolist(),
                                   "double",
                                   item["extendedprice"].tolist())
    # a selection of item oids (~20%), semijoin probe side
    step5 = list(range(0, n_item, 5))
    operands["item_sel"] = _bat("oid", step5, "oid", step5)
    # two overlapping [oid, quantity] windows for the set operations
    half = n_item // 2
    quantity = item["quantity"].tolist()
    operands["items_lo"] = bat_from_columns_values(
        "oid", item_oids[:half + half // 2], "long",
        quantity[:half + half // 2])
    operands["items_hi"] = bat_from_columns_values(
        "oid", item_oids[half // 2:], "long", quantity[half // 2:])
    return operands


def _operator_cases(operands):
    """name -> (operator thunk, kernel thunk, reference thunk, rows checker).

    Kernel and reference thunks run on identical equality-key arrays;
    their results are compared once before timing so the recorded
    speedup is for verified-identical output.
    """
    ab = operands["item_order"]
    cd = operands["orders_cust"]
    sel = operands["item_sel"]
    price = operands["item_price"]
    grouped = operands["order_price"]
    lo, hi = operands["items_lo"], operands["items_hi"]

    join_l, join_r = equality_keys(ab.tail, cd.head)
    semi_l, semi_r = equality_keys(price.head, sel.head)
    group_keys = grouped.head.keys()
    sum_codes, sum_groups = vz.factorize(group_keys)
    sum_values = np.asarray(grouped.tail.logical(), dtype=np.float64)
    uniq_h, uniq_t = lo.head.keys(), lo.tail.keys()
    diff_l, diff_r = equality_keys(lo.tail, hi.tail)

    def hashjoin():
        with dispatch_disabled():
            return ops.join(ab, cd)

    def semijoin():
        with dispatch_disabled():
            return ops.semijoin(price, sel)

    def unique_codes():
        h_codes, _n_h = vz.factorize(uniq_h)
        t_codes, n_t = vz.factorize(uniq_t)
        return vz.first_occurrence(
            vz.combine_codes(h_codes, t_codes, n_t))

    def unique_codes_naive():
        h_codes, _n_h = naive.factorize(uniq_h)
        t_codes, n_t = naive.factorize(uniq_t)
        return naive.first_occurrence(
            vz.combine_codes(h_codes, t_codes, n_t))

    cases = {
        "hashjoin": (
            hashjoin,
            lambda: vz.join_match(join_l, join_r),
            lambda: naive.join_match(join_l, join_r),
            lambda out: len(out)),
        "semijoin": (
            semijoin,
            lambda: vz.membership_mask(semi_l, semi_r),
            lambda: naive.membership_mask(semi_l, semi_r),
            lambda out: len(out)),
        "group": (
            lambda: ops.group1(grouped),
            lambda: vz.factorize(group_keys),
            lambda: naive.factorize(group_keys),
            lambda out: len(out)),
        "aggregate": (
            lambda: ops.set_aggregate("sum", grouped),
            # the operator's float-sum kernel is a weighted bincount
            lambda: np.bincount(sum_codes, weights=sum_values,
                                minlength=sum_groups),
            lambda: naive.grouped_sum(sum_values, sum_codes,
                                      sum_groups),
            lambda out: len(out)),
        "unique": (
            lambda: ops.unique(lo),
            unique_codes,
            unique_codes_naive,
            lambda out: len(out)),
        "difference": (
            lambda: ops.difference(lo, hi),
            lambda: vz.membership_mask(diff_l, diff_r),
            lambda: naive.membership_mask(diff_l, diff_r),
            lambda out: len(out)),
        "intersection": (
            lambda: ops.intersection(lo, hi),
            # membership plus the first-occurrence dedup stage that
            # distinguishes intersection from difference
            lambda: vz.first_occurrence(
                diff_l[vz.membership_mask(diff_l, diff_r)]),
            lambda: naive.first_occurrence(
                diff_l[naive.membership_mask(diff_l, diff_r)]),
            lambda out: len(out)),
        "mergejoin": (
            lambda: ops.join(sel, operands["item_price_sorted"]),
            None, None, lambda out: len(out)),
        "select_scan": (
            lambda: ops.select_range(price, 1000.0, 50000.0),
            None, None, lambda out: len(out)),
    }
    return cases


def _kernel_equal(a, b):
    if isinstance(a, tuple):
        return all(_kernel_equal(x, y) for x, y in zip(a, b))
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype.kind == "f" or b.dtype.kind == "f":
        # summation order differs between reduceat and the Python
        # accumulation loop; equality up to float rounding is the spec
        return a.shape == b.shape and bool(
            np.allclose(a, b, rtol=1e-9, atol=0.0))
    return np.array_equal(a, b)


def run(sf, reps, quick, out_path):
    dataset = generate(scale=sf, seed=42)
    db, _report = load_tpcd(dataset)
    operands = _operand_bats(dataset)
    # mergejoin inner: head-ordered + key [oid, extendedprice]
    operands["item_price_sorted"] = operands["item_price"]

    results = {
        "meta": {
            "sf": sf,
            "reps": reps,
            "quick": quick,
            "rows_item": int(dataset.counts["item"]),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "operators": {},
        "queries": {},
    }

    for name, (op_fn, kernel_fn, ref_fn, rows_of) in sorted(
            _operator_cases(operands).items()):
        entry = {
            "median_ms": round(_median_ms(op_fn, reps), 4),
            "rows": int(rows_of(op_fn())),
            "faults": int(_faults(op_fn)),
        }
        if kernel_fn is not None:
            assert _kernel_equal(kernel_fn(), ref_fn()), \
                "kernel/reference mismatch for %s" % name
            entry["kernel_ms"] = round(_median_ms(kernel_fn, reps), 4)
            entry["reference_ms"] = round(_median_ms(ref_fn, reps), 4)
            entry["speedup"] = round(
                entry["reference_ms"] / max(entry["kernel_ms"], 1e-9), 2)
        results["operators"][name] = entry

    for number in sorted(QUERIES):
        query = QUERIES[number]
        rows = query.run(db)
        if rows is None:
            shape = 0
        elif isinstance(rows, (int, float)):
            shape = 1
        else:
            shape = len(rows)
        results["queries"][str(number)] = {
            "median_ms": round(
                _median_ms(lambda q=query: q.run(db), reps), 4),
            "faults": int(measure_query_faults(db, query)),
            "rows": int(shape),
        }

    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="operator + Figure 9 benchmark regression harness")
    parser.add_argument("--sf", type=float, default=None,
                        help="TPC-D scale factor (default %s)"
                             % DEFAULT_SF)
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per measurement (median)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: tiny SF, 2 reps")
    parser.add_argument("--out", default=None,
                        help="output path (default "
                             "<repo>/BENCH_operators.json)")
    args = parser.parse_args(argv)

    sf = args.sf if args.sf is not None else \
        (QUICK_SF if args.quick else DEFAULT_SF)
    reps = args.reps if args.reps is not None else \
        (2 if args.quick else 5)
    if reps < 1:
        parser.error("--reps must be at least 1")
    out_path = args.out
    if out_path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        out_path = os.path.join(repo_root, "BENCH_operators.json")
    out_dir = os.path.dirname(os.path.abspath(out_path))
    if not os.path.isdir(out_dir):
        parser.error("output directory does not exist: %s" % out_dir)

    results = run(sf, reps, args.quick, out_path)
    ops_table = results["operators"]
    print("BENCH sf=%s reps=%d -> %s" % (sf, reps, out_path))
    for name, entry in sorted(ops_table.items()):
        extra = ""
        if "speedup" in entry:
            extra = "  kernel %.3fms vs naive %.3fms (%.1fx)" % (
                entry["kernel_ms"], entry["reference_ms"],
                entry["speedup"])
        print("  %-12s %8.3f ms  rows=%-7d faults=%-6d%s"
              % (name, entry["median_ms"], entry["rows"],
                 entry["faults"], extra))
    slowest = max(results["queries"].items(),
                  key=lambda kv: kv[1]["median_ms"])
    print("  %d queries; slowest Q%s at %.1f ms"
          % (len(results["queries"]), slowest[0],
             slowest[1]["median_ms"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
