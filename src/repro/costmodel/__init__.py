"""The section 5.2.2 IO cost model: analytic formulas + empirical
validation against the simulated pager."""

from .iomodel import (CostModelParams, crossover, e_dv, e_rel,
                      figure8_series)
from .simulate import build_decomposed, measure_dv, measure_rel, validate

__all__ = [
    "CostModelParams", "crossover", "e_dv", "e_rel", "figure8_series",
    "build_decomposed", "measure_dv", "measure_rel", "validate",
]
