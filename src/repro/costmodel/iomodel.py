"""The analytic IO cost model of paper section 5.2.2, verbatim.

Expected number of B-byte page faults for a selection of selectivity
``s`` followed by a projection to ``p`` attributes of an n-ary table
with ``X`` rows of uniform value width ``w``:

relational (non-decomposed) strategy::

    E_rel(s) = ceil(s*X / C_inv)
             + ceil(X / C_rel) * (1 - (1-s)^C_rel)

    C_inv = floor(B / 2w)        inverted-list entries per page
    C_rel = floor(B / (n+1)w)    rows per page

Monet datavector strategy::

    E_dv(s) = ceil(s*X / C_bat)
            + (p+1) * (ceil(X / C_dv) * (1 - (1-s)^C_dv))

    C_bat = floor(B / 2w)        BUNs per page
    C_dv  = floor(B / w)         vector values per page

The first terms are the (clustered) index/BAT range reads of the
selection; the second terms are unclustered fetches — pages multiplied
by the probability that at least one qualifying row/value hits the
page.  The ``p+1`` counts the extent lookup of the first datavector
semijoin (section 5.2.2: "counts as one semijoin more").

Figure 8 plots both for X=6e6, n=16, w=4, B=4096, p in {1,3,6,9,12};
the crossover for p=3 falls at s ~ 0.004.
"""

import math

from ..errors import CostModelError


class CostModelParams:
    """Shared parameters of both strategies (defaults = Figure 8)."""

    def __init__(self, n_rows=6_000_000, n_attrs=16, width=4,
                 page_size=4096):
        if min(n_rows, n_attrs, width, page_size) <= 0:
            raise CostModelError("cost model parameters must be positive")
        self.n_rows = n_rows
        self.n_attrs = n_attrs
        self.width = width
        self.page_size = page_size

    @property
    def c_inv(self):
        """Inverted-list entries per page: floor(B / 2w)."""
        return self.page_size // (2 * self.width)

    @property
    def c_rel(self):
        """n-ary rows per page: floor(B / (n+1)w)."""
        return self.page_size // ((self.n_attrs + 1) * self.width)

    @property
    def c_bat(self):
        """BUNs per page: floor(B / 2w)."""
        return self.page_size // (2 * self.width)

    @property
    def c_dv(self):
        """Datavector values per page: floor(B / w)."""
        return self.page_size // self.width


def _hit_probability(selectivity, per_page):
    """1 - (1-s)^C — probability a page holds >= 1 qualifying entry."""
    return 1.0 - (1.0 - selectivity) ** per_page


def e_rel(selectivity, params=None):
    """Expected page faults of the relational strategy."""
    params = params or CostModelParams()
    if not 0.0 <= selectivity <= 1.0:
        raise CostModelError("selectivity must be in [0, 1]")
    index_pages = math.ceil(selectivity * params.n_rows / params.c_inv)
    table_pages = math.ceil(params.n_rows / params.c_rel)
    return index_pages + table_pages * _hit_probability(selectivity,
                                                        params.c_rel)


def e_dv(selectivity, p_attrs, params=None):
    """Expected page faults of the Monet datavector strategy."""
    params = params or CostModelParams()
    if not 0.0 <= selectivity <= 1.0:
        raise CostModelError("selectivity must be in [0, 1]")
    if p_attrs < 0:
        raise CostModelError("p must be non-negative")
    select_pages = math.ceil(selectivity * params.n_rows / params.c_bat)
    vector_pages = math.ceil(params.n_rows / params.c_dv)
    fetches = (p_attrs + 1) * vector_pages * _hit_probability(
        selectivity, params.c_dv)
    return select_pages + fetches


def crossover(p_attrs, params=None, lo=0.0, hi=1.0, iterations=80):
    """Selectivity where E_dv(s) = E_rel(s) (bisection).

    Below the crossover the relational strategy touches fewer pages;
    above it Monet's thin tables win.  For the Figure 8 parameters and
    p = 3 the paper reports s ~ 0.004.  Returns None when no sign
    change exists on [lo, hi].
    """
    params = params or CostModelParams()

    def gap(s):
        return e_dv(s, p_attrs, params) - e_rel(s, params)

    lo_gap = gap(lo if lo > 0 else 1e-9)
    hi_gap = gap(hi)
    if lo_gap == 0:
        return lo
    if lo_gap * hi_gap > 0:
        return None
    low, high = max(lo, 1e-9), hi
    for _ in range(iterations):
        mid = (low + high) / 2.0
        if gap(mid) * lo_gap > 0:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def figure8_series(params=None, p_values=(1, 3, 6, 9, 12),
                   s_max=0.03, steps=61):
    """The Figure 8 data: selectivity grid + one series per strategy.

    Returns ``(selectivities, {"Erel(n=16)": [...],
    "Edv(p=1,n=16)": [...], ...})`` in the figure's labeling.
    """
    params = params or CostModelParams()
    grid = [s_max * i / (steps - 1) for i in range(steps)]
    series = {"Erel(n=%d)" % params.n_attrs:
              [e_rel(s, params) for s in grid]}
    for p_attrs in p_values:
        label = "Edv(p=%d,n=%d)" % (p_attrs, params.n_attrs)
        series[label] = [e_dv(s, p_attrs, params) for s in grid]
    return grid, series
