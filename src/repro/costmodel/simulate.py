"""Empirical validation of the section 5.2.2 analytic model.

Builds an actual n-ary table (through :class:`~repro.tpcd.rowstore`
machinery) and an actual decomposed/datavectored table (through the
Monet kernel), executes the select-then-project-p-attributes workload
under a cold :class:`~repro.monet.buffer.BufferManager`, and returns
measured fault counts next to the analytic expectations.

The measured numbers track the model closely (same page math drives
both), which is the point: the *operators* charge faults through their
real access patterns, and the model predicts them.
"""

import numpy as np

from ..monet import operators as ops
from ..monet.buffer import BufferManager, use
from ..monet.kernel import MonetKernel
from .iomodel import CostModelParams, e_dv, e_rel


def build_decomposed(n_rows, n_attrs, seed=0):
    """A Monet-side table: one tail-sorted BAT per attribute with a
    datavector, plus the class extent."""
    rng = np.random.Generator(np.random.PCG64(seed))
    kernel = MonetKernel()
    oids = list(range(n_rows))
    attr_names = []
    for attr in range(n_attrs):
        name = "T_a%d" % attr
        values = rng.integers(0, max(4, n_rows), size=n_rows)
        kernel.bulk_load(name, "oid", oids, "int",
                         [int(v) for v in values], group="T")
        attr_names.append(name)
    kernel.create_extent("T", attr_names[0])
    kernel.create_datavectors("T", attr_names)
    kernel.reorder_on_tail(attr_names)
    return kernel, attr_names


def measure_dv(kernel, attr_names, selectivity, p_attrs,
               page_size=4096, seed=0):
    """Measured faults: range-select on attribute 0, then semijoin
    ``p_attrs`` value attributes against the selection."""
    select_bat = kernel.get(attr_names[0])
    n = len(select_bat)
    values = sorted(int(v) for v in select_bat.tail.logical())
    hi = values[min(n - 1, max(0, int(selectivity * n) - 1))] \
        if selectivity > 0 else values[0] - 1
    manager = BufferManager(page_size=page_size)
    with use(manager):
        selected = ops.select_range(select_bat, None, hi)
        ordered = ops.sort_head(selected)
        for attr in range(1, 1 + p_attrs):
            bat = kernel.get(attr_names[attr % len(attr_names)])
            ops.semijoin(bat, ordered)
    return manager.faults, len(selected)


def measure_rel(dataset_columns, selectivity, p_attrs, page_size=4096):
    """Measured faults of the row-store strategy on the same workload.

    ``dataset_columns`` is a dict of equal-length numpy columns; the
    first column is the selection attribute.
    """
    from ..tpcd.rowstore import RowTable
    from ..monet.buffer import get_manager
    table = RowTable("sim", dict(dataset_columns))
    manager = BufferManager(page_size=page_size)
    names = list(dataset_columns)
    values = np.sort(np.asarray(dataset_columns[names[0]]))
    n = len(values)
    hi = values[min(n - 1, max(0, int(selectivity * n) - 1))] \
        if selectivity > 0 else values[0] - 1
    with use(manager):
        mask = np.asarray(dataset_columns[names[0]]) <= hi
        row_ids = np.nonzero(mask)[0]
        _sorted, _perm, index_heap = table.index(names[0])
        get_manager().access_range(index_heap, 0, len(row_ids) * 8)
        get_manager().access_positions(table.heap, row_ids,
                                       table.row_width)
    return manager.faults, len(row_ids)


def validate(n_rows=40_000, n_attrs=16, selectivities=(0.001, 0.01, 0.05),
             p_attrs=3, page_size=4096, seed=0):
    """Measured-vs-model table for both strategies.

    Returns a list of dicts with keys: s, measured_dv, model_dv,
    measured_rel, model_rel.
    """
    params = CostModelParams(n_rows=n_rows, n_attrs=n_attrs, width=4,
                             page_size=page_size)
    kernel, attr_names = build_decomposed(n_rows, n_attrs, seed)
    rng = np.random.Generator(np.random.PCG64(seed))
    columns = {"a%d" % i: rng.integers(0, max(4, n_rows), size=n_rows)
               for i in range(n_attrs)}
    rows = []
    for s in selectivities:
        dv_faults, dv_rows = measure_dv(kernel, attr_names, s, p_attrs,
                                        page_size, seed)
        rel_faults, rel_rows = measure_rel(columns, s, p_attrs, page_size)
        actual_s = dv_rows / n_rows
        rows.append({
            "s": s,
            "actual_s": actual_s,
            "measured_dv": dv_faults,
            "model_dv": e_dv(actual_s, p_attrs, params),
            "measured_rel": rel_faults,
            "model_rel": e_rel(rel_rows / n_rows, params),
        })
    return rows
