"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type.  Sub-hierarchies mirror the layers of the
system: the Monet kernel, the MOA layer, and the TPC-D substrate.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MonetError(ReproError):
    """Base class for errors raised by the Monet kernel substrate."""


class AtomError(MonetError):
    """An unknown atom type, or a value that does not fit an atom type."""


class HeapError(MonetError):
    """Heap construction or access failure."""


class BATError(MonetError):
    """Malformed BAT, or an operation applied to an incompatible BAT."""


class PropertyError(MonetError):
    """A declared BAT property is inconsistent with the BAT's data."""


class OperatorError(MonetError):
    """A BAT-algebra operator was invoked with invalid operands."""


class MILError(MonetError):
    """A MIL program is malformed or failed to execute."""


class PlanVerificationError(MILError):
    """Static plan verification rejected a MIL program before
    execution: an unbound reference, a use-before-def, an operator
    applied to operands it cannot accept, or a malformed statement.
    The plan is wrong; resubmitting it cannot succeed."""

    def __init__(self, message, findings=None):
        super().__init__(message)
        #: the verifier findings behind the rejection (list of
        #: :class:`repro.analysis.verify.Finding`), when available
        self.findings = list(findings) if findings else []


class PlanBudgetExceededError(PlanVerificationError):
    """The statically derived cardinality/byte bound of a plan exceeds
    the configured admission budget.  The plan is well-formed but too
    expensive for this server; not retryable against the same budget."""


class WorkerCrashedError(MonetError):
    """A dispatcher worker process died while a task was in flight.

    The pool respawns the worker; the task that was lost surfaces with
    this error instead of hanging the caller (a task that never reached
    the worker is retried transparently on the replacement)."""


class CatalogError(MonetError):
    """A named BAT is missing from (or duplicated in) the kernel catalog."""


class CatalogLockTimeout(CatalogError):
    """The shared-catalog advisory lock stayed held past the timeout."""


class StaleCatalogError(CatalogError):
    """The on-disk manifest is older than the generation the caller
    requires (a rolled-back directory, or a reader that raced a save
    which never completed)."""


class CatalogChangedError(CatalogError):
    """The catalog was rewritten to a newer generation than the one the
    caller opened (or pinned); the reader must reopen to proceed."""


class ServerError(ReproError):
    """Base class for errors raised by the concurrent query service."""


class ProtocolError(ServerError):
    """A malformed, oversized, or truncated wire-protocol frame — or a
    shipped payload whose checksum does not verify on the client."""


class FrameTooLargeError(ProtocolError):
    """A peer announced a frame longer than ``MAX_FRAME_BYTES``.  The
    server answers with a typed error frame before hanging up, so the
    client sees this instead of a silent disconnect."""


class WireFormatError(ProtocolError):
    """A client asked the hello-frame negotiation for a wire format
    the server does not speak (or sent a malformed negotiation
    request).  The connection survives — the client can fall back to
    the JSON wire — but resending the same negotiation cannot
    succeed."""


class SpoolError(ProtocolError):
    """A spooled (mmap'd-file) result payload could not be read back:
    the file vanished, was truncated, or decoded to bytes that do not
    match the announced length.  Retryable — a resend re-ships the
    payload, through a fresh spool file or inline."""


class ServerOverloadedError(ServerError):
    """Admission control rejected the request: the in-flight limit is
    reached and the bounded wait queue is full (or the queue wait
    exceeded its budget), or the worker pool is respawning after
    repeated crashes.  Back off and retry."""


class QuotaExceededError(ServerOverloadedError):
    """A per-client request quota (token bucket) rejected the request.
    Retryable after backoff, like any overload."""


class ServerDrainingError(ServerError):
    """The server is shutting down gracefully: it stopped accepting
    work and is finishing in-flight requests.  Reconnect elsewhere or
    retry once the restart completes."""


class AuthError(ServerError):
    """The server requires a shared-secret token and the client sent a
    missing or wrong one (or sent requests before authenticating)."""


class QueryTimeoutError(ServerError):
    """A query exceeded its per-query timeout.  The worker executing it
    is killed and respawned, so the slot is reclaimed immediately."""


class ConnectionLostError(ServerError):
    """The client lost its connection mid-request (reset, EOF, or a
    frame torn by the peer).  Idempotent reads may be retried on a
    fresh connection."""


class RetriesExhaustedError(ConnectionLostError):
    """A client retry policy ran out of attempts.  ``__cause__`` holds
    the last underlying error."""

    def __init__(self, message, attempts=None):
        super().__init__(message)
        self.attempts = attempts


class InjectedFaultError(ReproError):
    """A :mod:`repro.faults` plan fired at an injection point.  Only
    ever raised while a fault plan is installed (tests, chaos suite)."""


class MOAError(ReproError):
    """Base class for errors raised by the MOA layer."""


class TypeSystemError(MOAError):
    """Invalid MOA type construction."""


class SchemaError(MOAError):
    """Invalid class definition or schema composition."""


class ParseError(MOAError):
    """Syntax error in a textual MOA query."""

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = "%s (line %d, column %d)" % (message, line, col)
        super().__init__(message)


class TypeCheckError(MOAError):
    """A MOA expression is ill-typed with respect to the schema."""


class RewriteError(MOAError):
    """The MOA->MIL rewriter met a construct it cannot translate."""


class EvaluationError(MOAError):
    """The reference evaluator met an invalid runtime value."""


class MappingError(MOAError):
    """Logical data does not match the schema during flattening."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL front-end."""


class SqlParseError(SqlError):
    """Syntax error in a SQL query text.  Carries the character
    position of the offending token, rendered as line/column, exactly
    like the MOA :class:`ParseError`."""

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = "%s (line %d, column %d)" % (message, line, col)
        super().__init__(message)


class SqlUnsupportedError(SqlError):
    """The SQL parsed, but lies outside the supported subset (window
    functions, outer joins, NULL semantics, ...) or does not bind
    against the TPC-D catalog (unknown table/column, ambiguous name,
    correlation shape the lowering cannot decorrelate).  Resubmitting
    the identical text cannot succeed."""


class TPCDError(ReproError):
    """Base class for errors in the TPC-D substrate."""


class DBGenError(TPCDError):
    """Invalid data-generation parameters."""


class CostModelError(ReproError):
    """Invalid parameters for the analytic IO cost model."""


# ----------------------------------------------------------------------
# retryability classification
# ----------------------------------------------------------------------
#: Whether a request that failed with each error class may be safely
#: retried (all requests are idempotent reads, so "retryable" means
#: "a resend has a chance of succeeding", not "a resend is safe").
#: Every class defined in this module must appear here — the analysis
#: selfcheck (`python -m repro.analysis --selfcheck`) enforces the
#: invariant, so adding an error class without classifying it fails CI.
RETRYABLE = {
    # transient transport / capacity conditions: back off and resend
    "ConnectionLostError": True,
    "ServerOverloadedError": True,
    "QuotaExceededError": True,
    "WorkerCrashedError": True,
    # terminal for this request (or this server): a resend of the
    # identical request cannot do better
    "ReproError": False,
    "MonetError": False,
    "AtomError": False,
    "HeapError": False,
    "BATError": False,
    "PropertyError": False,
    "OperatorError": False,
    "MILError": False,
    "PlanVerificationError": False,
    "PlanBudgetExceededError": False,
    "CatalogError": False,
    "CatalogLockTimeout": True,     # the writer's lock will be released
    "StaleCatalogError": True,      # a completed save makes it current
    "CatalogChangedError": True,    # reopen at the new generation
    "ServerError": False,
    "ProtocolError": False,
    "FrameTooLargeError": False,
    "WireFormatError": False,
    "SpoolError": True,             # a resend re-ships the payload
    "ServerDrainingError": False,   # per policy: find another server
    "AuthError": False,
    "QueryTimeoutError": False,     # the budget is the caller's
    "RetriesExhaustedError": False,  # the retry budget is already spent
    "InjectedFaultError": False,
    "MOAError": False,
    "TypeSystemError": False,
    "SchemaError": False,
    "ParseError": False,
    "TypeCheckError": False,
    "RewriteError": False,
    "EvaluationError": False,
    "MappingError": False,
    "SqlError": False,
    "SqlParseError": False,
    "SqlUnsupportedError": False,
    "TPCDError": False,
    "DBGenError": False,
    "CostModelError": False,
}


def is_retryable(error):
    """Retryability of an exception class or instance.

    Walks the MRO to the nearest classified ancestor, so subclasses
    defined elsewhere inherit their parent's classification; anything
    outside the :class:`ReproError` hierarchy is not retryable."""
    cls = error if isinstance(error, type) else type(error)
    for ancestor in cls.__mro__:
        if ancestor.__name__ in RETRYABLE:
            return RETRYABLE[ancestor.__name__]
    return False
