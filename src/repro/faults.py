"""Deterministic fault injection for storage, workers, and the wire.

The chaos layer mirrors :mod:`repro.monet.parallel`: a process-global
plan installed with :func:`use` (or :func:`set_plan`), **off by
default** — with no plan installed, every :func:`fire` call is a
single ``None`` check, so fault-simulation traces and benchmark
medians stay byte-identical to a build without the layer.

Sites name their injection points and call ``faults.fire(point)`` at
the moment the fault would strike::

    faults.fire("storage.manifest.staged")     # between fsync and rename

A :class:`FaultPlan` maps point names to :class:`FaultSpec` actions:

``raise``
    raise :class:`~repro.errors.InjectedFaultError` at the point;
``crash``
    ``os._exit(CRASH_EXIT_CODE)`` — a hard kill, exactly like a
    ``kill -9`` landing between two syscalls;
``delay``
    sleep ``delay_s`` seconds, then continue (drives timeout paths);
``tear``
    return the spec to the call site, which performs a torn/short
    write of ``fraction`` of the payload and then calls
    :meth:`FaultSpec.conclude` to raise or crash.

Plans are picklable, so :class:`~repro.monet.multiproc
.MultiprocExecutor` can ship one to its worker processes, and
deterministic: firing is governed by ``skip``/``times`` hit counters
plus an optional ``probability`` drawn from a per-spec
``random.Random(seed)`` stream — same plan, same sequence of hits,
same faults.

Injection points self-register via :func:`declare` at import time of
the instrumented module, so the chaos suite can enumerate
:func:`registered_points` and sweep every one of them.
"""

import contextlib
import random
import threading
import time

from .errors import InjectedFaultError

__all__ = [
    "CRASH_EXIT_CODE", "FaultPlan", "FaultSpec", "declare", "fire",
    "get_plan", "registered_points", "set_plan", "use",
]

#: Exit status used by the ``crash`` action — distinguishable from a
#: normal failure in fork-based tests.
CRASH_EXIT_CODE = 23

_REGISTRY = set()


def declare(*points):
    """Register injection point names (idempotent, import time)."""
    _REGISTRY.update(points)


def registered_points(prefix=""):
    """Sorted registered point names, optionally filtered by prefix."""
    return sorted(p for p in _REGISTRY if p.startswith(prefix))


class FaultSpec:
    """One fault bound to one injection point.

    Parameters
    ----------
    point:
        Injection-point name this spec arms.
    action:
        ``"raise"`` | ``"crash"`` | ``"delay"`` | ``"tear"``.
    times:
        Fire at most this many times, then disarm (``None`` = always).
    skip:
        Let this many hits pass before the first firing.
    delay_s:
        Sleep length for ``delay``.
    fraction:
        For ``tear``: fraction of the payload the site should write
        before concluding.
    then:
        For ``tear``: what :meth:`conclude` does afterwards —
        ``"raise"`` (default) or ``"crash"``.
    probability / seed:
        Fire each eligible hit with this probability, drawn from a
        dedicated ``random.Random(seed)`` stream (deterministic).
    """

    __slots__ = ("point", "action", "times", "skip", "delay_s",
                 "fraction", "then", "probability", "seed",
                 "_rng", "_hits", "_fired")

    def __init__(self, point, action="raise", times=1, skip=0,
                 delay_s=0.0, fraction=0.5, then="raise",
                 probability=1.0, seed=0):
        if action not in ("raise", "crash", "delay", "tear"):
            raise ValueError("unknown fault action: %r" % (action,))
        self.point = point
        self.action = action
        self.times = times
        self.skip = int(skip)
        self.delay_s = float(delay_s)
        self.fraction = float(fraction)
        self.then = then
        self.probability = float(probability)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._hits = 0
        self._fired = 0

    # pickle: ship the configuration, reset the counters/stream so a
    # worker process starts from the same deterministic state.
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__
                if not name.startswith("_")}

    def __setstate__(self, state):
        self.__init__(**state)

    def should_fire(self):
        """Advance the hit counter; True when this hit fires."""
        self._hits += 1
        if self._hits <= self.skip:
            return False
        if self.times is not None and self._fired >= self.times:
            return False
        if self.probability < 1.0 and \
                self._rng.random() >= self.probability:
            return False
        self._fired += 1
        return True

    @property
    def fired(self):
        return self._fired

    def conclude(self):
        """Finish a ``tear``: raise or crash per ``then``."""
        if self.then == "crash":
            _crash()
        raise InjectedFaultError(
            "injected torn write at %s" % self.point)

    def __repr__(self):
        return ("FaultSpec(%r, action=%r, times=%r, skip=%d, fired=%d)"
                % (self.point, self.action, self.times, self.skip,
                   self._fired))


class FaultPlan:
    """A set of armed :class:`FaultSpec` keyed by injection point."""

    def __init__(self, specs=()):
        self._specs = {}
        self._lock = threading.Lock()
        for spec in specs:
            self.add(spec)

    def add(self, spec):
        self._specs[spec.point] = spec
        return self

    def arm(self, point, **kwargs):
        """Shorthand: build and add a :class:`FaultSpec`."""
        return self.add(FaultSpec(point, **kwargs))

    def spec_for(self, point):
        """The armed spec if this hit fires, else ``None``."""
        spec = self._specs.get(point)
        if spec is None:
            return None
        with self._lock:
            return spec if spec.should_fire() else None

    def fired(self, point):
        """How many times ``point`` has fired under this plan."""
        spec = self._specs.get(point)
        return 0 if spec is None else spec.fired

    def points(self):
        return sorted(self._specs)

    # the lock is per-process state; workers re-create it on unpickle
    def __getstate__(self):
        return list(self._specs.values())

    def __setstate__(self, specs):
        self.__init__(specs)

    def __repr__(self):
        return "FaultPlan(%s)" % ", ".join(self.points())


#: The installed plan; ``None`` = chaos layer off (the default).
_current = None


def get_plan():
    """The active :class:`FaultPlan`, or ``None`` when disabled."""
    return _current


def set_plan(plan):
    """Install ``plan`` globally (``None`` disables the layer)."""
    global _current
    _current = plan


@contextlib.contextmanager
def use(plan):
    """Context manager installing ``plan`` for the duration."""
    global _current
    previous = _current
    _current = plan
    try:
        yield plan
    finally:
        _current = previous


def _crash():
    import os
    os._exit(CRASH_EXIT_CODE)


def fire(point):
    """Hit an injection point.

    With no plan installed this is one attribute read and a ``None``
    check — the entire overhead on the default path.  With a plan:
    executes ``raise``/``crash``/``delay`` actions here, and returns
    the :class:`FaultSpec` for site-handled actions (``tear``) or
    ``None`` when the point did not fire.
    """
    plan = _current
    if plan is None:
        return None
    spec = plan.spec_for(point)
    if spec is None:
        return None
    if spec.action == "raise":
        raise InjectedFaultError("injected fault at %s" % point)
    if spec.action == "crash":
        _crash()
    if spec.action == "delay":
        time.sleep(spec.delay_s)
        return None
    return spec                                  # "tear": site handles
