"""MOA: the Magnum Object Algebra layer (paper sections 3 and 4).

The logical object data model (base types + SET/TUPLE/OBJECT), its
formally specified flattening onto BATs, the MOA query algebra with
the paper's textual syntax, the MOA -> MIL term rewriter, and the
reference evaluator used to check the Figure 6 commuting diagram.
"""

from .evaluator import Evaluator, evaluate
from .mapping import FlattenedDatabase, flatten
from .parser import parse
from .schema import ClassDef, Schema, ref, setof, tupleof
from .session import MOADatabase, QueryResult
from .structures import (AtomRep, InlineAtomRep, InlineRefRep, Materializer,
                         Mirrored, ObjectRep, RefRep, SetRep, TupleRep,
                         ViaRep, materialize)
from .typecheck import ResolvedQuery, resolve
from .types import (BOOLEAN, CHAR, DOUBLE, FLOAT, INSTANT, INT, LONG,
                    STRING, BaseType, ClassRef, MOAType, SetType, TupleType)
from .rewriter import RewriteResult, Rewriter, rewrite
from .values import Bag, Ref, Row, equivalent, sequences_equivalent

__all__ = [
    "Evaluator", "evaluate",
    "FlattenedDatabase", "flatten",
    "parse",
    "ClassDef", "Schema", "ref", "setof", "tupleof",
    "MOADatabase", "QueryResult",
    "AtomRep", "InlineAtomRep", "InlineRefRep", "Materializer", "Mirrored",
    "ObjectRep", "RefRep", "SetRep", "TupleRep", "ViaRep", "materialize",
    "ResolvedQuery", "resolve",
    "BOOLEAN", "CHAR", "DOUBLE", "FLOAT", "INSTANT", "INT", "LONG",
    "STRING", "BaseType", "ClassRef", "MOAType", "SetType", "TupleType",
    "RewriteResult", "Rewriter", "rewrite",
    "Bag", "Ref", "Row", "equivalent", "sequences_equivalent",
]
