"""AST of the MOA query algebra (paper section 4.1).

MOA "contains the operations select, project, join, semijoin, union,
intersection, difference, subset, in, nest, unnest, and aggregates that
operate on sets; it allows access to attributes of tuples and objects;
it supports operations on the atomic types".  The nodes here cover
that list, plus the ``sort``/``top`` extensions TPC-D needs (declared
as extensions in DESIGN.md).

Set-valued nodes: :class:`Extent`, :class:`Select`, :class:`Project`,
:class:`Join`, :class:`Semijoin`, :class:`SetOp`, :class:`Nest`,
:class:`Unnest`, :class:`Sort`, :class:`Top`.

Scalar expressions: :class:`Element` (the current set element),
:class:`Attr`, :class:`Pos` (``%1``), :class:`Name` (unresolved
identifier, removed by the resolver), :class:`Literal`,
:class:`BinOp`, :class:`UnOp`, :class:`Call`, :class:`Aggregate`,
:class:`TupleCons`, :class:`In`.

Every node renders back to the paper's textual syntax via
:meth:`Node.render`, which the parser round-trip tests rely on.
"""


class Node:
    """Abstract syntax node."""

    def render(self):
        raise NotImplementedError

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.render())

    def children(self):
        return ()


# ----------------------------------------------------------------------
# set expressions
# ----------------------------------------------------------------------
class Extent(Node):
    """A class extent: the set of all instances (e.g. ``Item``)."""

    __slots__ = ("class_name",)

    def __init__(self, class_name):
        self.class_name = class_name

    def render(self):
        return self.class_name


class Select(Node):
    """``select[p1, ..., pk](X)`` — conjunctive selection."""

    __slots__ = ("input", "predicates")

    def __init__(self, input_set, predicates):
        self.input = input_set
        self.predicates = list(predicates)

    def render(self):
        return "select[%s](%s)" % (
            ", ".join(p.render() for p in self.predicates),
            self.input.render())

    def children(self):
        return (self.input, *self.predicates)


class Project(Node):
    """``project[e](X)`` or ``project[<e1: n1, ...>](X)``."""

    __slots__ = ("input", "items")

    def __init__(self, input_set, items):
        #: list of (expr, name or None); a single unnamed item means a
        #: set of plain values, several items mean a set of tuples.
        self.input = input_set
        self.items = list(items)

    def is_tuple_result(self):
        return len(self.items) > 1 or self.items[0][1] is not None

    def render(self):
        if not self.is_tuple_result():
            return "project[%s](%s)" % (self.items[0][0].render(),
                                        self.input.render())
        rendered = ", ".join(
            expr.render() if name is None
            else "%s : %s" % (expr.render(), name)
            for expr, name in self.items)
        return "project[<%s>](%s)" % (rendered, self.input.render())

    def children(self):
        return (self.input, *[expr for expr, _n in self.items])


class Join(Node):
    """``join[lkey, rkey](X, Y)`` — equi-join on key expressions.

    The result is a set of pairs ``<_1: x, _2: y>`` (accessed with
    ``%1`` / ``%2``); multi-attribute keys use tuple constructors.
    """

    __slots__ = ("left", "right", "left_key", "right_key")

    def __init__(self, left, right, left_key, right_key):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def render(self):
        return "join[%s, %s](%s, %s)" % (
            self.left_key.render(), self.right_key.render(),
            self.left.render(), self.right.render())

    def children(self):
        return (self.left, self.right, self.left_key, self.right_key)


class Semijoin(Node):
    """``semijoin[lkey, rkey](X, Y)`` — elements of X with a match in Y;
    ``anti`` flips it to the complement (NOT EXISTS)."""

    __slots__ = ("left", "right", "left_key", "right_key", "anti")

    def __init__(self, left, right, left_key, right_key, anti=False):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.anti = anti

    def render(self):
        op = "antijoin" if self.anti else "semijoin"
        return "%s[%s, %s](%s, %s)" % (
            op, self.left_key.render(), self.right_key.render(),
            self.left.render(), self.right.render())

    def children(self):
        return (self.left, self.right, self.left_key, self.right_key)


class SetOp(Node):
    """``union(X, Y)``, ``difference(X, Y)``, ``intersection(X, Y)``."""

    __slots__ = ("kind", "left", "right")

    KINDS = ("union", "difference", "intersection")

    def __init__(self, kind, left, right):
        assert kind in self.KINDS
        self.kind = kind
        self.left = left
        self.right = right

    def render(self):
        return "%s(%s, %s)" % (self.kind, self.left.render(),
                               self.right.render())

    def children(self):
        return (self.left, self.right)


class Nest(Node):
    """``nest[k1, ..., kn](X)`` — group X by key expressions.

    Result: set of tuples ``<k1, ..., kn, group>`` where ``group`` is
    the nested set of the original elements (the paper's Q13 uses
    ``nest[date]`` and then reaches the nested set through ``%2``).
    """

    __slots__ = ("input", "keys", "group_name")

    def __init__(self, input_set, keys, group_name="group"):
        #: keys: list of (expr, name or None)
        self.input = input_set
        self.keys = list(keys)
        self.group_name = group_name

    def render(self):
        rendered = ", ".join(
            expr.render() if name is None
            else "%s : %s" % (expr.render(), name)
            for expr, name in self.keys)
        return "nest[%s](%s)" % (rendered, self.input.render())

    def children(self):
        return (self.input, *[expr for expr, _n in self.keys])


class Unnest(Node):
    """``unnest[attr](X)`` — flatten a set-valued attribute.

    Result: set of pairs ``<_1: x, _2: element-of-x.attr>``.
    """

    __slots__ = ("input", "attr")

    def __init__(self, input_set, attr):
        self.input = input_set
        self.attr = attr

    def render(self):
        return "unnest[%s](%s)" % (self.attr, self.input.render())

    def children(self):
        return (self.input,)


class Sort(Node):
    """``sort[e1 asc, e2 desc, ...](X)`` (extension for TPC-D)."""

    __slots__ = ("input", "keys")

    def __init__(self, input_set, keys):
        #: keys: list of (expr, descending: bool)
        self.input = input_set
        self.keys = list(keys)

    def render(self):
        rendered = ", ".join(
            "%s %s" % (expr.render(), "desc" if desc else "asc")
            for expr, desc in self.keys)
        return "sort[%s](%s)" % (rendered, self.input.render())

    def children(self):
        return (self.input, *[expr for expr, _d in self.keys])


class Top(Node):
    """``top[n](X)`` — first n elements of a sorted set (extension)."""

    __slots__ = ("input", "n")

    def __init__(self, input_set, n):
        self.input = input_set
        self.n = int(n)

    def render(self):
        return "top[%d](%s)" % (self.n, self.input.render())

    def children(self):
        return (self.input,)


# ----------------------------------------------------------------------
# scalar expressions
# ----------------------------------------------------------------------
class Element(Node):
    """The current element of the enclosing set operation (``%0``)."""

    __slots__ = ()

    def render(self):
        return "%0"


class Name(Node):
    """An unresolved identifier; the resolver turns it into an
    attribute access or a class extent."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def render(self):
        return self.name


class Attr(Node):
    """Attribute access, e.g. ``order.clerk`` or ``%supplies``."""

    __slots__ = ("base", "name")

    def __init__(self, base, name):
        self.base = base
        self.name = name

    def render(self):
        if isinstance(self.base, Element):
            return "%%%s" % self.name
        return "%s.%s" % (self.base.render(), self.name)

    def children(self):
        return (self.base,)


class Pos(Node):
    """Positional tuple access ``%1``, ``%2`` (1-based)."""

    __slots__ = ("base", "index")

    def __init__(self, base, index):
        self.base = base
        self.index = int(index)

    def render(self):
        if isinstance(self.base, Element):
            return "%%%d" % self.index
        return "%s.%%%d" % (self.base.render(), self.index)

    def children(self):
        return (self.base,)


class Literal(Node):
    """A constant with an atom type."""

    __slots__ = ("value", "atom_name")

    def __init__(self, value, atom_name):
        self.value = value
        self.atom_name = atom_name

    def render(self):
        if self.atom_name == "string":
            return '"%s"' % self.value
        if self.atom_name == "char":
            return "'%s'" % self.value
        if self.atom_name == "instant":
            from ..monet.atoms import days_to_date
            return 'date("%s")' % days_to_date(self.value).isoformat()
        if self.atom_name == "bool":
            return "true" if self.value else "false"
        return repr(self.value)


class BinOp(Node):
    """Binary operation in prefix syntax: ``=(a, b)``, ``*(a, b)``."""

    __slots__ = ("op", "left", "right")

    OPS = ("=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/",
           "and", "or")

    def __init__(self, op, left, right):
        assert op in self.OPS, op
        self.op = op
        self.left = left
        self.right = right

    def render(self):
        return "%s(%s, %s)" % (self.op, self.left.render(),
                               self.right.render())

    def children(self):
        return (self.left, self.right)


class UnOp(Node):
    """Unary operation: ``not(x)``, ``neg(x)``."""

    __slots__ = ("op", "operand")

    OPS = ("not", "neg")

    def __init__(self, op, operand):
        assert op in self.OPS, op
        self.op = op
        self.operand = operand

    def render(self):
        return "%s(%s)" % (self.op, self.operand.render())

    def children(self):
        return (self.operand,)


class Call(Node):
    """Scalar function call: ``year(x)``, ``startswith(x, "P")``."""

    __slots__ = ("fname", "args")

    def __init__(self, fname, args):
        self.fname = fname
        self.args = list(args)

    def render(self):
        return "%s(%s)" % (self.fname,
                           ", ".join(a.render() for a in self.args))

    def children(self):
        return tuple(self.args)


class Aggregate(Node):
    """Set aggregate: ``sum(X)``, ``count(X)``, ... — scalar valued."""

    __slots__ = ("func", "input")

    FUNCS = ("sum", "count", "avg", "min", "max")

    def __init__(self, func, input_set):
        assert func in self.FUNCS
        self.func = func
        self.input = input_set

    def render(self):
        return "%s(%s)" % (self.func, self.input.render())

    def children(self):
        return (self.input,)


class TupleCons(Node):
    """Tuple constructor ``<e1: n1, e2: n2, ...>``."""

    __slots__ = ("items",)

    def __init__(self, items):
        #: list of (expr, name or None)
        self.items = list(items)

    def render(self):
        rendered = ", ".join(
            expr.render() if name is None
            else "%s : %s" % (expr.render(), name)
            for expr, name in self.items)
        return "<%s>" % rendered

    def children(self):
        return tuple(expr for expr, _n in self.items)


class In(Node):
    """Membership test ``in(e, X)`` — the paper lists ``in`` among the
    algebra's operations."""

    __slots__ = ("item", "input")

    def __init__(self, item, input_set):
        self.item = item
        self.input = input_set

    def render(self):
        return "in(%s, %s)" % (self.item.render(), self.input.render())

    def children(self):
        return (self.item, self.input)


SET_NODES = (Extent, Select, Project, Join, Semijoin, SetOp, Nest,
             Unnest, Sort, Top)


def walk(node):
    """Depth-first iterator over a subtree."""
    yield node
    for child in node.children():
        yield from walk(child)
