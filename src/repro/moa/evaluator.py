"""Reference evaluator: MOA semantics directly on logical values.

This is the *logical* path of the paper's Figure 6 commuting diagram:
the same resolved query that the rewriter translates to MIL is here
executed naively over the logical object store (Python dicts).  The
test suite checks that both paths produce equivalent results, which is
the paper's notion of a correct implementation ("an implementation for
which both gray paths in Figure 6 yield the same result").

The evaluator is deliberately simple (nested loops, no indexes) — it
is an executable specification, not an engine.
"""

from ..errors import EvaluationError
from ..monet.atoms import days_to_date
from . import ast
from .types import BaseType, ClassRef, SetType, TupleType
from .values import Bag, Ref, Row, canonical_key


class Evaluator:
    """Evaluates a :class:`~repro.moa.typecheck.ResolvedQuery` over a
    logical store ``{class: {oid: {attr: value}}}``."""

    def __init__(self, resolved, data):
        self.resolved = resolved
        self.schema = resolved.schema
        self.data = data

    # ------------------------------------------------------------------
    def run(self):
        """The query result: a list of logical values (query order), or
        a scalar for aggregate-rooted queries."""
        root = self.resolved.root
        if isinstance(root, ast.Aggregate):
            return self.eval_expr(root, None)
        return self.eval_set(root, None)

    # ------------------------------------------------------------------
    # value coercion against declared types
    # ------------------------------------------------------------------
    def _coerce(self, value, moa_type):
        if isinstance(moa_type, ClassRef):
            if isinstance(value, Ref):
                return value
            if isinstance(value, int):
                return Ref(moa_type.class_name, value)
            raise EvaluationError("expected a %s reference, got %r"
                                  % (moa_type.class_name, value))
        if isinstance(moa_type, SetType):
            return [self._coerce(v, moa_type.element) for v in value]
        if isinstance(moa_type, TupleType):
            row = value if isinstance(value, Row) else Row(list(value.items()))
            return Row([(name, self._coerce(row[name], field_type))
                        for name, field_type in moa_type.fields])
        return value

    def _attr(self, ref, name, attr_type):
        try:
            record = self.data[ref.class_name][ref.oid]
        except KeyError:
            raise EvaluationError("dangling reference %r" % ref) from None
        if name not in record:
            raise EvaluationError("object %r misses attribute %r"
                                  % (ref, name))
        return self._coerce(record[name], attr_type)

    # ------------------------------------------------------------------
    # set-valued nodes
    # ------------------------------------------------------------------
    def eval_set(self, node, element):
        value = self.eval_expr(node, element)
        if isinstance(value, Bag):
            return list(value.items)
        if isinstance(value, list):
            return value
        raise EvaluationError("%s did not evaluate to a set"
                              % node.render())

    def eval_expr(self, node, element):
        method = getattr(self, "_eval_%s" % type(node).__name__.lower(),
                         None)
        if method is None:
            raise EvaluationError("cannot evaluate %r" % node)
        return method(node, element)

    # -- sets --------------------------------------------------------------
    def _eval_extent(self, node, _element):
        objects = self.data.get(node.class_name, {})
        return [Ref(node.class_name, oid) for oid in sorted(objects)]

    def _eval_select(self, node, element):
        members = self.eval_set(node.input, element)
        out = []
        for member in members:
            if all(self.eval_expr(p, member) for p in node.predicates):
                out.append(member)
        return out

    def _eval_project(self, node, element):
        members = self.eval_set(node.input, element)
        if len(node.items) == 1 and node.items[0][1] is None:
            expr = node.items[0][0]
            return [self._as_value(self.eval_expr(expr, member))
                    for member in members]
        out = []
        for member in members:
            out.append(Row([(name, self._as_value(
                self.eval_expr(expr, member)))
                for expr, name in node.items]))
        return out

    def _as_value(self, value):
        """Nested set results embed as Bags inside rows/results."""
        if isinstance(value, list):
            return Bag(value)
        return value

    def _eval_join(self, node, element):
        left = self.eval_set(node.left, element)
        right = self.eval_set(node.right, element)
        out = []
        right_keys = [(self._key(self.eval_expr(node.right_key, r)), r)
                      for r in right]
        for left_member in left:
            left_key = self._key(self.eval_expr(node.left_key, left_member))
            for right_key, right_member in right_keys:
                if left_key == right_key:
                    out.append(Row([("_1", left_member),
                                    ("_2", right_member)]))
        return out

    def _eval_semijoin(self, node, element):
        left = self.eval_set(node.left, element)
        right = self.eval_set(node.right, element)
        right_keys = {self._key(self.eval_expr(node.right_key, r))
                      for r in right}
        if node.anti:
            return [l for l in left
                    if self._key(self.eval_expr(node.left_key, l))
                    not in right_keys]
        return [l for l in left
                if self._key(self.eval_expr(node.left_key, l))
                in right_keys]

    def _key(self, value):
        """Equality key for joins/grouping (tuple-aware, float-safe)."""
        if isinstance(value, Row):
            return tuple(self._key(v) for v in value.values)
        return canonical_key(value)

    def _eval_setop(self, node, element):
        left = self.eval_set(node.left, element)
        right = self.eval_set(node.right, element)
        left_unique, left_keys = _dedup(left, self._key)
        right_unique, right_keys = _dedup(right, self._key)
        if node.kind == "union":
            extra = [r for r, k in zip(right_unique, right_keys)
                     if k not in set(left_keys)]
            return left_unique + extra
        if node.kind == "difference":
            members = set(right_keys)
            return [l for l, k in zip(left_unique, left_keys)
                    if k not in members]
        members = set(right_keys)
        return [l for l, k in zip(left_unique, left_keys) if k in members]

    def _eval_nest(self, node, element):
        members = self.eval_set(node.input, element)
        groups = {}
        order = []
        for member in members:
            key = tuple(self._key(self.eval_expr(expr, member))
                        for expr, _name in node.keys)
            if key not in groups:
                groups[key] = (member, [])
                order.append(key)
            groups[key][1].append(member)
        out = []
        for key in order:
            witness, bucket = groups[key]
            fields = [(name, self.eval_expr(expr, witness))
                      for expr, name in node.keys]
            fields.append((node.group_name, Bag(bucket)))
            out.append(Row(fields))
        return out

    def _eval_unnest(self, node, element):
        members = self.eval_set(node.input, element)
        inner_type = self.resolved.type_of(node.input).element
        out = []
        for member in members:
            attr_type = self._element_attr_type(inner_type, node.attr)
            if isinstance(member, Ref):
                elements = self._attr(member, node.attr, attr_type)
            else:
                elements = self._coerce(member[node.attr], attr_type)
            for sub in elements:
                out.append(Row([("_1", member), ("_2", sub)]))
        return out

    def _element_attr_type(self, elem_type, name):
        if isinstance(elem_type, ClassRef):
            return self.schema.cls(elem_type.class_name).attribute(name)
        if isinstance(elem_type, TupleType):
            return elem_type.field(name)
        raise EvaluationError("%s has no attributes" % elem_type.render())

    def _eval_sort(self, node, element):
        members = self.eval_set(node.input, element)
        out = list(members)
        # stable multi-key: sort by the last key first
        for expr, descending in reversed(node.keys):
            out.sort(key=lambda m, e=expr: canonical_key(
                self.eval_expr(e, m)), reverse=descending)
        return out

    def _eval_top(self, node, element):
        return self.eval_set(node.input, element)[:node.n]

    # -- scalars -------------------------------------------------------------
    def _eval_element(self, _node, element):
        if element is None:
            raise EvaluationError("%0 outside a set operation")
        return element

    def _eval_attr(self, node, element):
        base = self.eval_expr(node.base, element)
        base_type = self.resolved.type_of(node.base)
        if isinstance(base, Ref):
            return self._attr(base, node.name,
                              self._element_attr_type(base_type, node.name))
        if isinstance(base, Row):
            return base[node.name]
        raise EvaluationError("cannot access attribute %r of %r"
                              % (node.name, base))

    def _eval_pos(self, node, element):
        base = self.eval_expr(node.base, element)
        if not isinstance(base, Row):
            raise EvaluationError("positional access on non-tuple %r"
                                  % (base,))
        return base.at(node.index)

    def _eval_literal(self, node, _element):
        return node.value

    def _eval_binop(self, node, element):
        if node.op == "and":
            return bool(self.eval_expr(node.left, element)) \
                and bool(self.eval_expr(node.right, element))
        if node.op == "or":
            return bool(self.eval_expr(node.left, element)) \
                or bool(self.eval_expr(node.right, element))
        left = self.eval_expr(node.left, element)
        right = self.eval_expr(node.right, element)
        if node.op == "=":
            return self._key(left) == self._key(right)
        if node.op == "!=":
            return self._key(left) != self._key(right)
        if node.op == "<":
            return left < right
        if node.op == "<=":
            return left <= right
        if node.op == ">":
            return left > right
        if node.op == ">=":
            return left >= right
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            return left / right
        raise EvaluationError("unknown operator %r" % node.op)

    def _eval_unop(self, node, element):
        value = self.eval_expr(node.operand, element)
        if node.op == "not":
            return not value
        return -value

    def _eval_call(self, node, element):
        args = [self.eval_expr(a, element) for a in node.args]
        if node.fname == "year":
            return days_to_date(args[0]).year
        if node.fname == "month":
            return days_to_date(args[0]).month
        if node.fname == "startswith":
            return args[0].startswith(args[1])
        if node.fname == "endswith":
            return args[0].endswith(args[1])
        if node.fname == "contains":
            return args[1] in args[0]
        if node.fname == "ifthenelse":
            return args[1] if args[0] else args[2]
        raise EvaluationError("unknown function %r" % node.fname)

    def _eval_aggregate(self, node, element):
        members = self.eval_set(node.input, element)
        if node.func == "count":
            return len(members)
        if not members:
            return 0 if node.func == "sum" else None
        if node.func == "sum":
            return sum(members)
        if node.func == "avg":
            return sum(members) / len(members)
        if node.func == "min":
            return min(members)
        return max(members)

    def _eval_tuplecons(self, node, element):
        return Row([(name, self._as_value(self.eval_expr(expr, element)))
                    for expr, name in node.items])

    def _eval_in(self, node, element):
        item = self._key(self.eval_expr(node.item, element))
        members = self.eval_set(node.input, element)
        return any(self._key(m) == item for m in members)


def _dedup(values, key_fn):
    seen = set()
    unique = []
    keys = []
    for value in values:
        key = key_fn(value)
        if key not in seen:
            seen.add(key)
            unique.append(value)
            keys.append(key)
    return unique, keys


def evaluate(resolved, data):
    """Run the reference evaluator; returns a list of logical values."""
    return Evaluator(resolved, data).run()
