"""Flattening: full vertical decomposition of objects into BATs.

Implements the mapping of paper section 3.3 / Figure 3 with the
naming conventions of the TPC-D discussion (section 6):

====================================  =================================
logical construct                     BATs created
====================================  =================================
class ``C`` extent                    ``C``            BAT[oid, void]
base/ref attribute ``a``              ``C_a``          BAT[oid, value]
set attribute of simple elements      ``C_a``          BAT[oid, value]
  (the SET(A) optimisation)             (0..n BUNs per owner)
set attribute of tuples               ``C_a``          BAT[oid, elemid]
                                      ``C_a_f``        BAT[elemid, value]
                                        per tuple field f (synced)
tuple attribute                       ``C_a_f``        BAT[oid, value]
====================================  =================================

All attribute BATs of one class are bulk-loaded in oid order with a
shared alignment token, so the kernel knows they are mutually *synced*
("this utility correctly sets the properties key, ordered, and synced",
section 6).  The structure expression for each class — e.g. the
paper's ``SET(Supplier, OBJECT(...))`` — is produced by
:meth:`FlattenedDatabase.class_rep`.
"""

from ..errors import MappingError
from ..monet import atoms as _atoms
from ..monet.mil import Var
from .schema import Schema
from .structures import (AtomRep, InlineAtomRep, InlineRefRep, Mirrored,
                         ObjectRep, RefRep, SetRep, TupleRep)
from .types import BaseType, ClassRef, SetType, TupleType
from .values import Ref, Row


class FlattenedDatabase:
    """A schema mapped onto a kernel catalog, plus the logical data.

    The logical store (``data``) is kept as the evaluator's input, so
    the two gray paths of Figure 6 start from the same value.
    """

    def __init__(self, schema, kernel, data):
        self.schema = schema
        self.kernel = kernel
        self.data = data

    # -- naming convention ------------------------------------------------
    def extent_name(self, class_name):
        return class_name

    def attr_bat_name(self, class_name, attr):
        return "%s_%s" % (class_name, attr)

    def field_bat_name(self, class_name, attr, field):
        return "%s_%s_%s" % (class_name, attr, field)

    # -- structure expressions --------------------------------------------
    def class_rep(self, class_name):
        """``SET(extent, OBJECT(class))`` for one class extent."""
        extent = Mirrored(Var(self.extent_name(class_name)))
        return SetRep(extent, ObjectRep(class_name))

    def attribute_rep(self, class_name, attr):
        """The rep of one attribute, as a function of object oids."""
        attr_type = self.schema.cls(class_name).attribute(attr)
        source = Var(self.attr_bat_name(class_name, attr))
        return self._type_rep(attr_type, source, class_name, attr)

    def _type_rep(self, attr_type, source, class_name, attr):
        if isinstance(attr_type, BaseType):
            return AtomRep(source, attr_type.atom.name)
        if isinstance(attr_type, ClassRef):
            return RefRep(source, attr_type.class_name)
        if isinstance(attr_type, SetType):
            element = attr_type.element
            if isinstance(element, BaseType):
                return SetRep(source, InlineAtomRep(element.atom.name))
            if isinstance(element, ClassRef):
                return SetRep(source, InlineRefRep(element.class_name))
            if isinstance(element, TupleType):
                fields = []
                for field_name, field_type in element.fields:
                    field_source = Var(self.field_bat_name(
                        class_name, attr, field_name))
                    fields.append((field_name, self._type_rep(
                        field_type, field_source, class_name,
                        "%s_%s" % (attr, field_name))))
                return SetRep(source, TupleRep(fields))
            raise MappingError("unsupported set element type %r"
                               % element)
        if isinstance(attr_type, TupleType):
            fields = []
            for field_name, field_type in attr_type.fields:
                field_source = Var(self.field_bat_name(
                    class_name, attr, field_name))
                fields.append((field_name, self._type_rep(
                    field_type, field_source, class_name,
                    "%s_%s" % (attr, field_name))))
            return TupleRep(fields)
        raise MappingError("unsupported attribute type %r" % attr_type)


def _atom_of(base_type):
    return base_type.atom.name


def _ref_oid(value, target_class):
    if isinstance(value, Ref):
        if value.class_name != target_class:
            raise MappingError("reference to %s where %s expected"
                               % (value.class_name, target_class))
        return value.oid
    if isinstance(value, int):
        return value
    raise MappingError("cannot interpret %r as a %s reference"
                       % (value, target_class))


def _row_of(value):
    if isinstance(value, Row):
        return value
    if isinstance(value, dict):
        return Row(list(value.items()))
    raise MappingError("cannot interpret %r as a tuple value" % (value,))


def flatten(schema, data, kernel, datavectors=False, reorder=False):
    """Vertically decompose ``data`` into ``kernel`` BATs.

    ``data`` maps class name -> {oid -> {attr -> logical value}}.
    When ``datavectors`` is set, the section 6 accelerator pipeline
    also runs (extents exist regardless); ``reorder`` additionally
    re-sorts all plain attribute BATs on tail values.
    Returns a :class:`FlattenedDatabase`.
    """
    if not isinstance(schema, Schema):
        raise MappingError("flatten needs a Schema")
    schema.validate()
    flat = FlattenedDatabase(schema, kernel, data)
    for class_name, definition in schema.classes.items():
        objects = data.get(class_name, {})
        oids = sorted(objects)
        _load_extent(kernel, flat, class_name, oids)
        for attr, attr_type in definition.attributes:
            _load_attribute(kernel, flat, class_name, attr, attr_type,
                            objects, oids)
    if datavectors:
        create_datavectors(flat)
    if reorder:
        reorder_on_tail(flat)
    return flat


def _load_extent(kernel, flat, class_name, oids):
    # extent[oid, void], per section 6
    from ..monet.bat import BAT
    from ..monet.column import VoidColumn, column_from_values
    from ..monet.properties import compute_props
    name = flat.extent_name(class_name)
    head = column_from_values("oid", oids, label=name + ".head")
    extent = BAT(head, VoidColumn(0, len(oids)),
                 alignment=kernel.group_alignment(class_name))
    extent.props = compute_props(extent)
    from ..monet.kernel import mark_persistent
    mark_persistent(extent)
    kernel.register(name, extent)


def _load_attribute(kernel, flat, class_name, attr, attr_type, objects,
                    oids):
    name = flat.attr_bat_name(class_name, attr)
    if isinstance(attr_type, BaseType):
        values = [_attr_value(objects, oid, attr, class_name)
                  for oid in oids]
        kernel.bulk_load(name, "oid", oids, _atom_of(attr_type), values,
                         group=class_name)
        return
    if isinstance(attr_type, ClassRef):
        values = [_ref_oid(_attr_value(objects, oid, attr, class_name),
                           attr_type.class_name) for oid in oids]
        kernel.bulk_load(name, "oid", oids, "oid", values,
                         group=class_name)
        return
    if isinstance(attr_type, SetType):
        _load_set_attribute(kernel, flat, class_name, attr, attr_type,
                            objects, oids, name)
        return
    if isinstance(attr_type, TupleType):
        for field_name, field_type in attr_type.fields:
            field_bat = flat.field_bat_name(class_name, attr, field_name)
            rows = [_row_of(_attr_value(objects, oid, attr, class_name))
                    for oid in oids]
            if isinstance(field_type, BaseType):
                values = [row[field_name] for row in rows]
                kernel.bulk_load(field_bat, "oid", oids,
                                 _atom_of(field_type), values,
                                 group=class_name)
            elif isinstance(field_type, ClassRef):
                values = [_ref_oid(row[field_name], field_type.class_name)
                          for row in rows]
                kernel.bulk_load(field_bat, "oid", oids, "oid", values,
                                 group=class_name)
            else:
                raise MappingError(
                    "%s.%s.%s: nested structures inside plain tuple "
                    "attributes are not supported"
                    % (class_name, attr, field_name))
        return
    raise MappingError("unsupported attribute type for %s.%s"
                       % (class_name, attr))


def _load_set_attribute(kernel, flat, class_name, attr, attr_type,
                        objects, oids, name):
    element = attr_type.element
    group = "%s:%s" % (class_name, attr)
    if isinstance(element, BaseType):
        owners, values = _gather_set(objects, oids, attr, class_name)
        kernel.bulk_load(name, "oid", owners, _atom_of(element), values,
                         group=group)
        return
    if isinstance(element, ClassRef):
        owners, values = _gather_set(objects, oids, attr, class_name)
        ref_oids = [_ref_oid(v, element.class_name) for v in values]
        kernel.bulk_load(name, "oid", owners, "oid", ref_oids,
                         group=group)
        return
    if isinstance(element, TupleType):
        owners, values = _gather_set(objects, oids, attr, class_name)
        elem_ids = list(range(len(values)))
        kernel.bulk_load(name, "oid", owners, "oid", elem_ids, group=group)
        rows = [_row_of(v) for v in values]
        for field_name, field_type in element.fields:
            field_bat = flat.field_bat_name(class_name, attr, field_name)
            if isinstance(field_type, BaseType):
                field_values = [row[field_name] for row in rows]
                kernel.bulk_load(field_bat, "oid", elem_ids,
                                 _atom_of(field_type), field_values,
                                 group=group)
            elif isinstance(field_type, ClassRef):
                field_values = [_ref_oid(row[field_name],
                                         field_type.class_name)
                                for row in rows]
                kernel.bulk_load(field_bat, "oid", elem_ids, "oid",
                                 field_values, group=group)
            else:
                raise MappingError(
                    "%s.%s.%s: doubly nested sets are not supported"
                    % (class_name, attr, field_name))
        return
    raise MappingError("unsupported set element type for %s.%s"
                       % (class_name, attr))


def _attr_value(objects, oid, attr, class_name):
    try:
        record = objects[oid]
    except KeyError:
        raise MappingError("no object %d in class %s"
                           % (oid, class_name)) from None
    if attr not in record:
        raise MappingError("object %s:%d misses attribute %r"
                           % (class_name, oid, attr))
    return record[attr]


def _gather_set(objects, oids, attr, class_name):
    owners = []
    values = []
    for oid in oids:
        elements = _attr_value(objects, oid, attr, class_name)
        for element in elements:
            owners.append(oid)
            values.append(element)
    return owners, values


def create_datavectors(flat):
    """Section 6: extents already exist; build value vectors per class.

    Only plain (non-set) attribute BATs get datavectors — they are the
    ``[oid, value]`` tables the OLAP value phase semijoins against.
    """
    kernel = flat.kernel
    for class_name, definition in flat.schema.classes.items():
        attr_names = []
        for attr, attr_type in definition.attributes:
            if isinstance(attr_type, (BaseType, ClassRef)):
                attr_names.append(flat.attr_bat_name(class_name, attr))
        kernel.create_datavectors(class_name, attr_names,
                                  extent_name=flat.extent_name(class_name))


def reorder_on_tail(flat):
    """Section 6: re-sort plain attribute BATs on tail values."""
    kernel = flat.kernel
    names = []
    for class_name, definition in flat.schema.classes.items():
        for attr, attr_type in definition.attributes:
            if isinstance(attr_type, (BaseType, ClassRef)):
                names.append(flat.attr_bat_name(class_name, attr))
    kernel.reorder_on_tail(names)
    return names
