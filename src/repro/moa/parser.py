"""Parser for the textual MOA syntax used in the paper.

The grammar follows the paper's examples::

    select[=(order.clerk, "Clerk#000000088"), =(returnflag, 'R')](Item)
    project[<year(order.orderdate) : date,
             *(extendedprice, -(1.0, discount)) : revenue>](...)
    nest[date](...)
    project[<%name, select[=(%available, 0)](%supplies)>](Supplier)

Operators are written in prefix form (``=(a, b)``, ``*(a, b)``);
``%name`` / ``%1`` access attributes and tuple positions of the
current element; bare identifiers are left as :class:`~.ast.Name`
nodes for the resolver (they may be attributes or class extents).
Extensions: ``sort[e asc|desc, ...](X)``, ``top[n](X)``,
``date("1998-09-02")`` literals, ``in(e, X)``.
"""

import re

from ..errors import ParseError
from ..monet.atoms import date_to_days
from . import ast

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<string>"[^"]*")
  | (?P<char>'[^']')
  | (?P<number>\d+\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|[=<>+\-*/])
  | (?P<sym>[\[\]\(\),:%.])
""", re.VERBOSE)

_SET_OPS = ("select", "project", "join", "semijoin", "antijoin", "nest",
            "unnest", "sort", "top")
_BINARY_SET_OPS = ("union", "difference", "intersection")
_AGGREGATES = ast.Aggregate.FUNCS
_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")
_ARITHMETIC = ("+", "-", "*", "/")


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind, text, position):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self):
        return "%s(%r)" % (self.kind, self.text)


def _tokenize(text):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character %r" % text[position],
                             position, text)
        kind = match.lastgroup
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing ---------------------------------------------------
    def peek(self, offset=0):
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, text):
        token = self.next()
        if token.text != text:
            raise ParseError("expected %r, found %r" % (text, token.text),
                             token.position, self.text)
        return token

    def at(self, text):
        return self.peek().text == text

    def error(self, message):
        token = self.peek()
        raise ParseError(message + " (found %r)" % token.text,
                         token.position, self.text)

    # -- entry ------------------------------------------------------------
    def parse(self):
        expr = self.parse_expr()
        if self.peek().kind != "eof":
            self.error("trailing input after expression")
        return expr

    # -- expressions ------------------------------------------------------
    def parse_expr(self):
        return self._suffixes(self._primary())

    def _primary(self):
        token = self.peek()
        if token.kind == "op":
            # '<' opens a tuple constructor unless applied as '<(a, b)'
            if token.text == "<" and self.peek(1).text != "(":
                return self._tuple_cons()
            return self._prefix_op()
        if token.kind == "string":
            self.next()
            return ast.Literal(token.text[1:-1], "string")
        if token.kind == "char":
            self.next()
            return ast.Literal(token.text[1:-1], "char")
        if token.kind == "number":
            self.next()
            if "." in token.text:
                return ast.Literal(float(token.text), "double")
            return ast.Literal(int(token.text), "int")
        if token.text == "%":
            return self._percent()
        if token.text == "<":
            return self._tuple_cons()
        if token.kind == "ident":
            return self._ident()
        self.error("expected an expression")

    def _prefix_op(self):
        token = self.next()
        op = token.text
        if not self.at("("):
            # '<' not followed by '(' means a tuple constructor was
            # mis-tokenised; only reachable for stray operators
            self.error("operator %r must be applied as %s(...)" % (op, op))
        args = self._paren_args()
        if op in _COMPARISONS or op in _ARITHMETIC:
            if len(args) != 2:
                self.error("operator %r takes two arguments" % op)
            return ast.BinOp(op, args[0], args[1])
        self.error("unknown operator %r" % op)

    def _percent(self):
        self.expect("%")
        token = self.next()
        if token.kind == "number":
            index = int(token.text)
            if index == 0:
                return ast.Element()
            return ast.Pos(ast.Element(), index)
        if token.kind == "ident":
            return ast.Attr(ast.Element(), token.text)
        raise ParseError("expected attribute or position after %%",
                         token.position, self.text)

    def _tuple_cons(self):
        start = self.peek()
        # '<' directly followed by '(' is the less-than operator and is
        # handled by _prefix_op through the 'op' token kind; reaching
        # here means a genuine tuple constructor.
        self.expect("<")
        items = self._item_list(">")
        self.expect(">")
        if not items:
            raise ParseError("empty tuple constructor", start.position,
                             self.text)
        return ast.TupleCons(items)

    def _at_closer(self, closer):
        if self.peek().text != closer:
            return False
        # '>' only closes when not applied as the '>(a, b)' operator
        return closer != ">" or self.peek(1).text != "("

    def _item_list(self, closer):
        """``expr (: name)?`` items separated by commas."""
        items = []
        while not self._at_closer(closer):
            expr = self.parse_expr()
            name = None
            if self.at(":"):
                self.next()
                name_token = self.next()
                if name_token.kind != "ident":
                    raise ParseError("expected a field name after ':'",
                                     name_token.position, self.text)
                name = name_token.text
            items.append((expr, name))
            if self.at(","):
                self.next()
            elif not self._at_closer(closer):
                self.error("expected ',' or %r in item list" % closer)
        return items

    def _ident(self):
        token = self.next()
        name = token.text
        if name in _SET_OPS and self.at("["):
            return self._set_op(name)
        if name in _BINARY_SET_OPS and self.at("("):
            args = self._paren_args()
            if len(args) != 2:
                self.error("%s takes two set arguments" % name)
            return ast.SetOp(name, args[0], args[1])
        if name in ("and", "or") and self.at("("):
            args = self._paren_args()
            if len(args) != 2:
                self.error("%s takes two arguments" % name)
            return ast.BinOp(name, args[0], args[1])
        if name in ("not", "neg") and self.at("("):
            args = self._paren_args()
            if len(args) != 1:
                self.error("%s takes one argument" % name)
            return ast.UnOp(name, args[0])
        if name in _AGGREGATES and self.at("("):
            args = self._paren_args()
            if len(args) != 1:
                self.error("aggregate %s takes one set argument" % name)
            return ast.Aggregate(name, args[0])
        if name == "date" and self.at("("):
            args_start = self.peek()
            args = self._paren_args()
            if len(args) != 1 or not isinstance(args[0], ast.Literal) \
                    or args[0].atom_name != "string":
                raise ParseError('date literal must be date("YYYY-MM-DD")',
                                 args_start.position, self.text)
            return ast.Literal(date_to_days(args[0].value), "instant")
        if name == "in" and self.at("("):
            args = self._paren_args()
            if len(args) != 2:
                self.error("in takes (element, set)")
            return ast.In(args[0], args[1])
        if name in ("true", "false"):
            return ast.Literal(name == "true", "bool")
        if self.at("("):
            args = self._paren_args()
            return ast.Call(name, args)
        return ast.Name(name)

    def _paren_args(self):
        self.expect("(")
        args = []
        while not self.at(")"):
            args.append(self.parse_expr())
            if self.at(","):
                self.next()
            elif not self.at(")"):
                self.error("expected ',' or ')' in argument list")
        self.expect(")")
        return args

    def _suffixes(self, expr):
        while self.at("."):
            self.next()
            token = self.next()
            if token.text == "%":
                pos_token = self.next()
                if pos_token.kind != "number":
                    raise ParseError("expected position after '.%'",
                                     pos_token.position, self.text)
                expr = ast.Pos(expr, int(pos_token.text))
            elif token.kind == "ident":
                expr = ast.Attr(expr, token.text)
            else:
                raise ParseError("expected attribute name after '.'",
                                 token.position, self.text)
        return expr

    # -- set operators ----------------------------------------------------
    def _set_op(self, name):
        self.expect("[")
        if name == "select":
            predicates = []
            while not self.at("]"):
                predicates.append(self.parse_expr())
                if self.at(","):
                    self.next()
            self.expect("]")
            inputs = self._paren_args()
            if len(inputs) != 1:
                self.error("select takes one set argument")
            if not predicates:
                self.error("select needs at least one predicate")
            return ast.Select(inputs[0], predicates)
        if name == "project":
            item_expr = self.parse_expr()
            self.expect("]")
            inputs = self._paren_args()
            if len(inputs) != 1:
                self.error("project takes one set argument")
            if isinstance(item_expr, ast.TupleCons):
                return ast.Project(inputs[0], item_expr.items)
            return ast.Project(inputs[0], [(item_expr, None)])
        if name in ("join", "semijoin", "antijoin"):
            left_key = self.parse_expr()
            self.expect(",")
            right_key = self.parse_expr()
            self.expect("]")
            inputs = self._paren_args()
            if len(inputs) != 2:
                self.error("%s takes two set arguments" % name)
            if name == "join":
                return ast.Join(inputs[0], inputs[1], left_key, right_key)
            return ast.Semijoin(inputs[0], inputs[1], left_key, right_key,
                                anti=(name == "antijoin"))
        if name == "nest":
            keys = self._item_list("]")
            self.expect("]")
            inputs = self._paren_args()
            if len(inputs) != 1:
                self.error("nest takes one set argument")
            if not keys:
                self.error("nest needs at least one key")
            return ast.Nest(inputs[0], keys)
        if name == "unnest":
            attr_token = self.next()
            if attr_token.text == "%":
                attr_token = self.next()
            if attr_token.kind != "ident":
                raise ParseError("unnest needs an attribute name",
                                 attr_token.position, self.text)
            self.expect("]")
            inputs = self._paren_args()
            if len(inputs) != 1:
                self.error("unnest takes one set argument")
            return ast.Unnest(inputs[0], attr_token.text)
        if name == "sort":
            keys = []
            while not self.at("]"):
                expr = self.parse_expr()
                descending = False
                if self.peek().text in ("asc", "desc"):
                    descending = self.next().text == "desc"
                keys.append((expr, descending))
                if self.at(","):
                    self.next()
            self.expect("]")
            inputs = self._paren_args()
            if len(inputs) != 1:
                self.error("sort takes one set argument")
            if not keys:
                self.error("sort needs at least one key")
            return ast.Sort(inputs[0], keys)
        if name == "top":
            count_token = self.next()
            if count_token.kind != "number" or "." in count_token.text:
                raise ParseError("top needs an integer count",
                                 count_token.position, self.text)
            self.expect("]")
            inputs = self._paren_args()
            if len(inputs) != 1:
                self.error("top takes one set argument")
            return ast.Top(inputs[0], int(count_token.text))
        self.error("unknown set operator %r" % name)


def parse(text):
    """Parse a MOA query text into an (unresolved) AST."""
    return Parser(text).parse()
