"""The MOA -> MIL term rewriter (paper section 4.3).

"The idea behind the algebra implementation is to translate a query on
the representation of the structured operands into a representation of
the structured query result" — each MOA operator becomes a short MIL
program fragment plus a structure function over the result BATs.

The central compile-time objects:

* :class:`SetComp` — a compiled top-level set: a *carrier* MIL
  variable (a BAT whose heads are the candidate element ids) plus the
  element's structure rep.
* :class:`NestedComp` — a compiled set-valued attribute: an *index*
  variable (``BAT[owner, elem]``) plus the element rep; per the paper
  (section 4.3.2) operations on nested sets run once on the flattened
  index instead of once per owner.
* :class:`Col` — a compiled scalar expression over a carrier:
  ``BAT[elem, value]``, total on the candidates.

Published rewrite rules honoured literally:

* ``select[f](SET(A, X)) -> SET(semijoin(A, T(f(X))), X)`` — the
  carrier is filtered with a semijoin against the BAT of qualifying
  ids (:meth:`Rewriter._apply_predicate`).
* Indexable predicates (attribute path compared to a literal) compile
  to a selection on the *full* tail-sorted attribute BAT followed by
  joins back along the reference path — exactly the Q13 plan
  ``orders := select(Order_clerk, ...); items := join(Item_order,
  orders)``.
* ``nest`` compiles to ``group`` (+ binary ``group`` per extra key),
  key extraction, and a member index, like Figure 5's grouping block.
* Aggregates over nested sets compile to one set-aggregate
  ``{g}(join(index, values))`` — "nested aggregates in one go".
"""

from ..analysis.verify import (catalog_stats_from_kernel, check_program,
                               live_statements)
from ..errors import RewriteError
from ..monet import atoms as _atoms
from ..monet.mil import MILProgram, Var
from ..monet.optimizer import get_optimizer
from . import ast
from .structures import (AtomRep, InlineAtomRep, InlineRefRep, Mirrored,
                         ObjectRep, RefRep, SetRep, TupleRep, ViaRep)
from .types import BaseType, ClassRef, SetType, TupleType


class Col:
    """A compiled scalar column: MIL var of BAT[elem, value]."""

    __slots__ = ("var", "moa_type")

    def __init__(self, var, moa_type):
        self.var = var
        self.moa_type = moa_type


class SetComp:
    """A compiled top-level set (carrier + element rep)."""

    __slots__ = ("carrier", "inner", "elem_type")

    def __init__(self, carrier, inner, elem_type):
        self.carrier = carrier
        self.inner = inner
        self.elem_type = elem_type


class NestedComp:
    """A compiled nested set: index BAT[owner, elem] + element rep."""

    __slots__ = ("index", "inner", "elem_type")

    def __init__(self, index, inner, elem_type):
        self.index = index
        self.inner = inner
        self.elem_type = elem_type


class RewriteResult:
    """MIL program + result structure rep (+ result kind)."""

    def __init__(self, program, rep, elem_type, scalar_var=None):
        self.program = program
        self.rep = rep
        self.elem_type = elem_type
        #: set for scalar (aggregate-rooted) queries
        self.scalar_var = scalar_var


class Rewriter:
    """Compiles one resolved MOA query into one MIL program."""

    def __init__(self, resolved, flat):
        self.resolved = resolved
        self.schema = resolved.schema
        self.flat = flat
        self.program = MILProgram()
        #: (attr source key, carrier name) -> Col, to reuse semijoins
        self._col_cache = {}

    # ------------------------------------------------------------------
    def rewrite(self):
        root = self.resolved.root
        if isinstance(root, ast.Aggregate):
            col_or_comp = self.compile_set(root.input, None)
            if not isinstance(col_or_comp, SetComp):
                raise RewriteError("scalar aggregate root needs a "
                                   "top-level set")
            value = self.value_col(col_or_comp)
            out = self.program.emit("aggr_all", [value.var], fn=root.func,
                                    hint="scalar")
            return RewriteResult(self.program, None,
                                 self.resolved.type_of(root),
                                 scalar_var=out.name)
        comp = self.compile_set(root, None)
        if isinstance(comp, NestedComp):
            raise RewriteError("query root is a nested set")
        index = self.program.emit("ident", [comp.carrier], hint="result",
                                  comment="result set index")
        rep = SetRep(index, comp.inner)
        return RewriteResult(self.program, rep, comp.elem_type)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def emit(self, op, args, **kw):
        return self.program.emit(op, args, **kw)

    def type_of(self, node):
        return self.resolved.type_of(node)

    def _attr_bat(self, class_name, attr):
        return Var(self.flat.attr_bat_name(class_name, attr))

    # ------------------------------------------------------------------
    # set expressions
    # ------------------------------------------------------------------
    def compile_set(self, node, scope):
        """Compile a set-valued node; ``scope`` is the enclosing
        :class:`SetComp` when inside a set operation, else None."""
        if isinstance(node, ast.Extent):
            return SetComp(Var(self.flat.extent_name(node.class_name)),
                           ObjectRep(node.class_name),
                           ClassRef(node.class_name))
        if isinstance(node, (ast.Attr, ast.Pos, ast.Element)):
            value = self.compile_expr(node, scope)
            if isinstance(value, NestedComp):
                return value
            raise RewriteError("%s is not set-valued here" % node.render())
        if isinstance(node, ast.Select):
            return self._compile_select(node, scope)
        if isinstance(node, ast.Project):
            return self._compile_project(node, scope)
        if isinstance(node, ast.Join):
            return self._compile_join(node, scope)
        if isinstance(node, ast.Semijoin):
            return self._compile_semijoin(node, scope)
        if isinstance(node, ast.SetOp):
            return self._compile_setop(node, scope)
        if isinstance(node, ast.Nest):
            return self._compile_nest(node, scope)
        if isinstance(node, ast.Unnest):
            return self._compile_unnest(node, scope)
        if isinstance(node, ast.Sort):
            return self._compile_sort(node, scope)
        if isinstance(node, ast.Top):
            return self._compile_top(node, scope)
        raise RewriteError("cannot compile set expression %r" % node)

    # -- select -----------------------------------------------------------
    def _compile_select(self, node, scope):
        comp = self.compile_set(node.input, scope)
        if isinstance(comp, NestedComp):
            # section 4.3.2: selection on a set-valued attribute is one
            # flattened selection over all sets at once
            elems = self.emit("mirror", [comp.index], hint="elems")
            inner_comp = SetComp(elems, comp.inner, comp.elem_type)
            for predicate in node.predicates:
                inner_comp = self._apply_predicate(inner_comp, predicate)
            index = self.emit("mirror", [inner_comp.carrier], hint="nsel")
            return NestedComp(index, comp.inner, comp.elem_type)
        for predicate in node.predicates:
            comp = self._apply_predicate(comp, predicate)
        return comp

    def _apply_predicate(self, comp, predicate):
        """SET(semijoin(A, T(f(X))), X): filter the carrier."""
        if isinstance(predicate, ast.BinOp) and predicate.op == "and":
            comp = self._apply_predicate(comp, predicate.left)
            return self._apply_predicate(comp, predicate.right)
        if isinstance(predicate, ast.In):
            return self._apply_membership(comp, predicate, anti=False)
        if isinstance(predicate, ast.UnOp) and predicate.op == "not" \
                and isinstance(predicate.operand, ast.In):
            return self._apply_membership(comp, predicate.operand,
                                          anti=True)
        qualifying = self._indexable_predicate(comp, predicate)
        if qualifying is None:
            boolean = self.compile_expr(predicate, comp)
            if not isinstance(boolean, Col):
                raise RewriteError("predicate %s is not scalar"
                                   % predicate.render())
            qualifying = self.emit("select", [boolean.var, True],
                                   hint="qual")
        carrier = self.emit("semijoin", [comp.carrier, qualifying],
                            hint="sel")
        return SetComp(carrier, comp.inner, comp.elem_type)

    def _indexable_predicate(self, comp, predicate):
        """Fast path: ``cmp(attribute-path, literal)`` compiles to a
        selection on the full tail-sorted attribute BAT, walked back
        through the reference path with joins (the Q13 plan).  Returns
        the qualifying-ids Var, or None when not applicable."""
        if not isinstance(predicate, ast.BinOp):
            return None
        op, left, right = predicate.op, predicate.left, predicate.right
        if isinstance(left, ast.Literal) and not isinstance(right,
                                                            ast.Literal):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not isinstance(right, ast.Literal):
            return None
        path = self._attr_path(comp, left)
        if path is None:
            return None
        bat_names, value_atom = path
        literal = _atoms.atom(value_atom).coerce(right.value)
        deepest = bat_names[-1]
        if op == "=":
            qualifying = self.emit("select", [deepest, literal],
                                   hint="q")
        elif op in ("<", "<=", ">", ">="):
            low = literal if op in (">", ">=") else None
            high = literal if op in ("<", "<=") else None
            args = [deepest, low, high,
                    op != ">", op != "<"]
            qualifying = self.emit("select", args, hint="q")
        else:
            return None   # '!=' goes through the generic path
        for bat_name in reversed(bat_names[:-1]):
            qualifying = self.emit("join", [bat_name, qualifying],
                                   hint="q")
        return qualifying

    def _attr_path(self, comp, expr):
        """For pure navigation ``a.b.c`` from the element over class
        references ending in a base type: the chain of attribute BAT
        vars, outermost first.  None when the expression is not such a
        path or crosses tuples/sets."""
        steps = []
        node = expr
        while isinstance(node, ast.Attr):
            steps.append(node.name)
            node = node.base
        if not isinstance(node, ast.Element) or not steps:
            return None
        steps.reverse()
        inner = comp.inner
        if not isinstance(inner, ObjectRep):
            return None
        class_name = inner.class_name
        bat_names = []
        for position, step in enumerate(steps):
            attr_type = self.schema.cls(class_name).attribute(step)
            bat_names.append(self._attr_bat(class_name, step))
            if isinstance(attr_type, ClassRef):
                class_name = attr_type.class_name
            elif isinstance(attr_type, BaseType):
                if position != len(steps) - 1:
                    return None
                return bat_names, attr_type.atom.name
            else:
                return None
        return None

    # -- project ----------------------------------------------------------
    def _compile_project(self, node, scope):
        comp = self.compile_set(node.input, scope)
        nested_input = isinstance(comp, NestedComp)
        if nested_input:
            elems = self.emit("mirror", [comp.index], hint="elems")
            work = SetComp(elems, comp.inner, comp.elem_type)
        else:
            work = comp
        if len(node.items) == 1 and node.items[0][1] is None:
            value = self.compile_expr(node.items[0][0], work)
            if isinstance(value, NestedComp):
                raise RewriteError("project of a bare nested set needs "
                                   "a field name")
            value = self._ensure_col(value, work)
            inner = self._col_rep(value)
            elem_type = self.type_of(node).element
            if nested_input:
                # keep the owner->elem index; values key off elem ids
                return NestedComp(comp.index, inner, elem_type)
            return SetComp(work.carrier, inner, elem_type)
        fields = []
        for expr, name in node.items:
            value = self.compile_expr(expr, work)
            if isinstance(value, NestedComp):
                fields.append((name, SetRep(value.index, value.inner)))
            else:
                value = self._ensure_col(value, work)
                fields.append((name, self._col_rep(value)))
        inner = TupleRep(fields)
        elem_type = self.type_of(node).element
        if nested_input:
            return NestedComp(comp.index, inner, elem_type)
        return SetComp(work.carrier, inner, elem_type)

    def _col_rep(self, col):
        if isinstance(col.moa_type, ClassRef):
            return RefRep(col.var, col.moa_type.class_name)
        if isinstance(col.moa_type, BaseType):
            return AtomRep(col.var, col.moa_type.atom.name)
        raise RewriteError("cannot represent column of type %s"
                           % col.moa_type.render())

    def _ensure_col(self, value, comp):
        if isinstance(value, Col):
            return value
        if isinstance(value, _Scalar):
            raise RewriteError("a constant projection needs a carrier "
                               "column; wrap it in an expression")
        raise RewriteError("expected a scalar column")

    # -- join / semijoin ----------------------------------------------------
    def _key_cols(self, key_expr, comp):
        """Key columns of one join side, carrier-aligned."""
        if isinstance(key_expr, ast.TupleCons):
            return [self._as_col(self.compile_expr(expr, comp), comp)
                    for expr, _name in key_expr.items]
        return [self._as_col(self.compile_expr(key_expr, comp), comp)]

    def _as_col(self, value, comp):
        if isinstance(value, Col):
            return value
        raise RewriteError("join keys must be scalar expressions")

    def _compile_join(self, node, scope):
        left = self._as_top(self.compile_set(node.left, scope))
        right = self._as_top(self.compile_set(node.right, scope))
        left_keys = self._key_cols(node.left_key, left)
        right_keys = self._key_cols(node.right_key, right)
        if len(left_keys) != len(right_keys):
            raise RewriteError("join key arity mismatch")
        args = [c.var for c in left_keys] + [c.var for c in right_keys]
        pairs = self.emit("pairjoin", args, hint="pairs")
        # mint pair ids: lmap[pair, left_elem], rmap[pair, right_elem]
        marked = self.emit("mark", [pairs, 0], hint="pmark")
        lmap = self.emit("mirror", [marked], hint="lmap")
        rmap = self.emit("number", [pairs, 0], hint="rmap")
        inner = TupleRep([
            ("_1", self._via_rep(lmap, left.inner)),
            ("_2", self._via_rep(rmap, right.inner)),
        ])
        carrier = lmap
        elem_type = self.type_of(node).element
        return SetComp(carrier, inner, elem_type)

    def _via_rep(self, map_var, inner):
        return ViaRep(map_var, inner)

    def _compile_semijoin(self, node, scope):
        left = self._as_top(self.compile_set(node.left, scope))
        right = self._as_top(self.compile_set(node.right, scope))
        left_keys = self._key_cols(node.left_key, left)
        right_keys = self._key_cols(node.right_key, right)
        args = [c.var for c in left_keys] + [c.var for c in right_keys]
        pairs = self.emit("pairjoin", args, hint="sjpairs")
        op = "antijoin" if node.anti else "semijoin"
        carrier = self.emit(op, [left.carrier, pairs], hint="sj")
        return SetComp(carrier, left.inner, left.elem_type)

    def _as_top(self, comp):
        if isinstance(comp, NestedComp):
            elems = self.emit("mirror", [comp.index], hint="elems")
            return SetComp(elems, comp.inner, comp.elem_type)
        return comp

    # -- set operations -----------------------------------------------------
    def _compile_setop(self, node, scope):
        left = self._as_top(self.compile_set(node.left, scope))
        right = self._as_top(self.compile_set(node.right, scope))
        elem_type = self.type_of(node).element
        if isinstance(elem_type, ClassRef):
            # compare by *object identity* (oid values), regardless of
            # how each side's elements are keyed
            left_vals = self.value_col(left)
            right_vals = self.value_col(right)
            left_ids = self._value_ident(left_vals)
            right_ids = self._value_ident(right_vals)
            carrier = self.emit(_SETOP_MIL[node.kind],
                                [left_ids, right_ids], hint=node.kind[:3])
            return SetComp(carrier, ObjectRep(elem_type.class_name),
                           elem_type)
        if isinstance(elem_type, BaseType):
            left_vals = self.value_col(left)
            right_vals = self.value_col(right)
            left_ids = self._value_ident(left_vals)
            right_ids = self._value_ident(right_vals)
            carrier = self.emit(_SETOP_MIL[node.kind],
                                [left_ids, right_ids], hint=node.kind[:3])
            return SetComp(carrier, InlineAtomRep(elem_type.atom.name),
                           elem_type)
        raise RewriteError("set operations over %s elements are not "
                           "supported" % elem_type.render())

    def _value_ident(self, col):
        mirrored = self.emit("mirror", [col.var], hint="vm")
        return self.emit("ident", [mirrored], hint="vid")

    # -- nest ----------------------------------------------------------------
    def _compile_nest(self, node, scope):
        comp = self._as_top(self.compile_set(node.input, scope))
        key_cols = []
        for expr, _name in node.keys:
            value = self.compile_expr(expr, comp)
            key_cols.append(self._as_col(value, comp))
        aligned = [self._carrier_aligned(col, comp) for col in key_cols]
        grp = self.emit("group", [aligned[0].var], hint="grp")
        for col in aligned[1:]:
            grp = self.emit("group", [grp, col.var], hint="grp")
        member_index = self.emit("mirror", [grp], hint="members")
        fields = []
        carrier = None
        for (expr, name), col in zip(node.keys, key_cols):
            per_group = self.emit("join", [member_index, col.var],
                                  hint="keyv")
            key_field = self.emit("aggr", [per_group], fn="min",
                                  hint="key",
                                  comment="key extraction per group")
            if carrier is None:
                carrier = key_field
            fields.append((name, self._col_rep(
                Col(key_field, self.type_of(expr)))))
        fields.append((node.group_name, SetRep(member_index, comp.inner)))
        inner = TupleRep(fields)
        elem_type = self.type_of(node).element
        return SetComp(carrier, inner, elem_type)

    def _carrier_aligned(self, col, comp):
        """Column re-ordered to the carrier's BUN order (for group/sort)."""
        ids = self.emit("ident", [comp.carrier], hint="ids")
        var = self.emit("join", [ids, col.var], hint="alg")
        return Col(var, col.moa_type)

    # -- unnest ----------------------------------------------------------------
    def _compile_unnest(self, node, scope):
        comp = self._as_top(self.compile_set(node.input, scope))
        nested = self.compile_expr(ast.Attr(ast.Element(), node.attr),
                                   comp, forced_type=self._unnest_attr_type(
                                       comp, node.attr))
        if not isinstance(nested, NestedComp):
            raise RewriteError("unnest needs a set-valued attribute")
        pairs = nested.index
        marked = self.emit("mark", [pairs, 0], hint="umark")
        lmap = self.emit("mirror", [marked], hint="ulmap")
        rmap = self.emit("number", [pairs, 0], hint="urmap")
        inner = TupleRep([
            ("_1", ViaRep(lmap, comp.inner)),
            ("_2", ViaRep(rmap, nested.inner)),
        ])
        elem_type = self.type_of(node).element
        return SetComp(lmap, inner, elem_type)

    def _unnest_attr_type(self, comp, attr):
        if isinstance(comp.elem_type, ClassRef):
            return self.schema.cls(comp.elem_type.class_name).attribute(attr)
        if isinstance(comp.elem_type, TupleType):
            return comp.elem_type.field(attr)
        raise RewriteError("unnest over %s" % comp.elem_type.render())

    # -- sort / top ---------------------------------------------------------
    def _compile_sort(self, node, scope):
        comp = self._as_top(self.compile_set(node.input, scope))
        args = [comp.carrier]
        for expr, descending in node.keys:
            col = self._as_col(self.compile_expr(expr, comp), comp)
            aligned = self._carrier_aligned(col, comp)
            args.extend([aligned.var, bool(descending)])
        carrier = self.emit("sortby", args, hint="sorted")
        return SetComp(carrier, comp.inner, comp.elem_type)

    def _compile_top(self, node, scope):
        comp = self._as_top(self.compile_set(node.input, scope))
        carrier = self.emit("slice", [comp.carrier, 0, node.n],
                            hint="top")
        return SetComp(carrier, comp.inner, comp.elem_type)

    # ------------------------------------------------------------------
    # scalar expressions over a carrier
    # ------------------------------------------------------------------
    def compile_expr(self, node, comp, forced_type=None):
        """Compile an expression in the scope of ``comp``.

        Returns a :class:`Col`, a :class:`NestedComp` (for set-valued
        attributes), or a :class:`_Scalar` (literals / whole-set
        aggregates)."""
        if isinstance(node, ast.Literal):
            return _Scalar(_atoms.atom(node.atom_name).coerce(node.value),
                           BaseType(node.atom_name))
        if isinstance(node, ast.Element):
            ids = self.emit("ident", [comp.carrier], hint="self")
            return Col(ids, comp.elem_type)
        if isinstance(node, ast.Attr):
            return self._compile_attr(node, comp, forced_type)
        if isinstance(node, ast.Pos):
            return self._compile_pos(node, comp)
        if isinstance(node, ast.BinOp):
            return self._compile_binop(node, comp)
        if isinstance(node, ast.UnOp):
            return self._compile_unop(node, comp)
        if isinstance(node, ast.Call):
            return self._compile_call(node, comp)
        if isinstance(node, ast.Aggregate):
            return self._compile_aggregate(node, comp)
        if isinstance(node, ast.In):
            return self._compile_in(node, comp)
        if isinstance(node, ast.SET_NODES):
            nested = self.compile_set(node, comp)
            if isinstance(nested, NestedComp):
                return nested
            raise RewriteError("top-level set %s used as a scalar"
                               % node.render())
        raise RewriteError("cannot compile expression %r" % node)

    # -- attribute access ----------------------------------------------------
    #
    # Attribute/positional paths from the current element are compiled
    # by *walking the rep tree*: each step either descends into a tuple
    # field (possibly behind Via maps minted by joins/unnests) or
    # navigates an object reference (which becomes a Via map itself:
    # the reference BAT maps element ids to target oids).  At the end
    # the accumulated Via chain is flattened into joins and aligned to
    # the carrier with one semijoin — the paper's reassembly pattern.
    def _compile_attr(self, node, comp, forced_type=None):
        path = self._element_path(node)
        if path is None:
            raise RewriteError("cannot navigate %s (paths must start at "
                               "the element)" % node.render())
        return self._compile_path(comp, path,
                                  forced_type or self.type_of(node))

    def _compile_pos(self, node, comp):
        path = self._element_path(node)
        if path is None:
            raise RewriteError("positional access must start at the "
                               "element")
        return self._compile_path(comp, path, self.type_of(node))

    def _element_path(self, node):
        """The chain of Attr names / Pos indices from Element, or None."""
        steps = []
        cursor = node
        while isinstance(cursor, (ast.Attr, ast.Pos)):
            steps.append(cursor.name if isinstance(cursor, ast.Attr)
                         else cursor.index)
            cursor = cursor.base
        if not isinstance(cursor, ast.Element):
            return None
        steps.reverse()
        return steps

    def _compile_path(self, comp, path, result_type):
        cache_key = (comp.carrier.name, tuple(path))
        cached = self._col_cache.get(cache_key)
        if cached is not None:
            return cached
        rep = comp.inner
        for step in path:
            rep = self._field_of(rep, step)
        result = self._columnize(rep, comp, result_type)
        if isinstance(result, Col):
            self._col_cache[cache_key] = result
        return result

    def _field_of(self, rep, step):
        """Descend one path step through a rep (see block comment)."""
        maps, core = _unwrap_via(rep)
        if isinstance(core, TupleRep):
            if isinstance(step, int):
                name, field_rep = core.fields[step - 1]
            else:
                field_rep = core.field(step)
            return _wrap_via(maps, field_rep)
        if isinstance(core, ObjectRep):
            field_rep = self._object_attr_rep(core.class_name, step)
            return _wrap_via(maps, field_rep)
        if isinstance(core, InlineRefRep):
            field_rep = self._object_attr_rep(core.class_name, step)
            return _wrap_via(maps, field_rep)
        if isinstance(core, RefRep):
            # navigate the reference: its source BAT acts as a Via map
            field_rep = self._object_attr_rep(core.class_name, step)
            return _wrap_via(maps + [core.source], field_rep)
        raise RewriteError("cannot access %r of %r" % (step, rep))

    def _object_attr_rep(self, class_name, step):
        if isinstance(step, int):
            raise RewriteError("positional access on an object of %s"
                               % class_name)
        attr_type = self.schema.cls(class_name).attribute(step)
        source = self._attr_bat(class_name, step)
        if isinstance(attr_type, BaseType):
            return AtomRep(source, attr_type.atom.name)
        if isinstance(attr_type, ClassRef):
            return RefRep(source, attr_type.class_name)
        if isinstance(attr_type, SetType):
            inner = self._set_inner_rep(class_name, step, attr_type.element)
            return SetRep(source, inner)
        raise RewriteError("unsupported attribute type for %s.%s"
                           % (class_name, step))

    def _columnize(self, rep, comp, result_type):
        """Flatten a path rep into a carrier-aligned Col / NestedComp.

        The Via chain is restricted to the carrier *first* and then
        walked with joins — the paper's Q13 order (``critems :=
        semijoin(Item_order, ritems); join(critems, Order_orderdate)``)
        — so navigation never touches objects outside the selection.
        """
        maps, core = _unwrap_via(rep)
        if isinstance(core, (AtomRep, RefRep)):
            acc = self._restricted_chain(maps, comp)
            if acc is None:
                var = self.emit("semijoin", [core.source, comp.carrier],
                                hint="col")
            else:
                var = self.emit("join", [acc, core.source], hint="nav")
            return Col(var, result_type)
        if isinstance(core, SetRep):
            acc = self._restricted_chain(maps, comp)
            if acc is None:
                index = self.emit("semijoin", [core.index, comp.carrier],
                                  hint="sidx")
            else:
                index = self.emit("join", [acc, core.index],
                                  hint="nidx")
            element = result_type.element \
                if isinstance(result_type, SetType) else None
            return NestedComp(index, core.inner, element)
        if isinstance(core, (ObjectRep, InlineRefRep, InlineAtomRep)):
            # the ids themselves are the values
            if not maps:
                ids = self.emit("ident", [comp.carrier], hint="self")
                return Col(ids, result_type)
            acc = self._restricted_chain(maps[:-1], comp)
            if acc is None:
                var = self.emit("semijoin", [maps[-1], comp.carrier],
                                hint="col")
            else:
                var = self.emit("join", [acc, maps[-1]], hint="nav")
            return Col(var, result_type)
        raise RewriteError("cannot columnize %r" % rep)

    def _restricted_chain(self, maps, comp):
        """Fold a Via-map chain left-associatively, restricted to the
        carrier up front.  Returns None for an empty chain (the caller
        then restricts the core source directly)."""
        if not maps:
            return None
        acc = self.emit("semijoin", [maps[0], comp.carrier], hint="nav")
        for map_source in maps[1:]:
            acc = self.emit("join", [acc, map_source], hint="nav")
        return acc

    def _set_inner_rep(self, class_name, attr, element_type):
        """Inner rep of a stored set attribute, per the mapping."""
        if isinstance(element_type, BaseType):
            return InlineAtomRep(element_type.atom.name)
        if isinstance(element_type, ClassRef):
            return ObjectRep(element_type.class_name)
        if isinstance(element_type, TupleType):
            fields = []
            for field_name, field_type in element_type.fields:
                source = Var(self.flat.field_bat_name(class_name, attr,
                                                      field_name))
                if isinstance(field_type, BaseType):
                    fields.append((field_name,
                                   AtomRep(source, field_type.atom.name)))
                elif isinstance(field_type, ClassRef):
                    fields.append((field_name,
                                   RefRep(source, field_type.class_name)))
                else:
                    raise RewriteError("doubly nested set attribute")
            return TupleRep(fields)
        raise RewriteError("unsupported set element type")

    # -- operators over columns -------------------------------------------------
    def _compile_binop(self, node, comp):
        if node.op in ("and", "or"):
            left = self._as_col(self.compile_expr(node.left, comp), comp)
            right = self._as_col(self.compile_expr(node.right, comp), comp)
            var = self.emit("multiplex", [left.var, right.var], fn=node.op,
                            hint="b")
            return Col(var, self.type_of(node))
        left = self.compile_expr(node.left, comp)
        right = self.compile_expr(node.right, comp)
        fn = node.op
        return self._multiplex(fn, [left, right], self.type_of(node))

    def _compile_unop(self, node, comp):
        operand = self.compile_expr(node.operand, comp)
        return self._multiplex(node.op, [operand], self.type_of(node))

    def _compile_call(self, node, comp):
        args = [self.compile_expr(a, comp) for a in node.args]
        return self._multiplex(node.fname, args, self.type_of(node))

    def _multiplex(self, fn, operands, result_type):
        """Emit ``[fn](...)`` over Col/scalar operands."""
        args = []
        saw_col = False
        for operand in operands:
            if isinstance(operand, Col):
                args.append(operand.var)
                saw_col = True
            elif isinstance(operand, _Scalar):
                args.append(operand.value)
            else:
                raise RewriteError("cannot multiplex %r" % operand)
        if not saw_col:
            raise RewriteError("constant expressions are not supported "
                               "standalone; fold them first")
        var = self.emit("multiplex", args, fn=fn, hint="m")
        return Col(var, result_type)

    # -- aggregates ---------------------------------------------------------
    def _compile_aggregate(self, node, comp):
        inner = self.compile_set(node.input, comp)
        if isinstance(inner, NestedComp):
            return self._nested_aggregate(node, inner, comp)
        # aggregate over an (uncorrelated) top-level set: a scalar
        value = self.value_col(inner)
        var = self.emit("aggr_all", [value.var], fn=node.func,
                        hint="scalar")
        return _Scalar(var, self.type_of(node))

    def _nested_aggregate(self, node, nested, comp):
        """{g}(join(index, values)) — nested aggregates in one go.

        count/sum of an empty set is 0 (SQL semantics), but the
        set-aggregate only emits BUNs for non-empty owners; a fillzero
        against the scope carrier patches the gap.  min/max/avg over
        possibly-empty sets stay partial (guard with count > 0).
        """
        if node.func == "count":
            per_owner = self.emit("aggr", [nested.index], fn="count",
                                  hint="agg")
            per_owner = self.emit("fillzero", [per_owner, comp.carrier],
                                  hint="agg") if comp is not None \
                else per_owner
            return Col(per_owner, self.type_of(node))
        values = self._nested_value_source(nested)
        joined = self.emit("join", [nested.index, values], hint="aggv")
        per_owner = self.emit("aggr", [joined], fn=node.func, hint="agg")
        if node.func == "sum" and comp is not None:
            per_owner = self.emit("fillzero", [per_owner, comp.carrier],
                                  hint="agg")
        return Col(per_owner, self.type_of(node))

    def _nested_value_source(self, nested):
        """Var of BAT[elem, value] for a nested set's element values."""
        inner = nested.inner
        if isinstance(inner, (InlineAtomRep, InlineRefRep)):
            # SET(A): the index tail IS the value; join(index, values)
            # degenerates to the index itself, expressed via ident on
            # the mirrored index
            mirrored = self.emit("mirror", [nested.index], hint="nv")
            return self.emit("ident", [mirrored], hint="nvid")
        if isinstance(inner, (AtomRep, RefRep)):
            return inner.source
        raise RewriteError("aggregate over non-scalar set elements")

    def value_col(self, comp):
        """Value column of a top-level set of scalars (for aggr_all)."""
        inner = comp.inner
        if isinstance(inner, (AtomRep, RefRep)):
            ids = self.emit("ident", [comp.carrier], hint="ids")
            var = self.emit("join", [ids, inner.source], hint="vals")
            moa = BaseType(inner.atom_name) if isinstance(inner, AtomRep) \
                else ClassRef(inner.class_name)
            return Col(var, moa)
        if isinstance(inner, (InlineAtomRep, InlineRefRep)):
            var = self.emit("ident", [comp.carrier], hint="vals")
            moa = BaseType(inner.atom_name) \
                if isinstance(inner, InlineAtomRep) \
                else ClassRef(inner.class_name)
            return Col(var, moa)
        if isinstance(inner, ObjectRep):
            var = self.emit("ident", [comp.carrier], hint="vals")
            return Col(var, ClassRef(inner.class_name))
        raise RewriteError("set of %r has no single value column" % inner)

    # -- membership -----------------------------------------------------------
    def _apply_membership(self, comp, node, anti):
        """``select[in(e, X)](S)``: carrier elements whose key value
        occurs in X — compiled as one (anti)semijoin over the mirrored
        value columns."""
        item = self._as_col(self.compile_expr(node.item, comp), comp)
        input_comp = self.compile_set(node.input, comp)
        if isinstance(input_comp, NestedComp):
            raise RewriteError("in() over correlated nested sets is not "
                               "supported; use semijoin")
        values = self.value_col(self._as_top(input_comp))
        item_mirror = self.emit("mirror", [item.var], hint="inm")
        values_mirror = self.emit("mirror", [values.var], hint="ivm")
        op = "antijoin" if anti else "semijoin"
        hits = self.emit(op, [item_mirror, values_mirror], hint="inh")
        qualifying = self.emit("mirror", [hits], hint="inq")
        carrier = self.emit("semijoin", [comp.carrier, qualifying],
                            hint="sel")
        return SetComp(carrier, comp.inner, comp.elem_type)

    def _compile_in(self, node, comp):
        raise RewriteError("in() is only supported as a selection "
                           "predicate")


def _unwrap_via(rep):
    """Strip leading ViaRep layers; returns (map sources, core rep)."""
    maps = []
    while isinstance(rep, ViaRep):
        maps.append(rep.map_source)
        rep = rep.inner
    return maps, rep


def _wrap_via(maps, rep):
    """Re-apply Via maps (outermost first) around a rep."""
    for map_source in reversed(maps):
        rep = ViaRep(map_source, rep)
    return rep


class _Scalar:
    """A compile-time scalar: literal value or aggr_all result Var."""

    __slots__ = ("value", "moa_type")

    def __init__(self, value, moa_type):
        self.value = value
        self.moa_type = moa_type


_SETOP_MIL = {
    "union": "union",
    "difference": "kdiff",
    "intersection": "semijoin",
}


def rep_root_names(result):
    """Variable names the result rep (or scalar) observes.

    These are the roots of the liveness analysis: a MIL statement
    whose target none of them (transitively) depends on can be
    eliminated without changing what the Materializer can see.
    """
    roots = set()
    if result.scalar_var is not None:
        roots.add(result.scalar_var)
    _collect_rep_sources(result.rep, roots)
    return roots


def _collect_rep_sources(rep, roots):
    if rep is None:
        return
    source = getattr(rep, "source", None) or getattr(rep, "index", None) \
        or getattr(rep, "map_source", None)
    while isinstance(source, Mirrored):
        source = source.source
    if isinstance(source, Var):
        roots.add(source.name)
    for inner in getattr(rep, "fields", ()):
        _collect_rep_sources(inner[1], roots)
    _collect_rep_sources(getattr(rep, "inner", None), roots)


def rewrite(resolved, flat, verify=True):
    """Rewrite a resolved query to (MIL program, result structure).

    Every compiled plan is statically verified against the operator
    signature registry before it is returned, with catalog stats from
    the flattened database — a miscompile (unbound reference, type
    violation, malformed statement) surfaces here as a
    :class:`~repro.errors.PlanVerificationError` instead of at run
    time.  When the installed optimizer has ``eliminate_dead`` set,
    statements the result rep provably never observes are dropped
    (the analysis layer's liveness pass); the surviving program is
    what gets verified.
    """
    result = Rewriter(resolved, flat).rewrite()
    optimizer = get_optimizer()
    if getattr(optimizer, "eliminate_dead", False):
        live = live_statements(result.program,
                               roots=rep_root_names(result))
        if len(live) != len(result.program.stmts):
            optimizer.record_dce(len(result.program.stmts) - len(live))
            result.program.stmts = [result.program.stmts[index]
                                    for index in live]
    if verify:
        stats = catalog_stats_from_kernel(flat.kernel)
        check_program(result.program, catalog=stats)
    return result
