"""MOA schemas: class definitions and their validation.

A :class:`Schema` is a collection of named classes; each class has
ordered, typed attributes (Figure 1 of the paper shows the TPC-D
schema in this form).  A small builder DSL keeps definitions close to
the paper's syntax::

    schema = Schema()
    schema.define("Region", [("name", STRING), ("comment", STRING)])
    schema.define("Nation", [("name", STRING), ("region", ref("Region"))])

Validation checks that every :class:`~repro.moa.types.ClassRef` target
exists (cycles are fine: Order.cust / Customer.orders).
"""

from ..errors import SchemaError
from .types import BaseType, ClassRef, MOAType, SetType, TupleType


class ClassDef:
    """One class: a name plus ordered attribute list."""

    __slots__ = ("name", "attributes")

    def __init__(self, name, attributes):
        names = [attr_name for attr_name, _t in attributes]
        if len(set(names)) != len(names):
            raise SchemaError("class %s: duplicate attribute names" % name)
        for attr_name, attr_type in attributes:
            if not isinstance(attr_type, MOAType):
                raise SchemaError("class %s.%s: %r is not a MOA type"
                                  % (name, attr_name, attr_type))
        self.name = name
        self.attributes = tuple(attributes)

    def attribute(self, attr_name):
        for name, attr_type in self.attributes:
            if name == attr_name:
                return attr_type
        raise SchemaError("class %s has no attribute %r"
                          % (self.name, attr_name))

    def has_attribute(self, attr_name):
        return any(name == attr_name for name, _t in self.attributes)

    def attribute_names(self):
        return [name for name, _t in self.attributes]

    def render(self):
        lines = ["class %s <" % self.name]
        for name, attr_type in self.attributes:
            lines.append("    %s : %s," % (name, attr_type.render()))
        lines[-1] = lines[-1].rstrip(",") + " >;"
        return "\n".join(lines)


class Schema:
    """An ordered collection of class definitions."""

    def __init__(self):
        self.classes = {}

    def define(self, name, attributes):
        """Add a class; attributes is a list of (name, MOAType)."""
        if name in self.classes:
            raise SchemaError("class %s already defined" % name)
        definition = ClassDef(name, attributes)
        self.classes[name] = definition
        return definition

    def cls(self, name):
        try:
            return self.classes[name]
        except KeyError:
            raise SchemaError("unknown class %r" % name) from None

    def has_class(self, name):
        return name in self.classes

    def class_names(self):
        return list(self.classes)

    def validate(self):
        """Check all class references resolve; returns self."""
        for definition in self.classes.values():
            for attr_name, attr_type in definition.attributes:
                self._check_refs(attr_type,
                                 "%s.%s" % (definition.name, attr_name))
        return self

    def _check_refs(self, moa_type, where):
        if isinstance(moa_type, ClassRef):
            if moa_type.class_name not in self.classes:
                raise SchemaError("%s references unknown class %r"
                                  % (where, moa_type.class_name))
        elif isinstance(moa_type, SetType):
            self._check_refs(moa_type.element, where)
        elif isinstance(moa_type, TupleType):
            for field_name, field_type in moa_type.fields:
                self._check_refs(field_type, "%s.%s" % (where, field_name))
        elif not isinstance(moa_type, BaseType):
            raise SchemaError("%s has unsupported type %r"
                              % (where, moa_type))

    def render(self):
        return "\n\n".join(d.render() for d in self.classes.values())


def ref(class_name):
    """Shorthand for a class reference type."""
    return ClassRef(class_name)


def setof(element):
    """Shorthand for a set type."""
    return SetType(element)


def tupleof(*fields):
    """Shorthand for a tuple type from (name, type) pairs."""
    return TupleType(fields)
