"""MOADatabase: the end-to-end facade (schema -> load -> query).

Wires the whole pipeline of the paper's Figure 6 together::

    db = MOADatabase(schema)
    db.load(data)                      # flatten into BATs (section 3.3)
    result = db.query('select[...](Item)')   # parse -> resolve ->
                                              # rewrite -> MIL -> rep ->
                                              # materialise

``db.query`` executes the *physical* path (MIL on the Monet kernel);
``db.evaluate`` executes the *logical* path (reference evaluator);
``db.check_commutes`` runs both and compares — the paper's correctness
criterion.
"""

import time

from ..monet.buffer import use as use_buffer
from ..monet.kernel import MonetKernel
from ..monet.mil import MILInterpreter, Var
from .evaluator import evaluate
from .mapping import create_datavectors, flatten, reorder_on_tail
from .parser import parse
from .structures import Materializer
from .typecheck import resolve
from .rewriter import rewrite
from .values import sequences_equivalent
from . import ast


class QueryResult:
    """Result of one physical query execution."""

    def __init__(self, rows, program, trace, rep, elapsed_ms):
        #: materialised logical values (list; ordered for sort/top)
        self.rows = rows
        #: the MIL program that ran
        self.program = program
        #: per-statement trace (ms, faults, sizes)
        self.trace = trace
        #: the result structure function
        self.rep = rep
        self.elapsed_ms = elapsed_ms


class MOADatabase:
    """A MOA schema + Monet kernel + loaded data."""

    def __init__(self, schema, kernel=None):
        self.schema = schema.validate()
        self.kernel = kernel if kernel is not None else MonetKernel()
        self.flat = None

    # ------------------------------------------------------------------
    def load(self, data, datavectors=False, reorder=False):
        """Flatten logical data into the kernel (section 3.3 / 6)."""
        self.flat = flatten(self.schema, data, self.kernel,
                            datavectors=datavectors, reorder=reorder)
        return self.flat

    def build_accelerators(self):
        """Section 6 pipeline: datavectors, then reorder on tail."""
        create_datavectors(self.flat)
        reorder_on_tail(self.flat)

    # ------------------------------------------------------------------
    def prepare(self, query_text):
        """Parse + resolve a query (no execution)."""
        tree = parse(query_text) if isinstance(query_text, str) \
            else query_text
        return resolve(tree, self.schema)

    def compile(self, query_text):
        """Parse, resolve and rewrite to a MIL program."""
        resolved = self.prepare(query_text)
        return resolved, rewrite(resolved, self.flat)

    def run_compiled(self, compiled):
        """Execute an already-compiled :class:`RewriteResult`.

        The hot path of the query service: a cached plan (MIL program
        + result rep) re-executes against the current kernel without
        re-parsing, re-resolving, or re-rewriting the query text.
        Returns the materialised rows (or the scalar for
        aggregate-rooted queries) — no trace, no QueryResult wrapper.
        """
        interpreter = MILInterpreter(self.kernel)
        interpreter.run(compiled.program)
        if compiled.scalar_var is not None:
            return interpreter.value(compiled.scalar_var)
        return Materializer(interpreter.resolve).top_level(compiled.rep)

    def query(self, query_text, trace=False, buffer_manager=None):
        """Execute the physical path; returns a :class:`QueryResult`."""
        if self.flat is None:
            raise RuntimeError("no data loaded")
        resolved, result = self.compile(query_text)
        interpreter = MILInterpreter(self.kernel)
        started = time.perf_counter()
        if buffer_manager is not None:
            with use_buffer(buffer_manager):
                mil_trace = interpreter.run(result.program, trace=True)
        else:
            mil_trace = interpreter.run(result.program, trace=True)
        elapsed = (time.perf_counter() - started) * 1000.0
        if result.scalar_var is not None:
            value = interpreter.value(result.scalar_var)
            return QueryResult(value, result.program, mil_trace, None,
                               elapsed)
        rows = Materializer(interpreter.resolve).top_level(result.rep)
        return QueryResult(rows, result.program, mil_trace, result.rep,
                           elapsed)

    def evaluate(self, query_text):
        """Execute the logical path (reference evaluator)."""
        resolved = self.prepare(query_text)
        result = evaluate(resolved, self.flat.data)
        root = resolved.root
        if isinstance(root, ast.Aggregate):
            return result
        return result

    # ------------------------------------------------------------------
    def check_commutes(self, query_text, tolerance=1e-6):
        """Figure 6: both gray paths must yield the same result.

        Returns (physical, logical) on success; raises AssertionError
        with a diff summary on mismatch.
        """
        resolved = self.prepare(query_text)
        ordered = isinstance(resolved.root, (ast.Sort, ast.Top))
        physical = self.query(query_text).rows
        logical = self.evaluate(query_text)
        if isinstance(resolved.root, ast.Aggregate):
            ok = _scalar_equal(physical, logical, tolerance)
        else:
            ok = sequences_equivalent(physical, logical,
                                      tolerance=tolerance, ordered=ordered)
        if not ok:
            raise AssertionError(
                "Figure 6 diagram does not commute for %r:\n"
                "physical (%s rows): %r\nlogical (%s rows): %r"
                % (query_text,
                   len(physical) if hasattr(physical, "__len__") else "-",
                   physical,
                   len(logical) if hasattr(logical, "__len__") else "-",
                   logical))
        return physical, logical

    # ------------------------------------------------------------------
    def mil_text(self, query_text):
        """The MIL translation of a query, as text (Figure 10 style)."""
        _resolved, result = self.compile(query_text)
        return result.program.render()


def _scalar_equal(left, right, tolerance):
    if left is None or right is None:
        return left is right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return abs(float(left) - float(right)) <= tolerance * max(
            1.0, abs(float(left)), abs(float(right)))
    return left == right
