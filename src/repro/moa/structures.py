"""Structure functions: the physical-to-logical mapping (section 3.3).

A structured MOA value is represented by a set of BATs plus a
composition of *structure functions*; this module implements that
composition as :class:`Rep` trees.  The paper's functions map directly:

* ``SET(A, S)``   -> :class:`SetRep` (index BAT ``A`` + inner rep ``S``)
* ``SET(A)``      -> :class:`SetRep` with an *inline* inner rep (the
  optimisation for simple element values: the index tail IS the value)
* ``TUPLE(...)``  -> :class:`TupleRep` over synchronous field reps
* ``OBJECT(...)`` -> :class:`ObjectRep` (ids are the object oids;
  attribute BATs are found through the kernel catalog)
* head-unique ``BAT[oid, tau]``  -> :class:`AtomRep`
* head-unique ``BAT[oid, oid]`` referencing class X -> :class:`RefRep`

Rep *sources* are either concrete BATs or MIL variables
(:class:`~repro.monet.mil.Var`); :func:`materialize` resolves variables
through a MIL environment and rebuilds the logical value — the upward
gray arrow of the paper's Figure 6.  Object values materialise as
:class:`~repro.moa.values.Ref` (identity semantics), which keeps the
cyclic TPC-D schema finite.
"""

from ..errors import MOAError
from ..monet.mil import Var
from .values import Bag, Ref, Row


class Rep:
    """Abstract structure-function node."""

    def render(self):
        raise NotImplementedError

    def __repr__(self):
        return self.render()


class AtomRep(Rep):
    """Identified value set of base-type values: BAT[id, value]."""

    __slots__ = ("source", "atom_name")

    def __init__(self, source, atom_name):
        self.source = source
        self.atom_name = atom_name

    def render(self):
        return "ATOM(%s)" % _render_source(self.source)


class RefRep(Rep):
    """Identified value set of object references: BAT[id, oid]."""

    __slots__ = ("source", "class_name")

    def __init__(self, source, class_name):
        self.source = source
        self.class_name = class_name

    def render(self):
        return "REF(%s -> %s)" % (_render_source(self.source),
                                  self.class_name)


class ObjectRep(Rep):
    """Objects of a class: element ids ARE the object oids."""

    __slots__ = ("class_name",)

    def __init__(self, class_name):
        self.class_name = class_name

    def render(self):
        return "OBJECT(%s)" % self.class_name


class InlineAtomRep(Rep):
    """Inner rep of the SET(A) optimisation: the id IS the value."""

    __slots__ = ("atom_name",)

    def __init__(self, atom_name):
        self.atom_name = atom_name

    def render(self):
        return "VALUE(%s)" % self.atom_name


class InlineRefRep(Rep):
    """SET(A) over object references: the id IS the referenced oid."""

    __slots__ = ("class_name",)

    def __init__(self, class_name):
        self.class_name = class_name

    def render(self):
        return "VALUEREF(%s)" % self.class_name


class TupleRep(Rep):
    """TUPLE / OBJECT structure function: synchronous field reps."""

    __slots__ = ("fields",)

    def __init__(self, fields):
        self.fields = list(fields)

    def field(self, name):
        for field_name, rep in self.fields:
            if field_name == name:
                return rep
        raise MOAError("tuple rep has no field %r" % name)

    def field_at(self, position):
        if not 1 <= position <= len(self.fields):
            raise MOAError("tuple rep position %d out of range" % position)
        return self.fields[position - 1][1]

    def render(self):
        return "TUPLE(%s)" % ", ".join(
            "%s=%s" % (name, rep.render()) for name, rep in self.fields)


class SetRep(Rep):
    """SET structure function: index BAT[owner, elem] + inner rep."""

    __slots__ = ("index", "inner")

    def __init__(self, index, inner):
        self.index = index
        self.inner = inner

    def render(self):
        return "SET(%s, %s)" % (_render_source(self.index),
                                self.inner.render())


class ViaRep(Rep):
    """Identifier remapping: map BAT[new_id, old_id] over an inner rep.

    Produced by joins/unnests, which mint fresh pair ids and must view
    existing reps through the pair -> original-element mapping.
    """

    __slots__ = ("map_source", "inner")

    def __init__(self, map_source, inner):
        self.map_source = map_source
        self.inner = inner

    def render(self):
        return "VIA(%s, %s)" % (_render_source(self.map_source),
                                self.inner.render())


class Mirrored:
    """A rep source that is the mirror view of another source.

    Extents are stored ``[oid, void]`` (paper section 6) but serve as
    SET indexes ``[owner, elem]`` through their mirror; mirroring is
    free in Monet, so this wrapper just defers it to resolve time.
    """

    __slots__ = ("source",)

    def __init__(self, source):
        self.source = source


def resolve_source(source, resolver):
    """Resolve a rep source (Var / BAT / Mirrored) to a BAT."""
    if isinstance(source, Mirrored):
        return resolve_source(source.source, resolver).mirror()
    return resolver(source)


def _render_source(source):
    if isinstance(source, Mirrored):
        return "mirror(%s)" % _render_source(source.source)
    if isinstance(source, Var):
        return source.name
    if source is None:
        return "-"
    return getattr(source, "name", None) or "<bat>"


# ----------------------------------------------------------------------
# materialization (the upward arrow of Figure 6)
# ----------------------------------------------------------------------
class Materializer:
    """Rebuilds logical values from a rep tree.

    ``resolver(source)`` maps a rep source (Var or BAT) to a BAT;
    ``schema``/``catalog_get`` serve ObjectRep attribute lookups when
    deep materialisation is requested (sessions use shallow Refs).
    """

    def __init__(self, resolver):
        self.resolver = resolver

    # -- id -> value maps ------------------------------------------------
    def value_map(self, rep):
        """dict element-id -> logical value for an inner rep."""
        if isinstance(rep, AtomRep):
            bat = resolve_source(rep.source, self.resolver)
            return dict(bat.to_pairs())
        if isinstance(rep, RefRep):
            bat = resolve_source(rep.source, self.resolver)
            return {identifier: Ref(rep.class_name, oid)
                    for identifier, oid in bat.to_pairs()}
        if isinstance(rep, ObjectRep):
            return _IdentityMap(lambda oid: Ref(rep.class_name, oid))
        if isinstance(rep, InlineAtomRep):
            return _IdentityMap(lambda value: value)
        if isinstance(rep, InlineRefRep):
            return _IdentityMap(lambda oid: Ref(rep.class_name, oid))
        if isinstance(rep, TupleRep):
            field_maps = [(name, self.value_map(field_rep))
                          for name, field_rep in rep.fields]
            return _TupleMap(field_maps)
        if isinstance(rep, SetRep):
            index = resolve_source(rep.index, self.resolver)
            inner = self.value_map(rep.inner)
            grouped = {}
            for owner, elem in index.to_pairs():
                grouped.setdefault(owner, Bag()).add(inner[elem])
            return _SetMap(grouped)
        if isinstance(rep, ViaRep):
            mapping = resolve_source(rep.map_source, self.resolver)
            inner = self.value_map(rep.inner)
            return {new_id: inner[old_id]
                    for new_id, old_id in mapping.to_pairs()}
        raise MOAError("cannot materialize rep %r" % rep)

    def top_level(self, rep):
        """Materialise a top-level SET rep into an ordered value list.

        The order follows the index BAT's BUN order, which is how the
        flattened engine carries ORDER BY information.
        """
        if not isinstance(rep, SetRep):
            raise MOAError("top-level result must be a SET rep, got %r"
                           % rep)
        index = resolve_source(rep.index, self.resolver)
        inner = self.value_map(rep.inner)
        return [inner[elem] for _owner, elem in index.to_pairs()]


class _IdentityMap:
    """Lazy id->value map where the value is a function of the id."""

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __getitem__(self, key):
        return self.fn(key)

    def get(self, key, default=None):
        return self.fn(key)


class _TupleMap:
    """Lazy id->Row map over synchronous field maps."""

    __slots__ = ("field_maps",)

    def __init__(self, field_maps):
        self.field_maps = field_maps

    def __getitem__(self, key):
        return Row([(name, mapping[key])
                    for name, mapping in self.field_maps])


class _SetMap:
    """id->Bag map where absent owners own the empty bag."""

    __slots__ = ("grouped",)

    def __init__(self, grouped):
        self.grouped = grouped

    def __getitem__(self, key):
        value = self.grouped.get(key)
        return value if value is not None else Bag()


def materialize(rep, resolver):
    """Materialise a top-level set rep; see :class:`Materializer`."""
    return Materializer(resolver).top_level(rep)
