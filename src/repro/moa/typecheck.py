"""Name resolution and type checking of MOA queries.

The parser leaves bare identifiers as :class:`~.ast.Name` nodes: in
``select[=(order.clerk, "..."), =(returnflag, 'R')](Item)`` both
``order`` and ``returnflag`` are attributes of the Item element, while
``Item`` is a class extent.  The resolver rewrites every Name into
``Attr(Element, n)`` or ``Extent(n)`` using the schema, computes the
MOA type of every node, and rejects ill-typed queries.

The result is a :class:`ResolvedQuery`: the rewritten tree plus a
node -> type map that the MIL rewriter and the reference evaluator
both consume (so they agree on the meaning of every expression).
"""

from ..errors import TypeCheckError
from ..monet import atoms as _atoms
from . import ast
from .types import (BOOLEAN, DOUBLE, INT, LONG, BaseType, ClassRef,
                    MOAType, SetType, TupleType, is_comparable, is_numeric)

#: scalar call signatures: fname -> (argument atom kinds, result type)
_CALLS = {
    "year": (("instant",), INT),
    "month": (("instant",), INT),
    "startswith": (("string", "string"), BOOLEAN),
    "endswith": (("string", "string"), BOOLEAN),
    "contains": (("string", "string"), BOOLEAN),
}

#: the positional-pair field names minted by join and unnest
PAIR_FIELDS = ("_1", "_2")


class ResolvedQuery:
    """A resolved, typed MOA query."""

    def __init__(self, root, types, schema):
        self.root = root
        self._types = types
        self.schema = schema

    def type_of(self, node):
        try:
            return self._types[id(node)]
        except KeyError:
            raise TypeCheckError("node %r was not typed" % node) from None

    @property
    def result_type(self):
        return self.type_of(self.root)


class Resolver:
    """Single-pass resolver; see module docstring."""

    def __init__(self, schema):
        self.schema = schema
        self.types = {}

    def resolve(self, root):
        if isinstance(root, ast.Aggregate):
            # scalar queries: an aggregate over a top-level set
            new_root, _root_type = self.resolve_expr(root, None)
            return ResolvedQuery(new_root, self.types, self.schema)
        new_root, root_type = self.resolve_set(root, None)
        if not isinstance(root_type, SetType):
            raise TypeCheckError("a MOA query must be set-valued, got %s"
                                 % root_type.render())
        return ResolvedQuery(new_root, self.types, self.schema)

    # ------------------------------------------------------------------
    def _note(self, node, moa_type):
        self.types[id(node)] = moa_type
        return node, moa_type

    def element_attr_type(self, elem_type, name):
        """Type of attribute ``name`` on a set element, or None."""
        if isinstance(elem_type, ClassRef):
            definition = self.schema.cls(elem_type.class_name)
            if definition.has_attribute(name):
                return definition.attribute(name)
            return None
        if isinstance(elem_type, TupleType):
            if elem_type.has_field(name):
                return elem_type.field(name)
            return None
        return None

    # ------------------------------------------------------------------
    # set expressions
    # ------------------------------------------------------------------
    def resolve_set(self, node, elem_type):
        """Resolve a node that must produce a set value."""
        new_node, node_type = self.resolve_expr(node, elem_type)
        if not isinstance(node_type, SetType):
            raise TypeCheckError("%s is not set-valued (type %s)"
                                 % (new_node.render(), node_type.render()))
        return new_node, node_type

    # ------------------------------------------------------------------
    # expressions (both scalar- and set-valued)
    # ------------------------------------------------------------------
    def resolve_expr(self, node, elem_type):
        method = getattr(self, "_resolve_%s" % type(node).__name__.lower(),
                         None)
        if method is None:
            raise TypeCheckError("cannot resolve %r" % node)
        return method(node, elem_type)

    def _resolve_name(self, node, elem_type):
        if elem_type is not None:
            attr_type = self.element_attr_type(elem_type, node.name)
            if attr_type is not None:
                element = ast.Element()
                self.types[id(element)] = elem_type
                return self._note(ast.Attr(element, node.name), attr_type)
        if self.schema.has_class(node.name):
            return self._note(ast.Extent(node.name),
                              SetType(ClassRef(node.name)))
        raise TypeCheckError(
            "unknown name %r (neither an attribute of %s nor a class)"
            % (node.name, elem_type.render() if elem_type else "<no scope>"))

    def _resolve_extent(self, node, _elem_type):
        if not self.schema.has_class(node.class_name):
            raise TypeCheckError("unknown class %r" % node.class_name)
        return self._note(ast.Extent(node.class_name),
                          SetType(ClassRef(node.class_name)))

    def _resolve_element(self, node, elem_type):
        if elem_type is None:
            raise TypeCheckError("%0 used outside a set operation")
        return self._note(ast.Element(), elem_type)

    def _resolve_attr(self, node, elem_type):
        new_base, base_type = self.resolve_expr(node.base, elem_type)
        attr_type = None
        if isinstance(base_type, ClassRef):
            definition = self.schema.cls(base_type.class_name)
            if definition.has_attribute(node.name):
                attr_type = definition.attribute(node.name)
        elif isinstance(base_type, TupleType):
            if base_type.has_field(node.name):
                attr_type = base_type.field(node.name)
        if attr_type is None:
            raise TypeCheckError("%s has no attribute %r"
                                 % (base_type.render(), node.name))
        return self._note(ast.Attr(new_base, node.name), attr_type)

    def _resolve_pos(self, node, elem_type):
        new_base, base_type = self.resolve_expr(node.base, elem_type)
        if not isinstance(base_type, TupleType):
            raise TypeCheckError("positional access %%%d on non-tuple %s"
                                 % (node.index, base_type.render()))
        _name, field_type = base_type.field_at(node.index)
        return self._note(ast.Pos(new_base, node.index), field_type)

    def _resolve_literal(self, node, _elem_type):
        return self._note(ast.Literal(node.value, node.atom_name),
                          BaseType(node.atom_name))

    def _resolve_binop(self, node, elem_type):
        new_left, left_type = self.resolve_expr(node.left, elem_type)
        new_right, right_type = self.resolve_expr(node.right, elem_type)
        out = ast.BinOp(node.op, new_left, new_right)
        if node.op in ("and", "or"):
            if left_type != BOOLEAN or right_type != BOOLEAN:
                raise TypeCheckError("%s needs boolean operands" % node.op)
            return self._note(out, BOOLEAN)
        if node.op in ("+", "-", "*"):
            result = self._numeric_result(left_type, right_type, node.op)
            return self._note(out, result)
        if node.op == "/":
            self._numeric_result(left_type, right_type, node.op)
            return self._note(out, DOUBLE)
        # comparisons
        self._check_comparable(left_type, right_type, node.op)
        return self._note(out, BOOLEAN)

    def _numeric_result(self, left_type, right_type, op):
        if not (is_numeric(left_type) and is_numeric(right_type)):
            raise TypeCheckError("%s needs numeric operands, got %s and %s"
                                 % (op, left_type.render(),
                                    right_type.render()))
        atom = _atoms.common_numeric(left_type.atom, right_type.atom)
        return BaseType(atom.name)

    def _check_comparable(self, left_type, right_type, op):
        if isinstance(left_type, ClassRef) and op in ("=", "!="):
            if left_type != right_type:
                raise TypeCheckError("cannot compare %s with %s"
                                     % (left_type.render(),
                                        right_type.render()))
            return
        if not (is_comparable(left_type) and is_comparable(right_type)):
            raise TypeCheckError("%s needs comparable operands, got %s, %s"
                                 % (op, left_type.render(),
                                    right_type.render()))
        if is_numeric(left_type) and is_numeric(right_type):
            return
        if left_type != right_type:
            raise TypeCheckError("cannot compare %s with %s"
                                 % (left_type.render(), right_type.render()))

    def _resolve_unop(self, node, elem_type):
        new_operand, operand_type = self.resolve_expr(node.operand,
                                                      elem_type)
        out = ast.UnOp(node.op, new_operand)
        if node.op == "not":
            if operand_type != BOOLEAN:
                raise TypeCheckError("not needs a boolean operand")
            return self._note(out, BOOLEAN)
        if not is_numeric(operand_type):
            raise TypeCheckError("neg needs a numeric operand")
        return self._note(out, operand_type)

    def _resolve_call(self, node, elem_type):
        if node.fname == "ifthenelse":
            return self._resolve_ifthenelse(node, elem_type)
        signature = _CALLS.get(node.fname)
        if signature is None:
            raise TypeCheckError("unknown function %r" % node.fname)
        arg_atoms, result = signature
        if len(node.args) != len(arg_atoms):
            raise TypeCheckError("%s takes %d arguments"
                                 % (node.fname, len(arg_atoms)))
        new_args = []
        for arg, expected in zip(node.args, arg_atoms):
            new_arg, arg_type = self.resolve_expr(arg, elem_type)
            if not isinstance(arg_type, BaseType) \
                    or arg_type.atom.name != expected:
                raise TypeCheckError("%s expects a %s argument, got %s"
                                     % (node.fname, expected,
                                        arg_type.render()))
            new_args.append(new_arg)
        return self._note(ast.Call(node.fname, new_args), result)

    def _resolve_ifthenelse(self, node, elem_type):
        """``ifthenelse(cond, a, b)``: polymorphic (bool, T, T) -> T."""
        if len(node.args) != 3:
            raise TypeCheckError("ifthenelse takes (condition, then, else)")
        new_cond, cond_type = self.resolve_expr(node.args[0], elem_type)
        if cond_type != BOOLEAN:
            raise TypeCheckError("ifthenelse condition must be boolean")
        new_then, then_type = self.resolve_expr(node.args[1], elem_type)
        new_else, else_type = self.resolve_expr(node.args[2], elem_type)
        if is_numeric(then_type) and is_numeric(else_type):
            atom = _atoms.common_numeric(then_type.atom, else_type.atom)
            result = BaseType(atom.name)
        elif then_type == else_type:
            result = then_type
        else:
            raise TypeCheckError("ifthenelse branches have incompatible "
                                 "types %s and %s"
                                 % (then_type.render(), else_type.render()))
        return self._note(ast.Call("ifthenelse",
                                   [new_cond, new_then, new_else]), result)

    def _resolve_aggregate(self, node, elem_type):
        new_input, input_type = self.resolve_set(node.input, elem_type)
        element = input_type.element
        out = ast.Aggregate(node.func, new_input)
        if node.func == "count":
            return self._note(out, LONG)
        if node.func in ("sum", "avg"):
            if not is_numeric(element):
                raise TypeCheckError("%s over non-numeric set %s"
                                     % (node.func, input_type.render()))
            if node.func == "avg":
                return self._note(out, DOUBLE)
            atom = element.atom.name
            return self._note(out, LONG if atom in ("short", "int", "long")
                              else DOUBLE)
        # min / max
        if not isinstance(element, BaseType):
            raise TypeCheckError("%s needs base-typed elements" % node.func)
        return self._note(out, element)

    def _resolve_tuplecons(self, node, elem_type):
        fields = []
        new_items = []
        for expr, name in node.items:
            new_expr, expr_type = self.resolve_expr(expr, elem_type)
            field_name = name or _infer_name(new_expr, len(fields))
            fields.append((field_name, expr_type))
            new_items.append((new_expr, field_name))
        out = ast.TupleCons(new_items)
        return self._note(out, TupleType(fields))

    def _resolve_in(self, node, elem_type):
        new_item, item_type = self.resolve_expr(node.item, elem_type)
        new_input, input_type = self.resolve_set(node.input, elem_type)
        if input_type.element != item_type:
            raise TypeCheckError("in(): %s vs set of %s"
                                 % (item_type.render(),
                                    input_type.element.render()))
        return self._note(ast.In(new_item, new_input), BOOLEAN)

    # ------------------------------------------------------------------
    # set operators
    # ------------------------------------------------------------------
    def _resolve_select(self, node, elem_type):
        new_input, input_type = self.resolve_set(node.input, elem_type)
        inner = input_type.element
        new_predicates = []
        for predicate in node.predicates:
            new_pred, pred_type = self.resolve_expr(predicate, inner)
            if pred_type != BOOLEAN:
                raise TypeCheckError("selection predicate %s is not boolean"
                                     % new_pred.render())
            new_predicates.append(new_pred)
        out = ast.Select(new_input, new_predicates)
        return self._note(out, input_type)

    def _resolve_project(self, node, elem_type):
        new_input, input_type = self.resolve_set(node.input, elem_type)
        inner = input_type.element
        if len(node.items) == 1 and node.items[0][1] is None \
                and not isinstance(node.items[0][0], ast.TupleCons):
            new_expr, expr_type = self.resolve_expr(node.items[0][0], inner)
            out = ast.Project(new_input, [(new_expr, None)])
            return self._note(out, SetType(expr_type))
        fields = []
        new_items = []
        for expr, name in node.items:
            new_expr, expr_type = self.resolve_expr(expr, inner)
            field_name = name or _infer_name(new_expr, len(fields))
            fields.append((field_name, expr_type))
            new_items.append((new_expr, field_name))
        out = ast.Project(new_input, new_items)
        return self._note(out, SetType(TupleType(fields)))

    def _resolve_join(self, node, elem_type):
        new_left, left_type = self.resolve_set(node.left, elem_type)
        new_right, right_type = self.resolve_set(node.right, elem_type)
        new_lkey, lkey_type = self.resolve_expr(node.left_key,
                                                left_type.element)
        new_rkey, rkey_type = self.resolve_expr(node.right_key,
                                                right_type.element)
        self._check_join_keys(lkey_type, rkey_type)
        out = ast.Join(new_left, new_right, new_lkey, new_rkey)
        pair = TupleType([(PAIR_FIELDS[0], left_type.element),
                          (PAIR_FIELDS[1], right_type.element)])
        return self._note(out, SetType(pair))

    def _check_join_keys(self, lkey_type, rkey_type):
        if isinstance(lkey_type, TupleType) \
                and isinstance(rkey_type, TupleType):
            if len(lkey_type.fields) != len(rkey_type.fields):
                raise TypeCheckError("join key arity mismatch")
            for (_ln, lt), (_rn, rt) in zip(lkey_type.fields,
                                            rkey_type.fields):
                self._check_comparable(lt, rt, "=")
            return
        self._check_comparable(lkey_type, rkey_type, "=")

    def _resolve_semijoin(self, node, elem_type):
        new_left, left_type = self.resolve_set(node.left, elem_type)
        new_right, right_type = self.resolve_set(node.right, elem_type)
        new_lkey, lkey_type = self.resolve_expr(node.left_key,
                                                left_type.element)
        new_rkey, rkey_type = self.resolve_expr(node.right_key,
                                                right_type.element)
        self._check_join_keys(lkey_type, rkey_type)
        out = ast.Semijoin(new_left, new_right, new_lkey, new_rkey,
                           anti=node.anti)
        return self._note(out, left_type)

    def _resolve_setop(self, node, elem_type):
        new_left, left_type = self.resolve_set(node.left, elem_type)
        new_right, right_type = self.resolve_set(node.right, elem_type)
        if left_type != right_type:
            raise TypeCheckError("%s over differently typed sets %s vs %s"
                                 % (node.kind, left_type.render(),
                                    right_type.render()))
        out = ast.SetOp(node.kind, new_left, new_right)
        return self._note(out, left_type)

    def _resolve_nest(self, node, elem_type):
        new_input, input_type = self.resolve_set(node.input, elem_type)
        inner = input_type.element
        fields = []
        new_keys = []
        for expr, name in node.keys:
            new_expr, expr_type = self.resolve_expr(expr, inner)
            if not isinstance(expr_type, (BaseType, ClassRef)):
                raise TypeCheckError("nest key %s must be atomic or a "
                                     "reference" % new_expr.render())
            field_name = name or _infer_name(new_expr, len(fields))
            fields.append((field_name, expr_type))
            new_keys.append((new_expr, field_name))
        group_name = node.group_name
        fields.append((group_name, SetType(inner)))
        out = ast.Nest(new_input, new_keys, group_name)
        return self._note(out, SetType(TupleType(fields)))

    def _resolve_unnest(self, node, elem_type):
        new_input, input_type = self.resolve_set(node.input, elem_type)
        inner = input_type.element
        attr_type = self.element_attr_type(inner, node.attr)
        if attr_type is None:
            raise TypeCheckError("unnest: %s has no attribute %r"
                                 % (inner.render(), node.attr))
        if not isinstance(attr_type, SetType):
            raise TypeCheckError("unnest: attribute %r is not set-valued"
                                 % node.attr)
        out = ast.Unnest(new_input, node.attr)
        pair = TupleType([(PAIR_FIELDS[0], inner),
                          (PAIR_FIELDS[1], attr_type.element)])
        return self._note(out, SetType(pair))

    def _resolve_sort(self, node, elem_type):
        new_input, input_type = self.resolve_set(node.input, elem_type)
        inner = input_type.element
        new_keys = []
        for expr, descending in node.keys:
            new_expr, expr_type = self.resolve_expr(expr, inner)
            if not is_comparable(expr_type):
                raise TypeCheckError("sort key %s is not comparable"
                                     % new_expr.render())
            new_keys.append((new_expr, descending))
        out = ast.Sort(new_input, new_keys)
        return self._note(out, input_type)

    def _resolve_top(self, node, elem_type):
        new_input, input_type = self.resolve_set(node.input, elem_type)
        out = ast.Top(new_input, node.n)
        return self._note(out, input_type)


def _infer_name(expr, position):
    """Field name for an unnamed projection/nest item."""
    if isinstance(expr, ast.Attr):
        return expr.name
    if isinstance(expr, ast.Pos):
        return "_%d" % expr.index
    return "_%d" % (position + 1)


def resolve(root, schema):
    """Resolve + type a parsed MOA query against a schema."""
    return Resolver(schema).resolve(root)
