"""The MOA type system (paper sections 3.1 and 3.3).

Formal definition from the paper::

    base types:  tau is a type if tau is an atomic Monet type
    tuple types: <tau_1, ..., tau_n> is a type, if tau_i are types
    set types:   {tau} is a type if tau is a type

plus object types: classes name structured values and add identity —
a class attribute of another class is a *reference* (:class:`ClassRef`).

Base-type extensibility (point vi of section 1) falls out for free:
any atom registered with :mod:`repro.monet.atoms` is usable as a MOA
base type.
"""

from ..errors import TypeSystemError
from ..monet import atoms as _atoms


class MOAType:
    """Abstract MOA type."""

    def render(self):
        raise NotImplementedError

    def __repr__(self):
        return self.render()

    def __eq__(self, other):
        return (type(other) is type(self)
                and other._key() == self._key())

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError


class BaseType(MOAType):
    """An atomic Monet type used as MOA base type."""

    __slots__ = ("atom",)

    def __init__(self, atom_name):
        self.atom = _atoms.atom(atom_name)
        if self.atom.name == "void":
            raise TypeSystemError("void is not a MOA base type")

    def render(self):
        return self.atom.name

    def _key(self):
        return self.atom.name


class TupleType(MOAType):
    """``<name_1: tau_1, ..., name_n: tau_n>``."""

    __slots__ = ("fields",)

    def __init__(self, fields):
        fields = tuple((name, field_type) for name, field_type in fields)
        names = [name for name, _t in fields]
        if len(set(names)) != len(names):
            raise TypeSystemError("duplicate tuple field names: %r" % names)
        if not fields:
            raise TypeSystemError("tuple types need at least one field")
        for _name, field_type in fields:
            if not isinstance(field_type, MOAType):
                raise TypeSystemError("tuple field %r is not a MOA type"
                                      % (field_type,))
        self.fields = fields

    def field(self, name):
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        raise TypeSystemError("tuple type has no field %r" % name)

    def field_at(self, position):
        """1-based positional field access (MOA ``%1``)."""
        if not 1 <= position <= len(self.fields):
            raise TypeSystemError("tuple position %d out of range" % position)
        return self.fields[position - 1]

    def has_field(self, name):
        return any(field_name == name for field_name, _t in self.fields)

    def render(self):
        return "<%s>" % ", ".join("%s: %s" % (n, t.render())
                                  for n, t in self.fields)

    def _key(self):
        return self.fields


class SetType(MOAType):
    """``{tau}``."""

    __slots__ = ("element",)

    def __init__(self, element):
        if not isinstance(element, MOAType):
            raise TypeSystemError("set element %r is not a MOA type"
                                  % (element,))
        self.element = element

    def render(self):
        return "{%s}" % self.element.render()

    def _key(self):
        return self.element


class ClassRef(MOAType):
    """A reference to an object of a named class."""

    __slots__ = ("class_name",)

    def __init__(self, class_name):
        self.class_name = class_name

    def render(self):
        return self.class_name

    def _key(self):
        return self.class_name


def is_numeric(moa_type):
    return (isinstance(moa_type, BaseType)
            and _atoms.is_numeric(moa_type.atom))


def is_comparable(moa_type):
    """Types that admit <, <=, >, >= comparisons."""
    return isinstance(moa_type, BaseType)


BOOLEAN = BaseType("bool")
INT = BaseType("int")
LONG = BaseType("long")
DOUBLE = BaseType("double")
FLOAT = BaseType("float")
STRING = BaseType("string")
CHAR = BaseType("char")
INSTANT = BaseType("instant")
