"""Logical values and the formal notions of paper section 3.3.

The mapping's formal foundation works with *identified value sets*
(IVS): sets of ``<id, value>`` pairs with unique ids, where identifiers
are reused across sets to express *synchronicity*.  This module
provides those notions executably (they are checked by the property
tests), plus the value kinds the logical data model needs:

* :class:`Ref` — an object reference ``(class, oid)``; objects are
  compared by identity, never by deep structure, which also keeps
  cyclic schemas (Order.cust / Customer.orders) unproblematic.
* :class:`Row` — a tuple value with named + positional field access.
* :class:`Bag` — a multiset; MOA sets are identified value sets, so
  two elements may carry equal values (e.g. equal revenues), which
  materialises as a duplicate-preserving bag.

Deep equality with float tolerance is provided by :func:`equivalent`,
the comparator used by the Figure 6 commuting-diagram tests.
"""

import math

from ..errors import EvaluationError


class Ref:
    """A reference to an object: class name + oid, identity semantics."""

    __slots__ = ("class_name", "oid")

    def __init__(self, class_name, oid):
        self.class_name = class_name
        self.oid = int(oid)

    def __repr__(self):
        return "%s:%d" % (self.class_name, self.oid)

    def __eq__(self, other):
        return (isinstance(other, Ref) and other.class_name == self.class_name
                and other.oid == self.oid)

    def __hash__(self):
        return hash(("Ref", self.class_name, self.oid))

    def __lt__(self, other):
        if not isinstance(other, Ref):
            raise TypeError("cannot order Ref against %r" % (other,))
        return (self.class_name, self.oid) < (other.class_name, other.oid)


class Row:
    """A tuple value: ordered named fields, positional access 1-based
    (``%1``, ``%2`` in MOA syntax)."""

    __slots__ = ("_names", "_values")

    def __init__(self, fields):
        """``fields`` is an iterable of (name, value) pairs."""
        fields = list(fields)
        self._names = tuple(name for name, _v in fields)
        self._values = tuple(v for _n, v in fields)
        if len(set(self._names)) != len(self._names):
            raise EvaluationError("duplicate field names in row: %r"
                                  % (self._names,))

    @property
    def names(self):
        return self._names

    @property
    def values(self):
        return self._values

    def __getitem__(self, name):
        try:
            return self._values[self._names.index(name)]
        except ValueError:
            raise EvaluationError("row has no field %r (has %r)"
                                  % (name, self._names)) from None

    def at(self, position):
        """1-based positional access, as in MOA's ``%1``."""
        if not 1 <= position <= len(self._values):
            raise EvaluationError("row position %d out of range 1..%d"
                                  % (position, len(self._values)))
        return self._values[position - 1]

    def has(self, name):
        return name in self._names

    def items(self):
        return list(zip(self._names, self._values))

    def __len__(self):
        return len(self._values)

    def __repr__(self):
        return "<%s>" % ", ".join("%s: %r" % (n, v) for n, v in self.items())

    def __eq__(self, other):
        return (isinstance(other, Row) and other._names == self._names
                and other._values == self._values)

    def __hash__(self):
        return hash(("Row", self._names, self._values))


class Bag:
    """A multiset of values, the logical carrier of a MOA set."""

    __slots__ = ("items",)

    def __init__(self, items=()):
        self.items = list(items)

    def __len__(self):
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def add(self, value):
        self.items.append(value)

    def __repr__(self):
        shown = ", ".join(repr(v) for v in self.items[:6])
        if len(self.items) > 6:
            shown += ", ..."
        return "{%s}" % shown

    def __eq__(self, other):
        if not isinstance(other, Bag):
            return NotImplemented
        return equivalent(self, other)


# ----------------------------------------------------------------------
# identified value sets (formal definitions, section 3.3)
# ----------------------------------------------------------------------
def is_ivs(pairs):
    """True when ``pairs`` is an identified value set: every pair is
    ``<id, value>`` and ids are unique within the set."""
    seen = set()
    for pair in pairs:
        if len(pair) != 2:
            return False
        identifier = pair[0]
        if identifier in seen:
            return False
        seen.add(identifier)
    return True


def is_synchronous(first, second):
    """Two IVSs are synchronous when their id sets coincide exactly."""
    return ({identifier for identifier, _v in first}
            == {identifier for identifier, _v in second})


# ----------------------------------------------------------------------
# deep comparison
# ----------------------------------------------------------------------
def canonical_key(value):
    """A sort key stable across equivalent values (floats rounded)."""
    if isinstance(value, Bag):
        return ("bag", tuple(sorted(canonical_key(v) for v in value.items)))
    if isinstance(value, Row):
        return ("row", value.names,
                tuple(canonical_key(v) for v in value.values))
    if isinstance(value, Ref):
        return ("ref", value.class_name, value.oid)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, float):
        return ("num", round(value, 6))
    if isinstance(value, int):
        return ("num", round(float(value), 6))
    return (type(value).__name__, value)


def equivalent(left, right, tolerance=1e-6):
    """Deep equality with float tolerance; Bags compare as multisets."""
    if isinstance(left, Bag) or isinstance(right, Bag):
        if not (isinstance(left, Bag) and isinstance(right, Bag)):
            return False
        if len(left) != len(right):
            return False
        left_sorted = sorted(left.items, key=canonical_key)
        right_sorted = sorted(right.items, key=canonical_key)
        return all(equivalent(lv, rv, tolerance)
                   for lv, rv in zip(left_sorted, right_sorted))
    if isinstance(left, Row) or isinstance(right, Row):
        if not (isinstance(left, Row) and isinstance(right, Row)):
            return False
        if left.names != right.names or len(left) != len(right):
            return False
        return all(equivalent(lv, rv, tolerance)
                   for lv, rv in zip(left.values, right.values))
    if isinstance(left, Ref) or isinstance(right, Ref):
        return left == right
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right or left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return math.isclose(float(left), float(right),
                            rel_tol=tolerance, abs_tol=tolerance)
    return left == right


def sequences_equivalent(left, right, tolerance=1e-6, ordered=False):
    """Compare two sequences of values, as bags or as ordered lists."""
    left = list(left)
    right = list(right)
    if ordered:
        return (len(left) == len(right)
                and all(equivalent(lv, rv, tolerance)
                        for lv, rv in zip(left, right)))
    return equivalent(Bag(left), Bag(right), tolerance)
