"""The Monet kernel substrate (paper sections 2, 3.2, 4.2, 5).

A pure-Python/numpy reimplementation of the parts of the Monet
database kernel the paper relies on: Binary Association Tables with
mirror views and void columns, the BAT algebra of Figure 4 with
multiple run-time-dispatched implementations per operator, property
management (ordered / key / synced), the datavector accelerator, a
simulated virtual-memory pager with page-fault accounting, and the MIL
program representation + interpreter.
"""

from . import atoms, operators, parallel
from .atoms import Atom, atom
from .bat import (BAT, bat_dense_head, bat_from_columns_values,
                  bat_from_pairs, concat_bats, empty_bat)
from .buffer import BufferManager, get_manager, set_manager, use
from .column import (Column, FixedColumn, VarColumn, VoidColumn,
                     column_from_values)
from .heap import FixedHeap, MappedVarHeap, VarHeap
from .kernel import MonetKernel
from .storage import (CatalogLock, HeapStorage, MemoryBackend,
                      MmapBackend, catalog_generation, open_kernel,
                      open_with_protocol, residency_report,
                      residency_snapshot, save_kernel)
from .mil import (MILInterpreter, MILProgram, MILStmt, MILTrace, Var,
                  partition_independent)
from .multiproc import (MultiprocExecutor, PendingTask, TaskOutcome,
                        register_task_kind, result_checksum,
                        run_program_serial, run_queries_multiproc,
                        ship_value)
from .optimizer import Optimizer, dispatch_disabled, get_optimizer
from .parallel import ParallelConfig
from .properties import Props, compute_props, synced, verify

__all__ = [
    "atoms", "operators", "parallel",
    "Atom", "atom", "ParallelConfig",
    "BAT", "bat_dense_head", "bat_from_columns_values", "bat_from_pairs",
    "concat_bats", "empty_bat",
    "BufferManager", "get_manager", "set_manager", "use",
    "Column", "FixedColumn", "VarColumn", "VoidColumn",
    "column_from_values",
    "FixedHeap", "MappedVarHeap", "VarHeap",
    "MonetKernel",
    "CatalogLock", "HeapStorage", "MemoryBackend", "MmapBackend",
    "catalog_generation", "open_kernel", "open_with_protocol",
    "residency_report", "residency_snapshot", "save_kernel",
    "MILInterpreter", "MILProgram", "MILStmt", "MILTrace", "Var",
    "partition_independent",
    "MultiprocExecutor", "PendingTask", "TaskOutcome",
    "register_task_kind", "result_checksum",
    "run_program_serial", "run_queries_multiproc", "ship_value",
    "Optimizer", "dispatch_disabled", "get_optimizer",
    "Props", "compute_props", "synced", "verify",
]
