"""Search accelerators attachable to BATs (paper sections 3.2, 5.2).

Monet stores accelerators in extra heaps next to the BUN heap; here
they are objects hung off ``BAT.accel``:

* ``"hash"`` — :class:`~repro.monet.accelerators.hashidx.HashIndex`
  on the head column, used by hash join/semijoin variants.
* ``"datavector"`` —
  :class:`~repro.monet.accelerators.datavector.DataVector`, the
  accelerator of section 5.2 that links a tail-sorted attribute BAT to
  its class extent and a positionally synced value vector.
"""

from .hashidx import HashIndex, hash_index
from .datavector import DataVector, DataVectorRegistry, build_datavector

__all__ = [
    "HashIndex", "hash_index",
    "DataVector", "DataVectorRegistry", "build_datavector",
]
