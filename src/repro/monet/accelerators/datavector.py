"""The datavector accelerator, paper section 5.2.

Monet resolves the conflicting clustering requirements of OLAP queries
(selection attributes want tail-sorted BATs; value attributes want
oid-sorted access) by storing every attribute BAT sorted on *tail* and
attaching a **datavector**: the attribute's values in extent (oid)
order, positionally synced with the class extent.

The structure is per class:

* one sorted vector of oids — the extent (``EXTENT`` in the paper's
  pseudo code);
* one value vector per attribute (``VECTOR``), synced by position;
* per right-operand ``LOOKUP`` arrays cached after the first
  datavector semijoin — the "blazed trail" that makes the second and
  later semijoins against the same selection almost free (Figure 10,
  lines 10-11).

Because the extent and the lookup cache are shared by all attributes
of a class, they live in a :class:`DataVectorRegistry`; each attribute
BAT carries a small :class:`DataVector` handle (``bat.accel`` slot
``"datavector"``) pointing at the registry plus its own value vector.
"""

import numpy as np

from ...errors import OperatorError
from ..buffer import get_manager
from ..column import equality_keys


class DataVectorRegistry:
    """Shared per-class side of the datavector accelerator."""

    def __init__(self, class_name, extent_column, check=True):
        # asanyarray keeps a reopened extent as its zero-copy memmap
        # view; ``check=False`` (storage reopen path) skips the eager
        # ascending scan, which would otherwise fault in every page
        extent = np.asanyarray(extent_column.logical(), dtype=np.int64)
        if check and len(extent) > 1 and not np.all(extent[:-1] < extent[1:]):
            raise OperatorError(
                "datavector extent for %s must be strictly ascending"
                % class_name)
        self.class_name = class_name
        self.extent = extent
        self.extent_column = extent_column
        #: right-operand identity -> (positions into extent, hit mask
        #: positions into the right operand)  — the cached LOOKUP array.
        self._lookup_cache = {}
        self.lookups_computed = 0
        self.lookups_reused = 0

    def lookup(self, right_bat, charge_probes=True):
        """LOOKUP array for ``right_bat`` (paper pseudo code lines 5-15).

        Returns ``(extent_positions, right_positions)``: for every BUN
        of ``right_bat`` whose head oid exists in the extent, the
        position of that oid in the extent and the BUN's own position.
        Cached per right operand, so "subsequent semijoins with B do
        not re-do the lookup effort".
        """
        key = right_bat.identity
        cached = self._lookup_cache.get(key)
        if cached is not None:
            self.lookups_reused += 1
            return cached
        heads = np.asarray(right_bat.head.logical(), dtype=np.int64)
        if charge_probes:
            manager = get_manager()
            manager.access_column(right_bat.head)
            for heap in self.extent_column.heaps:
                manager.access_probes(heap, len(heads), len(self.extent),
                                      heap.width)
        positions = np.searchsorted(self.extent, heads)
        positions = np.clip(positions, 0, max(0, len(self.extent) - 1))
        if len(self.extent):
            valid = self.extent[positions] == heads
        else:
            valid = np.zeros(len(heads), dtype=bool)
        result = (positions[valid], np.nonzero(valid)[0])
        self._lookup_cache[key] = result
        self.lookups_computed += 1
        return result

    def invalidate(self):
        """Drop cached lookups (after updates to the extent)."""
        self._lookup_cache.clear()


class DataVector:
    """Per-attribute handle: registry + value vector in extent order."""

    __slots__ = ("registry", "vector")

    def __init__(self, registry, vector):
        if len(vector) != len(registry.extent):
            raise OperatorError(
                "datavector for class %s: vector length %d != extent %d"
                % (registry.class_name, len(vector), len(registry.extent)))
        self.registry = registry
        self.vector = vector


def build_datavector(attr_bat, registry):
    """Create and attach a :class:`DataVector` to ``attr_bat``.

    ``attr_bat`` must hold the attribute as ``[oid, value]`` BUNs (in
    any order); the value vector is produced by permuting the tails
    into extent (oid) order — the "projection on tail column" of
    section 6 when the BAT is already oid-ordered.
    """
    heads = np.asarray(attr_bat.head.logical(), dtype=np.int64)
    positions = np.searchsorted(registry.extent, heads)
    if len(registry.extent) == 0 or not np.array_equal(
            registry.extent[np.clip(positions, 0,
                                    max(0, len(registry.extent) - 1))],
            heads):
        raise OperatorError("attribute BAT %r has oids outside the extent"
                            % (attr_bat.name,))
    order = np.argsort(positions, kind="stable")
    vector = attr_bat.tail.take(order)
    accel = DataVector(registry, vector)
    attr_bat.accel["datavector"] = accel
    return accel


def has_datavector(bat):
    return "datavector" in bat.accel
