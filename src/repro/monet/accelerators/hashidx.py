"""Hash-table accelerator on a BAT column (Figure 2's hash heap).

The index maps equality keys of the head column to the BUN positions
holding them.  It is built lazily by the join/semijoin operators and
cached on the BAT (``bat.accel["hash"]``), mirroring Monet's persistent
hash heaps.
"""

import numpy as np

from ..heap import Heap


class _HashHeap(Heap):
    """Heap stand-in so buffer accounting can charge hash probes."""

    def __init__(self, nbytes, label=""):
        super().__init__(label)
        self._nbytes = nbytes

    @property
    def nbytes(self):
        return self._nbytes


class HashIndex:
    """positions-by-key mapping over one column of a BAT."""

    __slots__ = ("table", "heap", "n_entries")

    def __init__(self, table, n_entries, label=""):
        self.table = table
        self.n_entries = n_entries
        # model the hash heap as ~8 bytes per entry (bucket + chain)
        self.heap = _HashHeap(8 * n_entries, label)

    def positions(self, key):
        """BUN positions whose key equals ``key`` (list, build order)."""
        return self.table.get(key, ())

    def first(self, key):
        hits = self.table.get(key)
        return hits[0] if hits else None

    def __len__(self):
        return self.n_entries


def hash_index(column, label=""):
    """Build a :class:`HashIndex` over a column's equality keys."""
    keys = column.keys()
    table = {}
    if keys.dtype == object:
        for pos, key in enumerate(keys):
            table.setdefault(key, []).append(pos)
    else:
        for pos, key in enumerate(keys.tolist()):
            table.setdefault(key, []).append(pos)
    return HashIndex(table, len(keys), label)


def hash_of(bat, side="head"):
    """Cached hash index on a BAT's head (or tail) column."""
    slot = "hash" if side == "head" else "hash_tail"
    index = bat.accel.get(slot)
    if index is None:
        column = bat.head if side == "head" else bat.tail
        index = hash_index(column, label="%s.%s" % (bat.name or "bat", slot))
        bat.accel[slot] = index
    return index


def positions_array(index, keys):
    """Vector probe: first-match position per key, -1 when absent."""
    out = np.full(len(keys), -1, dtype=np.int64)
    table = index.table
    if keys.dtype == object:
        iterator = enumerate(keys)
    else:
        iterator = enumerate(keys.tolist())
    for i, key in iterator:
        hits = table.get(key)
        if hits:
            out[i] = hits[0]
    return out
