"""Hash-table accelerator on a BAT column (Figure 2's hash heap).

The index maps equality keys of the head column to the BUN positions
holding them.  It is built lazily by the join/semijoin operators and
cached on the BAT (``bat.accel["hash"]``), mirroring Monet's persistent
hash heaps.

Since the vectorisation pass the index is *array-backed* for
fixed-width atoms: it stores a stable sort permutation of the keys
plus the sorted key array (see
:class:`~repro.monet.vectorized.MultiMap`), so both scalar probes and
whole-column vector probes run as binary searches over contiguous
arrays.  Only object-dtype keys (exotic; var atoms compare on heap
indices) keep a Python dict.  The simulated heap cost is unchanged:
~8 bytes per entry, like the bucket+chain layout it models.
"""

import numpy as np

from ..heap import Heap
from ..vectorized import MultiMap


class _HashHeap(Heap):
    """Heap stand-in so buffer accounting can charge hash probes."""

    def __init__(self, nbytes, label=""):
        super().__init__(label)
        self._nbytes = nbytes

    @property
    def nbytes(self):
        return self._nbytes


class HashIndex:
    """positions-by-key mapping over one column of a BAT."""

    __slots__ = ("map", "heap", "n_entries")

    def __init__(self, multimap, label=""):
        self.map = multimap
        self.n_entries = len(multimap)
        # model the hash heap as ~8 bytes per entry (bucket + chain)
        self.heap = _HashHeap(8 * self.n_entries, label)

    def positions(self, key):
        """BUN positions whose key equals ``key`` (ascending order)."""
        return self.map.positions(key)

    def first(self, key):
        return self.map.first(key)

    def match(self, probe_keys):
        """Vector probe: all matches, probe-major (see MultiMap.match)."""
        return self.map.match(probe_keys)

    def __len__(self):
        return self.n_entries


def hash_index(column, label=""):
    """Build a :class:`HashIndex` over a column's equality keys."""
    return HashIndex(MultiMap(column.keys()), label)


def hash_of(bat, side="head"):
    """Cached hash index on a BAT's head (or tail) column."""
    slot = "hash" if side == "head" else "hash_tail"
    index = bat.accel.get(slot)
    if index is None:
        column = bat.head if side == "head" else bat.tail
        index = hash_index(column, label="%s.%s" % (bat.name or "bat", slot))
        bat.accel[slot] = index
    return index


def positions_array(index, keys):
    """Vector probe: first-match position per key, -1 when absent."""
    return index.map.lookup_first(np.asarray(keys))
