"""Atom (base) types of the Monet kernel.

The paper (section 3.1) lists Monet's atomic types as ``{bool, short,
integer, float, double, long, string}``; the kernel additionally has
``oid`` (object identifiers), ``char``, ``void`` (a zero-space dense
column, footnote 2 of the paper) and, via the ADT extension mechanism,
``instant`` (a date, used by TPC-D attributes such as ``shipdate``).

An :class:`Atom` bundles everything the kernel needs to know about a
base type:

* its numpy storage dtype (``None`` for variable-size atoms, which are
  stored through a :class:`~repro.monet.heap.VarHeap`),
* its byte width as used by the IO cost model of section 5.2.2,
* parsing and formatting of literal values,
* how to coerce Python values into the stored representation.

The registry is extensible at run time via :func:`register_atom`,
mirroring Monet's "base type extensibility" (section 2).
"""

import datetime

import numpy as np

from ..errors import AtomError

#: Epoch used by the ``instant`` atom: days are counted from this date.
INSTANT_EPOCH = datetime.date(1970, 1, 1)


class Atom:
    """Description of one atomic (base) type.

    Parameters
    ----------
    name:
        Canonical name, e.g. ``"int"`` or ``"string"``.
    dtype:
        numpy dtype used for fixed-width storage, or ``None`` when the
        atom is variable-size (stored in a var heap behind an index
        column).
    width:
        Byte width of one value, as counted by the IO cost model.  For
        variable-size atoms this is the width of the heap *index*.
    parse:
        Function turning a literal string into a Python value.
    coerce:
        Function normalising arbitrary Python input into the canonical
        Python value for this atom (e.g. ``int`` -> ``float`` for
        ``double``).
    fmt:
        Function rendering a stored value back to a literal string.
    """

    __slots__ = ("name", "dtype", "width", "parse", "coerce", "fmt", "varsized")

    def __init__(self, name, dtype, width, parse, coerce, fmt):
        self.name = name
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.width = width
        self.parse = parse
        self.coerce = coerce
        self.fmt = fmt
        self.varsized = dtype is None

    def __repr__(self):
        return "Atom(%s)" % self.name

    def __eq__(self, other):
        return isinstance(other, Atom) and other.name == self.name

    def __hash__(self):
        return hash(("Atom", self.name))


def _parse_bool(text):
    lowered = text.strip().lower()
    if lowered in ("true", "t", "1"):
        return True
    if lowered in ("false", "f", "0"):
        return False
    raise AtomError("cannot parse %r as bool" % text)


def _coerce_bool(value):
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    raise AtomError("cannot coerce %r to bool" % (value,))


def _coerce_int_factory(name, lo, hi):
    def coerce(value):
        if isinstance(value, (bool, np.bool_)):
            raise AtomError("cannot coerce bool to %s" % name)
        if isinstance(value, (int, np.integer)):
            ivalue = int(value)
            if not lo <= ivalue <= hi:
                raise AtomError("%d out of range for %s" % (ivalue, name))
            return ivalue
        raise AtomError("cannot coerce %r to %s" % (value, name))

    return coerce


def _coerce_float(value):
    if isinstance(value, (bool, np.bool_)):
        raise AtomError("cannot coerce bool to float")
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    raise AtomError("cannot coerce %r to float" % (value,))


def _coerce_str(value):
    if isinstance(value, str):
        return value
    raise AtomError("cannot coerce %r to string" % (value,))


def _coerce_char(value):
    if isinstance(value, str) and len(value) == 1:
        return value
    raise AtomError("cannot coerce %r to char (need 1-character string)" % (value,))


def date_to_days(value):
    """Convert a :class:`datetime.date` (or ISO string) to epoch days."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    if isinstance(value, datetime.datetime):
        value = value.date()
    if not isinstance(value, datetime.date):
        raise AtomError("cannot coerce %r to instant" % (value,))
    return (value - INSTANT_EPOCH).days


def days_to_date(days):
    """Convert epoch days back to a :class:`datetime.date`."""
    return INSTANT_EPOCH + datetime.timedelta(days=int(days))


def _coerce_instant(value):
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(value)
    return date_to_days(value)


def _fmt_instant(days):
    return days_to_date(days).isoformat()


_I16 = (-(2 ** 15), 2 ** 15 - 1)
_I32 = (-(2 ** 31), 2 ** 31 - 1)
_I64 = (-(2 ** 63), 2 ** 63 - 1)

#: The atom registry, name -> :class:`Atom`.
ATOMS = {}

#: Alternative spellings accepted by :func:`atom`.
_ALIASES = {
    "bit": "bool",
    "boolean": "bool",
    "sht": "short",
    "integer": "int",
    "lng": "long",
    "flt": "float",
    "dbl": "double",
    "str": "string",
    "chr": "char",
    "date": "instant",
}


def register_atom(spec):
    """Add an :class:`Atom` to the registry (Monet's ADT extensibility)."""
    if spec.name in ATOMS:
        raise AtomError("atom %r already registered" % spec.name)
    ATOMS[spec.name] = spec
    return spec


def atom(name):
    """Look up an atom by canonical name or alias."""
    if isinstance(name, Atom):
        return name
    key = _ALIASES.get(name, name)
    try:
        return ATOMS[key]
    except KeyError:
        raise AtomError("unknown atom type %r" % (name,)) from None


register_atom(Atom("void", None, 0, _parse_bool, _coerce_bool, str))
# void is special: it has no storage at all.  Overwrite the marker fields.
ATOMS["void"].varsized = False
ATOMS["void"].width = 0

register_atom(Atom("bool", np.bool_, 1, _parse_bool, _coerce_bool,
                   lambda v: "true" if v else "false"))
register_atom(Atom("char", None, 1, lambda t: t, _coerce_char, str))
register_atom(Atom("short", np.int16, 2, int,
                   _coerce_int_factory("short", *_I16), str))
register_atom(Atom("int", np.int32, 4, int,
                   _coerce_int_factory("int", *_I32), str))
register_atom(Atom("long", np.int64, 8, int,
                   _coerce_int_factory("long", *_I64), str))
register_atom(Atom("oid", np.int64, 8, int,
                   _coerce_int_factory("oid", 0, _I64[1]), str))
register_atom(Atom("float", np.float32, 4, float, _coerce_float,
                   lambda v: repr(float(v))))
register_atom(Atom("double", np.float64, 8, float, _coerce_float,
                   lambda v: repr(float(v))))
register_atom(Atom("string", None, 4, lambda t: t, _coerce_str, str))
register_atom(Atom("instant", np.int32, 4,
                   lambda t: date_to_days(t), _coerce_instant, _fmt_instant))

# char is stored through a var heap like string (single-character strings);
# its logical width for the IO model stays 1 byte.
VOID = atom("void")
BOOL = atom("bool")
CHAR = atom("char")
SHORT = atom("short")
INT = atom("int")
LONG = atom("long")
OID = atom("oid")
FLOAT = atom("float")
DOUBLE = atom("double")
STRING = atom("string")
INSTANT = atom("instant")

#: Atoms that admit a total order (all of them except void).
ORDERED_ATOMS = frozenset(
    name for name in ATOMS if name != "void"
)


def common_numeric(left, right):
    """Return the wider of two numeric atoms, for arithmetic results.

    Mirrors MIL's implicit numeric widening: ``int * double -> double``.
    Raises :class:`AtomError` when either side is not numeric.
    """
    ranking = ["short", "int", "long", "float", "double"]
    for side in (left, right):
        if side.name not in ranking:
            raise AtomError("%s is not a numeric atom" % side.name)
    return atom(ranking[max(ranking.index(left.name), ranking.index(right.name))])


def is_numeric(spec):
    """True when the atom supports arithmetic."""
    return spec.name in ("short", "int", "long", "float", "double")
