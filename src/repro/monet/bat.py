"""The Binary Association Table (BAT), paper section 3.2 / Figure 2.

A BAT is a two-column table; the left column is the *head*, the right
column the *tail*, and one row is a BUN (Binary UNit).  Because of the
descriptor design, every BAT can also be viewed through its *mirror*
descriptor with head and tail swapped — "an operation free of cost"
(section 4.2).  :meth:`BAT.mirror` implements exactly that: the mirror
shares the underlying columns and swaps the property flags.

A BAT additionally carries:

* ``props`` — the ordered/key flags of section 5.1,
* ``alignment`` — the token implementing ``synced`` (see
  :mod:`repro.monet.properties`),
* ``accel`` — attached search accelerators (hash tables, the
  datavector of section 5.2), stored in extra heaps in Monet.

BAT-algebra operators never mutate their operands (section 4.2); the
only mutating methods here (:meth:`append`) exist to exercise the
property *invalidation* path ("once set, these properties are actively
guarded by the kernel") and are used by tests.
"""

import itertools

import numpy as np

from ..errors import BATError
from . import atoms as _atoms
from .column import (Column, FixedColumn, VarColumn, VoidColumn,
                     column_from_values, concat_columns)
from .properties import Props, fresh_alignment, mirror_alignment

_BAT_IDS = itertools.count(1)


class BAT:
    """A Binary Association Table over two :class:`Column` objects."""

    __slots__ = ("head", "tail", "props", "alignment", "name", "accel",
                 "identity", "_mirror_cache")

    def __init__(self, head, tail, name=None, props=None, alignment=None):
        if not isinstance(head, Column) or not isinstance(tail, Column):
            raise BATError("BAT columns must be Column instances")
        if len(head) != len(tail):
            raise BATError("head and tail must have equal length (%d != %d)"
                           % (len(head), len(tail)))
        self.head = head
        self.tail = tail
        self.props = props if props is not None else Props()
        self.alignment = (alignment if alignment is not None
                          else fresh_alignment())
        self.name = name
        self.accel = {}
        self.identity = next(_BAT_IDS)
        self._mirror_cache = None

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.head)

    def __repr__(self):
        return "BAT(%s)[%s,%s] (%d BUNs)" % (
            self.name or "#%d" % self.identity,
            self.head.atom.name, self.tail.atom.name, len(self))

    def signature(self):
        """The ``[headatom,tailatom]`` signature string of the paper."""
        return "[%s,%s]" % (self.head.atom.name, self.tail.atom.name)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def mirror(self):
        """The mirrored view: head and tail swapped, zero cost.

        The mirror shares this BAT's columns; its alignment token is the
        ``mirror`` of this BAT's token, so ``b.mirror().mirror()`` is
        synced with ``b``.
        """
        if self._mirror_cache is None:
            out = BAT(self.tail, self.head,
                      name=None if self.name is None else self.name + ".mirror",
                      props=self.props.swapped(),
                      alignment=mirror_alignment(self.alignment))
            out._mirror_cache = self
            self._mirror_cache = out
        return self._mirror_cache

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------
    def bun(self, position):
        """The (head, tail) Python pair at one position."""
        return (self.head.value(position), self.tail.value(position))

    def to_pairs(self):
        """All BUNs as a list of Python pairs (test/debug helper)."""
        heads = self.head.logical()
        tails = self.tail.logical()
        return [(_pyvalue(self.head, heads[i]), _pyvalue(self.tail, tails[i]))
                for i in range(len(self))]

    def take(self, positions, name=None, alignment=None):
        """New BAT holding the BUNs at ``positions`` (in that order)."""
        positions = np.asarray(positions, dtype=np.int64)
        return BAT(self.head.take(positions), self.tail.take(positions),
                   name=name, alignment=alignment)

    def slice(self, lo, hi, name=None):
        """New BAT over the contiguous BUN range ``lo:hi``."""
        return BAT(self.head.slice(lo, hi), self.tail.slice(lo, hi),
                   name=name)

    @property
    def nbytes(self):
        """Byte footprint of both columns (heap bodies included once)."""
        seen = set()
        total = 0
        for col in (self.head, self.tail):
            for heap in col.heaps:
                if heap.heap_id not in seen:
                    seen.add(heap.heap_id)
                    total += heap.nbytes
        return total

    # ------------------------------------------------------------------
    # mutation (exists to exercise property guarding; see module doc)
    # ------------------------------------------------------------------
    def append(self, head_value, tail_value):
        """Append one BUN, re-checking the guarded properties.

        Returns a *new* BAT (columns are immutable); the new BAT keeps
        each declared property only when the appended BUN provably
        preserves it, mirroring the kernel's "rechecked, and switched
        off if necessary" behaviour.
        """
        new_head = _append_column(self.head, head_value)
        new_tail = _append_column(self.tail, tail_value)
        props = Props()
        n = len(self)
        if n == 0:
            props = Props(hkey=True, hordered=True, tkey=True, tordered=True)
        else:
            if self.props.hordered:
                props.hordered = _last_le(self.head, head_value)
            if self.props.tordered:
                props.tordered = _last_le(self.tail, tail_value)
            if self.props.hkey:
                props.hkey = not _contains(self.head, head_value)
            if self.props.tkey:
                props.tkey = not _contains(self.tail, tail_value)
        return BAT(new_head, new_tail, name=self.name, props=props)


def _pyvalue(column, raw):
    """Normalise a numpy scalar out of ``logical()`` to a Python value."""
    if isinstance(raw, (np.bool_,)):
        return bool(raw)
    if isinstance(raw, np.integer):
        return int(raw)
    if isinstance(raw, np.floating):
        return float(raw)
    return raw


def _append_column(column, value):
    if isinstance(column, VoidColumn):
        if value != column.seqbase + column.length:
            raise BATError("cannot append %r to a void column ending at %d"
                           % (value, column.seqbase + column.length))
        return VoidColumn(column.seqbase, column.length + 1)
    values = list(column.logical())
    values.append(column.atom.coerce(value))
    return column_from_values(column.atom, values)


def _last_le(column, value):
    if len(column) == 0:
        return True
    return column.value(len(column) - 1) <= value


def _contains(column, value):
    encoded = column.encode(value)
    if encoded is None:
        return False
    keys = column.keys()
    if keys.dtype == object:
        return value in set(keys)
    return bool(np.any(keys == encoded))


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def bat_from_pairs(head_atom, tail_atom, pairs, name=None):
    """Build a BAT from an iterable of (head, tail) Python pairs."""
    pairs = list(pairs)
    heads = [p[0] for p in pairs]
    tails = [p[1] for p in pairs]
    return bat_from_columns_values(head_atom, heads, tail_atom, tails,
                                   name=name)


def bat_from_columns_values(head_atom, heads, tail_atom, tails, name=None):
    """Build a BAT from two parallel Python value sequences."""
    head = column_from_values(head_atom, heads,
                              label=(name or "") + ".head")
    tail = column_from_values(tail_atom, tails,
                              label=(name or "") + ".tail")
    return BAT(head, tail, name=name)


def bat_dense_head(tail_column, seqbase=0, name=None, alignment=None):
    """BAT with a void (virtual dense) head over an existing column."""
    head = VoidColumn(seqbase, len(tail_column))
    out = BAT(head, tail_column, name=name, alignment=alignment)
    out.props.hkey = True
    out.props.hordered = True
    return out


def empty_bat(head_atom, tail_atom, name=None):
    """A BAT with zero BUNs of the given signature."""
    head = _empty_column(head_atom)
    tail = _empty_column(tail_atom)
    out = BAT(head, tail, name=name)
    out.props = Props(hkey=True, hordered=True, tkey=True, tordered=True)
    return out


def _empty_column(atom_name):
    spec = _atoms.atom(atom_name)
    if spec.name == "void":
        return VoidColumn(0, 0)
    if spec.varsized:
        return VarColumn.from_values(spec, [])
    return FixedColumn(spec, np.empty(0, dtype=spec.dtype))


def concat_bats(parts, name=None):
    """Concatenate BATs of identical signature (BUN order preserved)."""
    parts = list(parts)
    if not parts:
        raise BATError("concat_bats needs at least one BAT")
    head = concat_columns([p.head for p in parts])
    tail = concat_columns([p.tail for p in parts])
    return BAT(head, tail, name=name)
