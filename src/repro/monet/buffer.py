"""Simulated virtual-memory buffer management and page-fault accounting.

The real Monet maps BATs into virtual memory and lets the OS pager do
buffer management (paper section 2: "it has no page-based buffer
manager ... lets the MMU do the job in hardware").  The performance
analysis of the paper (sections 5.2.2 and 6) is entirely in terms of
**page faults**: how many B-byte pages each execution strategy touches.

This module reproduces that observable.  A :class:`BufferManager`
tracks a resident set of ``(heap_id, page_number)`` pairs with an LRU
policy and an optional memory budget; operators report their accesses
through three patterns:

* :meth:`BufferManager.access_range` — sequential scan of a byte range,
* :meth:`BufferManager.access_positions` — scattered (unclustered)
  access to individual entries, the pattern behind the
  ``1-(1-s)^C`` term of the section 5.2.2 cost model,
* :meth:`BufferManager.access_probes` — binary-search probes.

Faults are attributed to the operator named by the surrounding
:meth:`BufferManager.operator` context, which is how the per-statement
fault counts of Figure 10 are produced.

A process-global *current* manager (default: disabled, zero overhead)
is installed with :func:`use` or :func:`set_manager`.
"""

import contextlib
from collections import OrderedDict

import numpy as np


class BufferStats:
    """Counters captured by :meth:`BufferManager.snapshot`.

    Each worker process of the multi-process dispatcher
    (:mod:`repro.monet.multiproc`) runs its own :class:`BufferManager`
    over the shared mmap catalog; :meth:`merge` folds the per-worker
    snapshots into one fleet-wide total on the parent side.
    """

    __slots__ = ("faults", "hits", "evictions")

    def __init__(self, faults=0, hits=0, evictions=0):
        self.faults = faults
        self.hits = hits
        self.evictions = evictions

    def merge(self, other):
        """Accumulate another snapshot into this one; returns self."""
        self.faults += other.faults
        self.hits += other.hits
        self.evictions += other.evictions
        return self

    def as_dict(self):
        return {"faults": int(self.faults), "hits": int(self.hits),
                "evictions": int(self.evictions)}

    def __repr__(self):
        return ("BufferStats(faults=%d, hits=%d, evictions=%d)"
                % (self.faults, self.hits, self.evictions))


class BufferManager:
    """LRU resident-set simulation over heap pages.

    Parameters
    ----------
    page_size:
        Bytes per page; the paper uses B = 4096.
    memory_pages:
        Resident-set budget in pages, or ``None`` for unbounded memory
        (then only cold misses fault).
    enabled:
        When False every accounting call is a no-op, so the simulation
        can be switched off for pure-speed runs.
    track_pages:
        When True, the distinct pages touched are recorded *per heap*
        (``heap_pages``), so the simulation can be compared against the
        real resident-set deltas of mmap-backed heaps (see
        :func:`repro.monet.storage.residency_report`).
    """

    def __init__(self, page_size=4096, memory_pages=None, enabled=True,
                 track_pages=False):
        self.page_size = int(page_size)
        self.memory_pages = memory_pages
        self.enabled = enabled
        self.track_pages = track_pages
        #: heap_id -> set of touched page numbers (track_pages mode)
        self.heap_pages = {}
        self._resident = OrderedDict()
        #: transient pages that were evicted under memory pressure;
        #: touching them again is a real fault (spill re-read)
        self._spilled = set()
        self.faults = 0
        self.hits = 0
        self.evictions = 0
        self._op_stack = []
        self.op_faults = {}

    # ------------------------------------------------------------------
    # operator attribution
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def operator(self, label):
        """Attribute faults inside the block to ``label``."""
        self._op_stack.append(label)
        before = self.faults
        try:
            yield
        finally:
            self._op_stack.pop()
            delta = self.faults - before
            if delta:
                self.op_faults[label] = self.op_faults.get(label, 0) + delta

    def _charge(self, count):
        self.faults += count

    # ------------------------------------------------------------------
    # residency core
    # ------------------------------------------------------------------
    def _touch_pages(self, heap, pages):
        """Touch an iterable of page numbers of one heap.

        Cold pages of *persistent* heaps fault; cold pages of
        transient heaps (intermediate results) are free the first time
        — they are writes — and only fault again once evicted under
        memory pressure (see :class:`~repro.monet.heap.Heap`).
        """
        resident = self._resident
        budget = self.memory_pages
        persistent = getattr(heap, "persistent", True)
        heap_id = heap.heap_id
        if self.track_pages:
            touched = self.heap_pages.get(heap_id)
            if touched is None:
                touched = self.heap_pages[heap_id] = set()
            pages = list(pages)
            touched.update(pages)
        misses = 0
        for page in pages:
            key = (heap_id, page)
            if key in resident:
                resident.move_to_end(key)
                self.hits += 1
            else:
                if persistent or key in self._spilled:
                    misses += 1
                resident[key] = persistent
                if budget is not None and len(resident) > budget:
                    victim, victim_persistent = resident.popitem(
                        last=False)
                    if not victim_persistent:
                        self._spilled.add(victim)
                    self.evictions += 1
        if misses:
            self._charge(misses)

    # ------------------------------------------------------------------
    # access patterns
    # ------------------------------------------------------------------
    def access_range(self, heap, start_byte=0, nbytes=None):
        """Sequential access to ``heap[start_byte : start_byte+nbytes]``."""
        if not self.enabled:
            return
        if nbytes is None:
            nbytes = heap.nbytes - start_byte
        if nbytes <= 0:
            return
        first = start_byte // self.page_size
        last = (start_byte + nbytes - 1) // self.page_size
        self._touch_pages(heap, range(first, last + 1))

    def access_heap(self, heap):
        """Sequential access to a whole heap."""
        self.access_range(heap, 0, heap.nbytes)

    def access_positions(self, heap, positions, width):
        """Scattered access to entries ``positions`` of ``width`` bytes.

        Page numbers are deduplicated *per call* (consecutive hits to
        one page cost one touch), which makes the expected fault count
        of a random gather match the ``pages * (1-(1-s)^C)`` term of
        the analytic model.
        """
        if not self.enabled or width == 0:
            return
        positions = np.asarray(positions)
        if positions.size == 0:
            return
        pages = np.unique(positions.astype(np.int64) * width // self.page_size)
        self._touch_pages(heap, pages.tolist())

    def access_positions_chunks(self, heap, position_chunks, width):
        """Scattered access reported once for several horizontal chunks.

        The parallel layer executes one logical gather as per-chunk
        kernels; accounting it chunk by chunk would re-touch pages
        shared between chunk ranges (boundary pages, or the hot head
        of a shared accelerator heap), inflating hit counts and — under
        a memory budget — reordering the LRU.  The page sets of all
        chunks are therefore unioned *before* touching, so a shared
        page is charged exactly once and the resulting fault trace is
        the one the serial (merged) gather produces.
        """
        if not self.enabled or width == 0:
            return
        pages = set()
        for positions in position_chunks:
            positions = np.asarray(positions)
            if positions.size:
                pages.update(
                    np.unique(positions.astype(np.int64) * width
                              // self.page_size).tolist())
        if pages:
            self._touch_pages(heap, sorted(pages))

    def access_probes(self, heap, n_probes, n_entries, width):
        """``n_probes`` binary searches over ``n_entries`` sorted entries.

        Each probe touches about ``log2(n_pages)`` pages, but the top
        levels of the implicit search tree stay resident, so repeated
        probing is charged the page count of the touched *frontier*:
        we charge ``min(n_pages, n_probes * ceil(log2(n_pages)))``
        page touches spread deterministically over the heap.
        """
        if not self.enabled or width == 0 or n_probes <= 0 or n_entries <= 0:
            return
        n_pages = max(1, -(-(n_entries * width) // self.page_size))
        depth = max(1, int(np.ceil(np.log2(n_pages + 1))))
        touched = min(n_pages, n_probes * depth)
        step = max(1, n_pages // touched)
        self._touch_pages(heap, range(0, n_pages, step))

    def access_column(self, column, positions=None):
        """Account one column access: full scan or positional gather."""
        if not self.enabled:
            return
        for heap in column.heaps:
            if positions is None:
                self.access_heap(heap)
            else:
                width = getattr(heap, "width", None)
                if width:
                    self.access_positions(heap, positions, width)
                else:
                    # var heap bodies: approximate with average width
                    avg = max(1, heap.nbytes // max(1, len(heap)))
                    self.access_positions(heap, positions, avg)

    def access_column_chunks(self, column, position_chunks):
        """Chunked-gather accounting for one column: the union of the
        chunks' pages per heap, charged once (see
        :meth:`access_positions_chunks`)."""
        if not self.enabled:
            return
        for heap in column.heaps:
            width = getattr(heap, "width", None)
            if not width:
                # var heap bodies: approximate with average width
                width = max(1, heap.nbytes // max(1, len(heap)))
            self.access_positions_chunks(heap, position_chunks, width)

    def access_bat(self, bat, positions=None):
        """Account access to both columns of a BAT."""
        if not self.enabled:
            return
        self.access_column(bat.head, positions)
        self.access_column(bat.tail, positions)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def evict_all(self):
        """Drop the whole resident set (simulate a cold start).

        Intermediates of finished queries are dead, so the spill set
        is cleared too: the next query starts from cold base data.
        """
        self._resident.clear()
        self._spilled.clear()

    def evict_heap(self, heap):
        """Drop one heap's pages (the "save intermediate results to
        disk" behaviour the paper describes for query 1).

        Evicted *transient* pages join the spill set, exactly like
        budget evictions in :meth:`_touch_pages`: an intermediate that
        was pushed to disk must fault its pages back in when re-touched
        — it is no longer a free first-time write.
        """
        doomed = [key for key in self._resident if key[0] == heap.heap_id]
        for key in doomed:
            if not self._resident.pop(key):
                self._spilled.add(key)
        self.evictions += len(doomed)

    def resident_pages(self):
        return len(self._resident)

    def snapshot(self):
        return BufferStats(self.faults, self.hits, self.evictions)

    def touched_page_counts(self):
        """heap_id -> number of distinct pages touched (track_pages)."""
        return {heap_id: len(pages)
                for heap_id, pages in self.heap_pages.items()}

    def reset_counters(self):
        self.faults = 0
        self.hits = 0
        self.evictions = 0
        self.op_faults = {}
        self.heap_pages = {}


#: Disabled manager used when no simulation is requested.
_DISABLED = BufferManager(enabled=False)
_current = _DISABLED


def get_manager():
    """The buffer manager operators should report accesses to."""
    return _current


def set_manager(manager):
    """Install ``manager`` (or None to disable accounting) globally."""
    global _current
    _current = manager if manager is not None else _DISABLED


@contextlib.contextmanager
def use(manager):
    """Context manager installing ``manager`` for the duration."""
    global _current
    previous = _current
    _current = manager if manager is not None else _DISABLED
    try:
        yield manager
    finally:
        _current = previous
