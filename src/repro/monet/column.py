"""Columns: one side (head or tail) of a BAT.

Three physical layouts exist, mirroring Monet:

* :class:`FixedColumn` — a dense numpy array of a fixed-width atom.
* :class:`VarColumn` — integer indices into a de-duplicated
  :class:`~repro.monet.heap.VarHeap` (strings, chars).
* :class:`VoidColumn` — the zero-space ``void`` column of the paper's
  footnote 2: a *virtual* dense sequence ``seqbase, seqbase+1, ...``
  that occupies no storage at all.  Extents and datavector results use
  it heavily.

Columns are immutable from the operators' point of view: BAT-algebra
operations "materialize their result and never change their operands"
(section 4.2).
"""

import numpy as np

from ..errors import BATError
from . import atoms as _atoms
from .heap import FixedHeap, VarHeap


class Column:
    """Abstract column; see module docstring for the three layouts."""

    __slots__ = ("atom",)

    def __init__(self, atom):
        self.atom = _atoms.atom(atom)

    def __len__(self):
        raise NotImplementedError

    def logical(self):
        """numpy array of logical values (object array for var atoms)."""
        raise NotImplementedError

    def keys(self):
        """Array usable for *equality* comparison within this column.

        For var columns this returns heap indices, which are only
        comparable against keys that came from the same heap; use
        :func:`equality_keys` to compare across two columns.
        """
        raise NotImplementedError

    def order_keys(self):
        """Array that sorts in the same order as the logical values."""
        raise NotImplementedError

    def take(self, positions):
        """New column holding ``self`` at the given positions."""
        raise NotImplementedError

    def slice(self, lo, hi):
        """New column for positions ``lo:hi`` (cheap contiguous view)."""
        raise NotImplementedError

    def value(self, position):
        """Python value at one position."""
        raise NotImplementedError

    def encode(self, value):
        """Physical equality key for a Python value, or None if absent.

        ``None`` can only happen for var columns whose heap does not
        contain the value; it means no row can match.
        """
        raise NotImplementedError

    @property
    def width(self):
        """Byte width per entry as seen by the IO cost model."""
        return self.atom.width

    @property
    def heaps(self):
        """Heaps backing this column, for buffer accounting."""
        return ()

    @property
    def nbytes(self):
        return sum(h.nbytes for h in self.heaps)

    def is_void(self):
        return False


class FixedColumn(Column):
    """Fixed-width atom values stored in a dense numpy array."""

    __slots__ = ("data", "_heap")

    def __init__(self, atom, data, label=""):
        super().__init__(atom)
        if self.atom.dtype is None:
            raise BATError("atom %s is variable-size; use VarColumn"
                           % self.atom.name)
        # asanyarray keeps np.memmap views intact, so columns reopened
        # from the storage layer stay zero-copy windows onto the file
        self.data = np.asanyarray(data, dtype=self.atom.dtype)
        if self.data.ndim != 1:
            raise BATError("column data must be one-dimensional")
        self._heap = FixedHeap(self.data, self.atom.width, label)

    def __len__(self):
        return len(self.data)

    def logical(self):
        return self.data

    def keys(self):
        return self.data

    def order_keys(self):
        return self.data

    def take(self, positions):
        return FixedColumn(self.atom, self.data[positions],
                           label=self._heap.label)

    def slice(self, lo, hi):
        return FixedColumn(self.atom, self.data[lo:hi],
                           label=self._heap.label)

    def value(self, position):
        raw = self.data[position]
        if self.atom.name == "bool":
            return bool(raw)
        if self.atom.dtype.kind in "iu":
            return int(raw)
        return float(raw)

    def encode(self, value):
        return self.atom.coerce(value)

    @property
    def heaps(self):
        return (self._heap,)


class VarColumn(Column):
    """Variable-size atom values: index array + shared VarHeap."""

    __slots__ = ("indices", "heap", "_index_heap")

    def __init__(self, atom, indices, heap, label=""):
        super().__init__(atom)
        if not self.atom.varsized:
            raise BATError("atom %s is fixed-width; use FixedColumn"
                           % self.atom.name)
        self.indices = np.asanyarray(indices, dtype=np.int32)
        if self.indices.ndim != 1:
            raise BATError("column data must be one-dimensional")
        self.heap = heap
        self._index_heap = FixedHeap(self.indices, 4, label)

    @classmethod
    def from_values(cls, atom, values, heap=None, label=""):
        """Build from Python values, interning them into ``heap``."""
        spec = _atoms.atom(atom)
        if not spec.varsized:
            raise BATError("atom %s is fixed-width; use FixedColumn"
                           % spec.name)
        heap = heap if heap is not None else VarHeap(label)
        coerced = [spec.coerce(v) for v in values]
        indices = heap.insert_many(coerced)
        return cls(spec, indices, heap, label)

    def __len__(self):
        return len(self.indices)

    def logical(self):
        return self.heap.decode(self.indices)

    def keys(self):
        return self.indices

    def order_keys(self):
        _order, rank = self.heap.sorted_order()
        return rank[self.indices]

    def take(self, positions):
        return VarColumn(self.atom, self.indices[positions], self.heap,
                         label=self._index_heap.label)

    def slice(self, lo, hi):
        return VarColumn(self.atom, self.indices[lo:hi], self.heap,
                         label=self._index_heap.label)

    def value(self, position):
        return self.heap.decode_one(self.indices[position])

    def encode(self, value):
        return self.heap.find(self.atom.coerce(value))

    @property
    def heaps(self):
        return (self._index_heap, self.heap)


class VoidColumn(Column):
    """Virtual dense oid sequence ``seqbase .. seqbase+length-1``."""

    __slots__ = ("seqbase", "length")

    def __init__(self, seqbase, length):
        super().__init__(_atoms.OID)
        self.seqbase = int(seqbase)
        self.length = int(length)

    def __len__(self):
        return self.length

    def logical(self):
        return np.arange(self.seqbase, self.seqbase + self.length,
                         dtype=np.int64)

    def keys(self):
        return self.logical()

    def order_keys(self):
        return self.logical()

    def take(self, positions):
        data = np.asarray(positions, dtype=np.int64) + self.seqbase
        return FixedColumn(_atoms.OID, data)

    def slice(self, lo, hi):
        lo = max(0, lo)
        hi = min(self.length, hi)
        return VoidColumn(self.seqbase + lo, max(0, hi - lo))

    def value(self, position):
        position = int(position)
        if position < 0:
            position += self.length
        if not 0 <= position < self.length:
            raise IndexError(position)
        return self.seqbase + position

    def encode(self, value):
        return _atoms.OID.coerce(value)

    @property
    def width(self):
        return 0

    def is_void(self):
        return True


def column_from_values(atom, values, label=""):
    """Build the appropriate column kind for ``atom`` from Python values."""
    spec = _atoms.atom(atom)
    if spec.name == "void":
        raise BATError("void columns are built with VoidColumn(seqbase, n)")
    if spec.varsized:
        return VarColumn.from_values(spec, values, label=label)
    coerced = [spec.coerce(v) for v in values]
    return FixedColumn(spec, np.asarray(coerced, dtype=spec.dtype), label)


def equality_keys(left, right):
    """Comparable equality-key arrays for two columns of the same atom.

    Fixed columns compare on their raw arrays.  Var columns sharing one
    heap compare on indices.  Var columns with *different* heaps are
    reconciled by re-encoding the right column's distinct values through
    the left heap (missing values map to -1, which never matches because
    heap indices are non-negative).
    """
    if left.atom.varsized != right.atom.varsized:
        raise BATError("cannot compare %s keys with %s keys"
                       % (left.atom.name, right.atom.name))
    if not left.atom.varsized:
        return left.keys(), right.keys()
    if left.heap is right.heap:
        return left.indices, right.indices
    # one dict probe per *distinct* right value (not per BUN); the
    # dense translate array then remaps the whole index column at once
    lookup = left.heap.lookup
    translate = np.fromiter((lookup.get(v, -1) for v in right.heap.values),
                            dtype=np.int64, count=len(right.heap))
    if len(right.indices):
        remapped = translate[right.indices]
    else:
        remapped = np.empty(0, dtype=np.int64)
    return left.indices.astype(np.int64), remapped


def concat_columns(parts):
    """Concatenate columns of the same atom into one column."""
    parts = [p for p in parts]
    if not parts:
        raise BATError("concat_columns needs at least one column")
    spec = parts[0].atom
    for part in parts[1:]:
        if part.atom != spec:
            raise BATError("cannot concatenate %s with %s"
                           % (spec.name, part.atom.name))
    if spec.varsized:
        heap = VarHeap()
        chunks = []
        for part in parts:
            chunks.append(heap.insert_many(part.logical()))
        return VarColumn(spec, np.concatenate(chunks) if chunks else
                         np.empty(0, dtype=np.int32), heap)
    arrays = [p.logical() for p in parts]
    return FixedColumn(spec, np.concatenate(arrays))
