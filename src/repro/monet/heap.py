"""Heaps: the storage areas behind BAT columns.

The paper (section 3.2, Figure 2) describes a BAT as owning between 1
and 5 heaps: the BUN heap with the fixed-size value pairs, up to two
variable-size atom heaps (one per column, holding e.g. string bodies
behind integer byte-indices in the BUN heap), and accelerator heaps.

Here each *column* owns its own storage, which keeps the bookkeeping
simple while preserving the observable design: fixed-width values live
in a dense array (:class:`FixedHeap`), variable-size atoms live in a
de-duplicated :class:`VarHeap` addressed through integer indices.

Every heap registers itself with a process-wide directory so that the
simulated buffer manager (:mod:`repro.monet.buffer`) can account page
faults per heap.
"""

import itertools

import numpy as np

from ..errors import HeapError

_HEAP_IDS = itertools.count(1)


class Heap:
    """Common bookkeeping for all heap kinds.

    ``persistent`` distinguishes disk-backed heaps (loaded base BATs,
    accelerators — their cold pages *fault* when touched) from
    transient intermediate results, which are born memory-resident:
    writing a fresh intermediate does not read from disk, so its first
    touch is free.  Intermediates only fault again after the buffer
    manager evicted them under memory pressure (the paper's query 1
    "save intermediate results to disk" scenario).
    """

    def __init__(self, label=""):
        self.heap_id = next(_HEAP_IDS)
        self.label = label
        self.persistent = False

    @property
    def nbytes(self):
        raise NotImplementedError

    def __repr__(self):
        return "%s(id=%d, label=%r, %d bytes)" % (
            type(self).__name__, self.heap_id, self.label, self.nbytes)


class FixedHeap(Heap):
    """Dense array storage for fixed-width atoms (the BUN heap side)."""

    def __init__(self, data, width, label=""):
        super().__init__(label)
        self.data = data
        self.width = width

    @property
    def nbytes(self):
        return len(self.data) * self.width


class VarHeap(Heap):
    """De-duplicated storage for variable-size atoms (strings, chars).

    Monet's string heaps perform "double elimination": a string that
    occurs many times is stored once, and the BUN heap stores integer
    byte offsets.  We store each distinct value once in ``values`` and
    hand out dense integer indices; ``lookup`` maps value -> index.

    ``nbytes`` reports the byte size of the stored bodies, which is what
    the IO cost model should see for heap scans.
    """

    def __init__(self, label=""):
        super().__init__(label)
        self.values = []
        self.lookup = {}
        self._body_bytes = 0
        self._sorted_cache = None
        self._table_cache = None

    def insert(self, value):
        """Intern ``value``; return its index."""
        index = self.lookup.get(value)
        if index is None:
            index = len(self.values)
            self.values.append(value)
            self.lookup[value] = index
            self._body_bytes += len(value.encode("utf-8")) + 1
            self._sorted_cache = None
            self._table_cache = None
        return index

    def insert_many(self, values):
        """Intern an iterable of values; return an int32 index array."""
        insert = self.insert
        return np.fromiter((insert(v) for v in values), dtype=np.int32,
                           count=len(values) if hasattr(values, "__len__") else -1)

    def find(self, value):
        """Index of ``value`` or ``None`` when absent."""
        return self.lookup.get(value)

    def decode_table(self):
        """The distinct values as an object array (cached until insert)."""
        if self._table_cache is None:
            self._table_cache = np.array(self.values, dtype=object)
        return self._table_cache

    def decode(self, indices):
        """Map an index array back to an object array of values."""
        if len(self) == 0:
            if len(indices) == 0:
                return np.empty(0, dtype=object)
            raise HeapError("decode from empty var heap")
        return self.decode_table()[np.asarray(indices, dtype=np.int64)]

    def decode_one(self, index):
        return self.values[int(index)]

    def sorted_order(self):
        """Permutation of heap indices that sorts the distinct values.

        Returns ``(order, rank)`` where ``order[k]`` is the heap index of
        the ``k``-th smallest value and ``rank[i]`` is the sort position
        of heap index ``i``.  Used by range selections and sorts on
        var-size columns.  The result is cached until the next insert.
        """
        if self._sorted_cache is None:
            order = np.argsort(self.decode_table(), kind="stable")
            order = np.asarray(order, dtype=np.int64)
            rank = np.empty(len(order), dtype=np.int64)
            rank[order] = np.arange(len(order), dtype=np.int64)
            self._sorted_cache = (order, rank)
        return self._sorted_cache

    def __len__(self):
        return len(self.values)

    @property
    def nbytes(self):
        return self._body_bytes


class MappedVarHeap(VarHeap):
    """A :class:`VarHeap` reopened from an offset+body file pair.

    The storage layer (:mod:`repro.monet.storage`) persists a var heap
    as ``offsets`` (int64 array of N+1 cumulative byte positions) plus
    ``body`` (the NUL-terminated UTF-8 value bodies back to back, so
    value ``k`` lives at ``body[offsets[k] : offsets[k+1]-1]``).  Both
    sides are handed in as arrays — typically ``np.memmap`` views — and
    the Python-level ``values`` list / ``lookup`` dict are only
    materialised on first use, so reopening a database never eagerly
    reads heap bodies.
    """

    def __init__(self, offsets, body, label=""):
        Heap.__init__(self, label)
        if len(offsets) == 0:
            raise HeapError("var heap offsets must hold at least [0]")
        self._offsets = offsets
        self._body = body
        self._values = None
        self._lookup = None
        # len(body) == offsets[-1] by construction; using the mapping
        # length avoids faulting in the offsets' last page on open
        self._body_bytes = len(body)
        self._sorted_cache = None
        self._table_cache = None
        self.persistent = True
        #: arrays backing this heap (for residency validation)
        self.mapped = (offsets, body)

    @property
    def values(self):
        if self._values is None:
            offsets = np.asarray(self._offsets, dtype=np.int64)
            body = bytes(np.asarray(self._body, dtype=np.uint8))
            self._values = [
                body[offsets[k]:offsets[k + 1] - 1].decode("utf-8")
                for k in range(len(offsets) - 1)]
        return self._values

    @values.setter
    def values(self, new_values):
        self._values = new_values

    @property
    def lookup(self):
        if self._lookup is None:
            self._lookup = {value: index
                            for index, value in enumerate(self.values)}
        return self._lookup

    @lookup.setter
    def lookup(self, new_lookup):
        self._lookup = new_lookup

    @property
    def decoded(self):
        """True once the Python value list has been materialised."""
        return self._values is not None

    def __len__(self):
        if self._values is not None:
            return len(self._values)
        return len(self._offsets) - 1
