"""The Monet kernel facade: BAT catalog, bulk load, accelerator builds.

Reproduces the load pipeline of section 6:

1. :meth:`MonetKernel.bulk_load` — registers a BAT and "correctly sets
   the properties key, ordered, and synced";
2. :meth:`MonetKernel.create_extent` — "an extent[oid,void] was created
   by taking one attribute-BAT, and projecting out the tail column";
3. :meth:`MonetKernel.create_datavectors` — value vectors per attribute
   ("initially, all tables were sorted on oid, so it was cheap to
   create datavectors: just a projection on tail column");
4. :meth:`MonetKernel.reorder_on_tail` — "we then reordered all tables
   on tail values" so selections can binary-search.
"""

import numpy as np

from ..errors import CatalogError
from . import atoms as _atoms
from .accelerators.datavector import DataVectorRegistry, build_datavector
from .bat import BAT, bat_dense_head
from .buffer import BufferManager, get_manager
from .column import VoidColumn, column_from_values
from .operators.sort import sort_tail
from .properties import compute_props, fresh_alignment


def mark_persistent(bat):
    """Flag a BAT's heaps as disk-backed (cold touches fault)."""
    for column in (bat.head, bat.tail):
        for heap in column.heaps:
            heap.persistent = True
    return bat


class MonetKernel:
    """A catalog of named BATs plus the load/accelerator machinery."""

    def __init__(self, buffer_manager=None):
        self._catalog = {}
        self.buffer = buffer_manager if buffer_manager is not None \
            else BufferManager(enabled=False)
        #: class name -> DataVectorRegistry (shared extent + lookups)
        self.registries = {}
        #: alignment tokens per load group, so BATs loaded for one
        #: class come out mutually synced
        self._group_alignment = {}
        #: shared-catalog provenance, set by :meth:`open`: the catalog
        #: generation this kernel serves and the backend it came from
        #: (``None`` for kernels that were never opened from storage)
        self.generation = None
        self.origin = None

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def register(self, name, bat):
        if name in self._catalog:
            raise CatalogError("BAT %r already in catalog" % name)
        bat.name = name
        self._catalog[name] = bat
        return bat

    def replace(self, name, bat):
        if name not in self._catalog:
            raise CatalogError("BAT %r not in catalog" % name)
        bat.name = name
        self._catalog[name] = bat
        return bat

    def get(self, name):
        try:
            return self._catalog[name]
        except KeyError:
            raise CatalogError("no BAT named %r" % name) from None

    def __contains__(self, name):
        return name in self._catalog

    def names(self):
        return sorted(self._catalog)

    def drop(self, name):
        if name not in self._catalog:
            raise CatalogError("no BAT named %r" % name)
        del self._catalog[name]

    def total_bytes(self):
        """Byte footprint of the whole catalog (for the 1.6 GB row)."""
        seen = set()
        total = 0
        for bat in self._catalog.values():
            for col in (bat.head, bat.tail):
                for heap in col.heaps:
                    if heap.heap_id not in seen:
                        seen.add(heap.heap_id)
                        total += heap.nbytes
        return total

    # ------------------------------------------------------------------
    # persistence (see repro.monet.storage)
    # ------------------------------------------------------------------
    def save(self, target, meta=None, extra=None, lock_timeout=None):
        """Persist the whole catalog to a directory (or backend).

        Writes one raw little-endian file per heap plus a JSON catalog
        manifest; accelerator heaps (datavectors, hash indexes) are
        included.  The save holds the directory's exclusive catalog
        lock and bumps the manifest generation counter (see
        :mod:`repro.monet.storage`).  Returns the manifest dict.
        """
        from .storage import save_kernel
        return save_kernel(self, target, meta=meta, extra=extra,
                           lock_timeout=lock_timeout)

    @classmethod
    def open(cls, target, buffer_manager=None, expected_generation=None,
             lock_timeout=None):
        """Reopen a saved catalog with zero-copy ``np.memmap`` columns.

        Properties, alignment groups and accelerators are restored from
        the manifest; no heap data is read eagerly.
        ``expected_generation`` pins the open to one catalog
        generation (raising ``StaleCatalogError`` /
        ``CatalogChangedError`` on mismatch) — the multi-process
        dispatcher uses it so every worker serves the same snapshot.
        """
        from .storage import open_kernel
        return open_kernel(target, buffer_manager=buffer_manager,
                           kernel=cls(buffer_manager),
                           expected_generation=expected_generation,
                           lock_timeout=lock_timeout)

    def is_stale(self):
        """True when the origin catalog moved past this kernel's
        generation (a writer saved since we opened) — or can no longer
        be read at all (directory gone, manifest corrupt): either way,
        this kernel's snapshot no longer reflects its origin.  Kernels
        that were never opened from storage are never stale.  Use
        :meth:`assert_current` for the typed-error form.
        """
        if self.origin is None or self.generation is None:
            return False
        from ..errors import CatalogError
        from .storage import catalog_generation
        try:
            return catalog_generation(self.origin) != self.generation
        except CatalogError:
            return True

    def assert_current(self):
        """Raise unless the origin catalog still serves our generation.

        ``CatalogChangedError`` when a newer generation was saved
        (reopen to proceed), ``StaleCatalogError`` when the on-disk
        manifest is *older* than what we opened (a rolled-back or
        damaged directory).  No-op for kernels without an origin.
        """
        if self.origin is None or self.generation is None:
            return
        from ..errors import CatalogChangedError, StaleCatalogError
        from .storage import catalog_generation
        on_disk = catalog_generation(self.origin)
        if on_disk > self.generation:
            raise CatalogChangedError(
                "catalog was rewritten: generation %d on disk, this "
                "kernel serves %d — reopen to pick it up"
                % (on_disk, self.generation))
        if on_disk < self.generation:
            raise StaleCatalogError(
                "stale manifest: generation %d on disk, this kernel "
                "was opened at %d" % (on_disk, self.generation))

    # ------------------------------------------------------------------
    # load pipeline
    # ------------------------------------------------------------------
    def group_alignment(self, group):
        """Shared alignment token for one load group (class)."""
        token = self._group_alignment.get(group)
        if token is None:
            token = fresh_alignment("load:%s" % group)
            self._group_alignment[group] = token
        return token

    def bulk_load(self, name, head_atom, heads, tail_atom, tails,
                  group=None):
        """Load one BAT; properties are computed and set (section 6)."""
        head = column_from_values(head_atom, heads, label=name + ".head")
        tail = column_from_values(tail_atom, tails, label=name + ".tail")
        alignment = self.group_alignment(group) if group else None
        bat = BAT(head, tail, alignment=alignment)
        bat.props = compute_props(bat)
        mark_persistent(bat)
        return self.register(name, bat)

    def create_extent(self, class_name, from_bat_name, extent_name=None):
        """``extent[oid, void]`` from an attribute BAT's head column."""
        extent_name = extent_name or class_name
        source = self.get(from_bat_name)
        head = source.head.take(np.arange(len(source), dtype=np.int64))
        extent = BAT(head, VoidColumn(0, len(source)),
                     alignment=source.alignment)
        extent.props = compute_props(extent)
        mark_persistent(extent)
        return self.register(extent_name, extent)

    def create_datavectors(self, class_name, attr_names, extent_name=None):
        """Build the per-class datavector registry + value vectors."""
        extent = self.get(extent_name or class_name)
        registry = DataVectorRegistry(class_name, extent.head)
        self.registries[class_name] = registry
        for attr_name in attr_names:
            accel = build_datavector(self.get(attr_name), registry)
            for heap in accel.vector.heaps:
                heap.persistent = True
        return registry

    def reorder_on_tail(self, names):
        """Re-sort the named BATs on tail value (accelerators kept)."""
        for name in names:
            bat = self.get(name)
            reordered = sort_tail(bat)
            reordered.accel = bat.accel
            mark_persistent(reordered)
            self.replace(name, reordered)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def dense_bat(self, name, tail_atom, tails, seqbase=0, group=None):
        """Register a BAT with a void head over Python tail values."""
        tail = column_from_values(tail_atom, tails, label=name + ".tail")
        alignment = self.group_alignment(group) if group else None
        bat = bat_dense_head(tail, seqbase=seqbase, alignment=alignment)
        bat.props = compute_props(bat)
        mark_persistent(bat)
        return self.register(name, bat)
