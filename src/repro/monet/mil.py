"""MIL: the Monet Interface Language (paper section 4.2).

A :class:`MILProgram` is a straight-line sequence of assignments; each
assignment applies one BAT-algebra primitive to variables and/or
catalog BATs.  The MOA rewriter emits MIL programs, and the
:class:`MILInterpreter` executes them against a
:class:`~repro.monet.kernel.MonetKernel`, recording a per-statement
trace (elapsed milliseconds, simulated page faults, result size) in the
format of the paper's Figure 10.
"""

import time

from ..errors import MILError
from .operators import (aggregate_all, antijoin, difference, fill_zero,
                        group1, group2,
                        ident, intersection, join, kdiff, mark, multiplex,
                        number, pairjoin, select_eq, select_range, semijoin,
                        set_aggregate, slice_bunches, sort_positions,
                        sort_tail, union, unique)
from .buffer import get_manager


class Var:
    """A reference to a MIL variable or catalog BAT, by name."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return hash(("Var", self.name))


class MILStmt:
    """``target := op(args...)``; ``fn`` names the multiplexed or
    aggregated function for ``multiplex``/``aggr`` statements."""

    __slots__ = ("target", "op", "args", "fn", "comment")

    def __init__(self, target, op, args, fn=None, comment=None):
        self.target = target
        self.op = op
        self.args = list(args)
        self.fn = fn
        self.comment = comment

    def referenced_vars(self):
        """Names of the :class:`Var` references this statement reads
        (variables *or* catalog BATs — the resolver decides which)."""
        return [arg.name for arg in self.args if isinstance(arg, Var)]

    def render(self):
        """MIL-style text, e.g. ``years := [year](join(a, b))``."""
        rendered_args = ", ".join(_render_arg(a) for a in self.args)
        if self.op == "multiplex":
            call = "[%s](%s)" % (self.fn, rendered_args)
        elif self.op == "aggr":
            call = "{%s}(%s)" % (self.fn, rendered_args)
        elif self.op == "aggr_all":
            call = "%s(%s)" % (self.fn, rendered_args)
        else:
            call = "%s(%s)" % (self.op, rendered_args)
        text = "%s := %s" % (self.target, call)
        if self.comment:
            text += "  # " + self.comment
        return text

    def __repr__(self):
        return "MILStmt(%s)" % self.render()


def _render_arg(arg):
    if isinstance(arg, Var):
        return arg.name
    if isinstance(arg, str):
        return '"%s"' % arg
    if isinstance(arg, bool):
        return "true" if arg else "false"
    if arg is None:
        return "nil"
    return repr(arg)


class MILProgram:
    """A straight-line MIL program with a tiny emit API."""

    def __init__(self):
        self.stmts = []
        self._counter = 0

    def fresh(self, hint="t"):
        """A fresh variable name."""
        self._counter += 1
        return "%s%d" % (hint, self._counter)

    def emit(self, op, args, fn=None, target=None, hint="t", comment=None):
        """Append a statement; returns the target :class:`Var`."""
        target = target or self.fresh(hint)
        self.stmts.append(MILStmt(target, op, args, fn=fn, comment=comment))
        return Var(target)

    def render(self):
        return "\n".join(stmt.render() for stmt in self.stmts)

    def defined_vars(self):
        """Every variable name the program assigns, in order."""
        seen = set()
        names = []
        for stmt in self.stmts:
            if stmt.target not in seen:
                seen.add(stmt.target)
                names.append(stmt.target)
        return names

    def __len__(self):
        return len(self.stmts)

    def __iter__(self):
        return iter(self.stmts)


def partition_independent(program):
    """Split a straight-line MIL program into independent subprograms.

    Two statements belong to the same partition when they are connected
    through the def-use graph: one reads a variable the other defined,
    or both (re)define the same variable.  References that no statement
    defines resolve to catalog BATs — the catalog is read-only during
    execution, so sharing a base BAT does **not** connect statements.
    Each partition preserves original statement order, so executing
    every partition (in any order, on any process) and merging their
    environments is equivalent to the serial run.  This is the unit the
    multi-process dispatcher (:mod:`repro.monet.multiproc`) fans out.

    Returns a list of :class:`MILProgram`; concatenating them in
    partition order yields a permutation of the input statements that
    is dependency-equivalent to the original.
    """
    stmts = list(program)
    parent = list(range(len(stmts)))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i, j):
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[max(ri, rj)] = min(ri, rj)

    def_site = {}
    for index, stmt in enumerate(stmts):
        for name in stmt.referenced_vars():
            if name in def_site:                # read-after-write
                union(index, def_site[name])
        if stmt.target in def_site:             # write-after-write
            union(index, def_site[stmt.target])
        def_site[stmt.target] = index
    groups = {}
    order = []
    for index in range(len(stmts)):
        root = find(index)
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(index)
    parts = []
    for root in order:
        part = MILProgram()
        for index in groups[root]:
            part.stmts.append(stmts[index])
        parts.append(part)
    return parts


class TraceRow:
    """One executed statement: text, elapsed ms, faults, result size."""

    __slots__ = ("text", "elapsed_ms", "faults", "size")

    def __init__(self, text, elapsed_ms, faults, size):
        self.text = text
        self.elapsed_ms = elapsed_ms
        self.faults = faults
        self.size = size


class MILTrace:
    """Execution trace in the shape of the paper's Figure 10."""

    def __init__(self, rows):
        self.rows = rows

    @property
    def total_ms(self):
        return sum(row.elapsed_ms for row in self.rows)

    @property
    def total_faults(self):
        return sum(row.faults for row in self.rows)

    def format_table(self):
        lines = ["%9s %7s %8s   %s" % ("elapsed", "faults", "size",
                                       "MIL statement"),
                 "%9s %7s %8s" % ("ms", "", "BUNs")]
        for row in self.rows:
            lines.append("%9.2f %7d %8s   %s"
                         % (row.elapsed_ms, row.faults,
                            "-" if row.size is None else str(row.size),
                            row.text))
        lines.append("%9.2f %7d            (total)"
                     % (self.total_ms, self.total_faults))
        return "\n".join(lines)


class MILInterpreter:
    """Executes MIL programs against a kernel catalog."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.env = {}

    def resolve(self, ref):
        """A variable from the environment or the kernel catalog."""
        if isinstance(ref, Var):
            if ref.name in self.env:
                return self.env[ref.name]
            if ref.name in self.kernel:
                return self.kernel.get(ref.name)
            raise MILError("unbound MIL variable %r" % ref.name)
        return ref

    def run(self, program, trace=False):
        """Execute; returns a :class:`MILTrace` when tracing."""
        rows = []
        manager = get_manager()
        for stmt in program:
            args = [self.resolve(a) for a in stmt.args]
            handler = _OPS.get(stmt.op)
            if handler is None:
                raise MILError("unknown MIL op %r" % stmt.op)
            faults_before = manager.faults
            started = time.perf_counter()
            try:
                result = handler(stmt, args)
            except Exception as exc:
                raise MILError("MIL statement failed: %s (%s)"
                               % (stmt.render(), exc)) from exc
            elapsed = (time.perf_counter() - started) * 1000.0
            self.env[stmt.target] = result
            if trace:
                size = len(result) if hasattr(result, "__len__") else None
                rows.append(TraceRow(stmt.render(), elapsed,
                                     manager.faults - faults_before, size))
        return MILTrace(rows)

    def value(self, name):
        """Fetch a result variable after a run."""
        if name not in self.env:
            raise MILError("no MIL variable %r after execution" % name)
        return self.env[name]


# ----------------------------------------------------------------------
# op table
# ----------------------------------------------------------------------
def _op_select(stmt, args):
    if len(args) == 2:
        return select_eq(args[0], args[1], name=stmt.target)
    if len(args) == 3:
        return select_range(args[0], args[1], args[2], name=stmt.target)
    if len(args) == 5:
        return select_range(args[0], args[1], args[2], name=stmt.target,
                            low_inclusive=args[3], high_inclusive=args[4])
    raise MILError("select expects 2, 3 or 5 arguments")


def _op_group(stmt, args):
    if len(args) == 1:
        return group1(args[0], name=stmt.target)
    if len(args) == 2:
        return group2(args[0], args[1], name=stmt.target)
    raise MILError("group expects 1 or 2 arguments")


def _op_sortby(stmt, args):
    """sortby(carrier, key1, desc1, key2, desc2, ...) — reorder the
    carrier BAT by the tail values of synced key BATs."""
    carrier = args[0]
    columns = []
    descending = []
    rest = args[1:]
    if len(rest) % 2:
        raise MILError("sortby expects (key, desc) pairs")
    for i in range(0, len(rest), 2):
        key_bat, desc = rest[i], rest[i + 1]
        if len(key_bat) != len(carrier):
            raise MILError("sortby key not aligned with carrier")
        columns.append(key_bat.tail)
        descending.append(bool(desc))
    order = sort_positions(columns, descending)
    return carrier.take(order, name=stmt.target)


_OPS = {
    "select": _op_select,
    "join": lambda s, a: join(a[0], a[1], name=s.target),
    "semijoin": lambda s, a: semijoin(a[0], a[1], name=s.target),
    "antijoin": lambda s, a: antijoin(a[0], a[1], name=s.target),
    "kdiff": lambda s, a: kdiff(a[0], a[1], name=s.target),
    "mirror": lambda s, a: a[0].mirror(),
    "ident": lambda s, a: ident(a[0], name=s.target),
    "unique": lambda s, a: unique(a[0], name=s.target),
    "group": _op_group,
    "multiplex": lambda s, a: multiplex(s.fn, *a, name=s.target),
    "aggr": lambda s, a: set_aggregate(s.fn, a[0], name=s.target),
    "fillzero": lambda s, a: fill_zero(a[0], a[1], name=s.target),
    "aggr_all": lambda s, a: aggregate_all(s.fn, a[0]),
    "mark": lambda s, a: mark(a[0], a[1] if len(a) > 1 else 0,
                              name=s.target),
    "number": lambda s, a: number(a[0], a[1] if len(a) > 1 else 0,
                                  name=s.target),
    "pairjoin": lambda s, a: pairjoin(a, name=s.target),
    "sort": lambda s, a: sort_tail(a[0], name=s.target),
    "sortby": _op_sortby,
    "slice": lambda s, a: slice_bunches(a[0], a[1], a[2], name=s.target),
    "union": lambda s, a: union(a[0], a[1], name=s.target),
    "difference": lambda s, a: difference(a[0], a[1], name=s.target),
    "intersection": lambda s, a: intersection(a[0], a[1], name=s.target),
}
