"""Multi-process query execution over a shared mmap catalog.

The paper's flat BAT layout pays off when independent consumers share
it zero-copy; PR 2 made a saved database a directory of raw heap files
behind a manifest, and this module turns that directory into a live,
concurrently-readable store.  A :class:`MultiprocExecutor` owns a pool
of **worker processes**; each worker

* ``MonetKernel.open``/``open_tpcd``-s the *same* ``db_dir`` itself —
  the heap files arrive as ``np.memmap`` views, so the page cache is
  shared between every worker and nothing is ever copied through a
  pipe at load time (no dbgen, no bulk load),
* pins the catalog **generation** the parent observed
  (``expected_generation``), so a save racing the fan-out surfaces as
  a typed :class:`~repro.errors.CatalogChangedError` instead of
  workers silently serving different snapshots,
* installs its own per-process
  :class:`~repro.monet.buffer.BufferManager`, so simulated fault
  accounting stays per-worker and is shipped back with each result.

Tasks are whole TPC-D queries (:meth:`MultiprocExecutor.run_queries`)
or MIL programs (:meth:`MultiprocExecutor.run_programs`); a straight-
line program can additionally be split into dependency-independent
partitions (:func:`repro.monet.mil.partition_independent`) and fanned
statement-group-wise (:meth:`MultiprocExecutor.run_partitioned`).

Result shipping
---------------

Every task result is reduced to a canonical picklable form
(:func:`ship_value`) and fingerprinted with **sha1**
(:func:`result_checksum`) *inside the worker*.  The payload then ships
either inline through the worker pipe (``ship="inline"``, the default)
or as a per-worker result file (``ship="file"``) that the parent loads
and re-verifies against the shipped checksum.  The checksum is the
contract the benchmarks and CI assert: a multi-process run must be
checksum-identical to the serial execution of the same queries.

Warm pool
---------

The executor manages its worker processes directly (one duplex pipe +
one parent-side pump thread per worker) instead of delegating to
``multiprocessing.Pool``.  That buys the serving layer
(:mod:`repro.server`) three things a ``Pool`` cannot provide:

* **warm residency** — workers stay alive between calls with their
  catalog mapped, so a query never pays a reopen;
* **asynchronous admission** — :meth:`MultiprocExecutor.submit`
  returns a :class:`PendingTask` immediately, with an optional
  per-task timeout that *kills and respawns* the worker running an
  overdue task (:class:`~repro.errors.QueryTimeoutError`);
* **crash isolation** — a worker that dies mid-task surfaces as a
  typed :class:`~repro.errors.WorkerCrashedError` on that task alone
  and is respawned; a worker that dies while idle is replaced
  transparently (the task that found it dead never started, so it is
  retried on the replacement).  Either way the pool keeps serving.

Task kinds beyond the built-in ``query``/``mil`` are pluggable:
:func:`register_task_kind` adds a handler, and ``task_modules`` names
modules the workers import at start-up so registrations exist in every
process under both ``fork`` and ``spawn`` (the server registers its
plan-cached ``moa`` kind this way, see :mod:`repro.server.tasks`).
"""

import hashlib
import multiprocessing
import os
import pickle
import threading
import time
from collections import deque

import numpy as np

from .. import faults
from ..errors import MILError, QueryTimeoutError, WorkerCrashedError
from .buffer import BufferManager, BufferStats, set_manager
from .mil import MILInterpreter, partition_independent

__all__ = [
    "MultiprocExecutor", "PendingTask", "TaskOutcome", "WorkerContext",
    "default_start_method", "register_task_kind", "result_checksum",
    "run_program_serial", "run_queries_multiproc", "ship_value",
]

DEFAULT_PROCS = 2

#: Seconds between liveness/timeout checks while a task is in flight.
_POLL_INTERVAL = 0.05

#: Chaos injection points of the worker loop (fired *inside* worker
#: processes; ship a plan via ``MultiprocExecutor(fault_plan=...)``).
#: ``crash`` at ``start``/``mid`` surfaces as WorkerCrashedError on
#: the task; after ``post_result`` the parent already has the outcome
#: and the idle death is retried transparently; ``delay`` at ``mid``
#: drives the per-task timeout kill.  ``raise`` anywhere ships a typed
#: InjectedFaultError back like any task failure.
faults.declare(
    "multiproc.task.start", "multiproc.task.mid",
    "multiproc.task.post_result",
)


def default_start_method():
    """``fork`` where available (cheap: workers inherit the imported
    interpreter), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ----------------------------------------------------------------------
# canonical result form + checksums
# ----------------------------------------------------------------------
def ship_value(value):
    """A picklable canonical form of one MIL/query result.

    BATs become ``{"kind": "bat", "head": array, "tail": array}`` of
    their logical values (materialised — the worker's memmaps never
    cross the process boundary); everything else (scalars, ``None``,
    materialised row lists) ships as ``{"kind": "value", ...}``.
    """
    if hasattr(value, "head") and hasattr(value, "tail"):
        return {"kind": "bat",
                "head": np.asarray(value.head.logical()),
                "tail": np.asarray(value.tail.logical())}
    return {"kind": "value", "value": value}


def result_checksum(value):
    """sha1 hex digest of a result under a canonical encoding.

    Stable across processes for everything query execution produces:
    ``None``, bools, ints, exact floats (``float.hex``), strings,
    numpy arrays (dtype + raw bytes; object arrays element-wise),
    lists/tuples/dicts, and the MOA value types (``Row`` via its
    field names + values, ``Ref`` via class name + oid).
    """
    digest = hashlib.sha1()
    _feed(digest, value)
    return digest.hexdigest()


def _feed(digest, value):
    update = digest.update
    if value is None:
        update(b"N;")
    elif isinstance(value, bool):
        update(b"B%d;" % value)
    elif isinstance(value, (int, np.integer)):
        update(b"I" + str(int(value)).encode() + b";")
    elif isinstance(value, (float, np.floating)):
        update(b"F" + float(value).hex().encode() + b";")
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        update(b"S%d:" % len(encoded))
        update(encoded)
    elif isinstance(value, bytes):
        update(b"Y%d:" % len(value))
        update(value)
    elif isinstance(value, np.ndarray):
        if value.dtype == object:
            update(b"O%d[" % len(value))
            for item in value.tolist():
                _feed(digest, item)
            update(b"]")
        else:
            update(b"A" + value.dtype.str.encode()
                   + str(value.shape).encode() + b":")
            update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        update(b"L%d[" % len(value))
        for item in value:
            _feed(digest, item)
        update(b"]")
    elif isinstance(value, dict):
        update(b"D%d{" % len(value))
        for key in sorted(value):
            _feed(digest, key)
            _feed(digest, value[key])
        update(b"}")
    elif hasattr(value, "names") and hasattr(value, "values"):
        # repro.moa.values.Row (duck-typed: no moa import from monet)
        update(b"R[")
        _feed(digest, list(value.names))
        _feed(digest, list(value.values))
        update(b"]")
    elif hasattr(value, "class_name") and hasattr(value, "oid"):
        # repro.moa.values.Ref
        update(b"G" + value.class_name.encode("utf-8")
               + b":" + str(int(value.oid)).encode() + b";")
    else:
        raise TypeError("cannot checksum result value of type %s"
                        % type(value).__name__)


# ----------------------------------------------------------------------
# task outcome
# ----------------------------------------------------------------------
class TaskOutcome:
    """One executed task, shipped back from a worker.

    ``payload`` is ``("inline", canonical_value)`` or ``("file",
    path)`` — use :meth:`value` on the parent side, which loads and
    re-verifies file payloads against ``checksum``.
    """

    __slots__ = ("key", "checksum", "payload", "elapsed_ms", "stats",
                 "generation", "pid", "extra")

    def __init__(self, key, checksum, payload, elapsed_ms, stats,
                 generation, pid, extra=None):
        self.key = key
        self.checksum = checksum
        self.payload = payload
        self.elapsed_ms = elapsed_ms
        #: per-task BufferStats of the worker's private manager
        self.stats = stats
        self.generation = generation
        self.pid = pid
        #: handler-specific metadata (e.g. the server's ``moa`` kind
        #: ships ``plan_cached`` + cumulative plan-cache stats here)
        self.extra = extra

    def value(self, verify=True):
        """The shipped result (loading the result file when needed)."""
        mode, body = self.payload
        if mode == "inline":
            return body
        with open(body, "rb") as handle:
            loaded = pickle.load(handle)
        if verify and result_checksum(loaded) != self.checksum:
            raise MILError(
                "result file %s does not match its shipped checksum"
                % body)
        return loaded

    def __repr__(self):
        return ("TaskOutcome(%r, %.2fms, sha1=%s, gen=%s, pid=%d)"
                % (self.key, self.elapsed_ms, self.checksum[:10],
                   self.generation, self.pid))


# ----------------------------------------------------------------------
# task-kind registry
# ----------------------------------------------------------------------
_TASK_KINDS = {}


def register_task_kind(kind, run, warmup=None):
    """Register a task handler executable by pool workers.

    ``run(ctx, task)`` receives a :class:`WorkerContext` and the raw
    task tuple and returns ``(canonical_value, extra)`` where
    ``canonical_value`` is the :func:`ship_value`-style payload to
    checksum and ship, and ``extra`` is an optional picklable metadata
    dict for :attr:`TaskOutcome.extra`.  ``warmup(ctx, task)`` runs
    *before* the task timer — resolve catalogs there so the first task
    on a worker pays the (milliseconds-scale) mmap open, not the query.

    Handlers must live in importable modules: pass the module name via
    ``MultiprocExecutor(task_modules=...)`` so every worker process
    imports (and thereby registers) it under fork *and* spawn.
    """
    _TASK_KINDS[kind] = (run, warmup)


# ----------------------------------------------------------------------
# worker side (module-level: must be picklable by reference)
# ----------------------------------------------------------------------
_STATE = {}


class WorkerContext:
    """What a task handler may touch inside a worker process."""

    __slots__ = ()

    @property
    def generation(self):
        """The catalog generation this worker is pinned to."""
        return _STATE["generation"]

    @property
    def options(self):
        """The executor's ``worker_options`` dict (read-only use)."""
        return _STATE["options"]

    @property
    def state(self):
        """A per-worker scratch dict for handler-owned caches."""
        return _STATE.setdefault("handler_state", {})

    def kernel(self):
        """The worker's :class:`MonetKernel`, opened once and kept."""
        return _worker_kernel()

    def db(self):
        """The worker's TPC-D :class:`MOADatabase`, opened once."""
        return _worker_db()


def _worker_init(db_dir, expected_generation, page_size, ship,
                 result_dir, lock_timeout, task_modules=(),
                 worker_options=None, fault_plan=None):
    import importlib

    manager = BufferManager(page_size=page_size)
    set_manager(manager)
    # the executor's fault plan rides the init args (picklable), so
    # injection works under spawn too; None = chaos layer off
    faults.set_plan(fault_plan)
    _STATE.update(db_dir=db_dir, generation=expected_generation,
                  manager=manager, ship=ship, result_dir=result_dir,
                  lock_timeout=lock_timeout, kernel=None, db=None,
                  seq=0, options=dict(worker_options or {}))
    for module in task_modules:
        # registrations must exist in every process: under spawn the
        # child starts from a fresh interpreter, so importing here is
        # what makes register_task_kind calls take effect fleet-wide
        importlib.import_module(module)


def _worker_kernel():
    if _STATE.get("kernel") is None:
        if _STATE.get("db") is not None:
            # a mixed workload reuses the query path's open kernel
            # instead of mapping every heap file a second time
            _STATE["kernel"] = _STATE["db"].kernel
        else:
            from .kernel import MonetKernel
            _STATE["kernel"] = MonetKernel.open(
                _STATE["db_dir"],
                expected_generation=_STATE["generation"],
                lock_timeout=_STATE["lock_timeout"])
    return _STATE["kernel"]


def _worker_db():
    if _STATE.get("db") is None:
        from ..tpcd.loader import open_tpcd
        # a mixed workload wraps the MIL path's open kernel instead
        # of mapping the whole catalog a second time (and vice versa:
        # _worker_kernel reuses this db's kernel)
        db, _report = open_tpcd(
            _STATE["db_dir"],
            expected_generation=_STATE["generation"],
            lock_timeout=_STATE["lock_timeout"],
            kernel=_STATE.get("kernel"))
        _STATE["db"] = db
    return _STATE["db"]


def _task_query_warmup(ctx, task):
    ctx.db()


def _task_query(ctx, task):
    from ..tpcd.queries import QUERIES
    _kind, _key, number, overrides = task
    return ship_value(QUERIES[number].run(ctx.db(), overrides)), None


def _task_mil_warmup(ctx, task):
    ctx.kernel()


def _task_mil(ctx, task):
    _kind, _key, program, fetch = task
    interpreter = MILInterpreter(ctx.kernel())
    interpreter.run(program)
    return {name: ship_value(interpreter.value(name))
            for name in fetch}, None


register_task_kind("query", _task_query, warmup=_task_query_warmup)
register_task_kind("mil", _task_mil, warmup=_task_mil_warmup)


def _run_task(task):
    kind, key = task[0], task[1]
    entry = _TASK_KINDS.get(kind)
    if entry is None:
        raise MILError("unknown multiproc task kind %r" % (kind,))
    run, warmup = entry
    ctx = WorkerContext()
    if warmup is not None:
        # resolve the catalog before the timer: the first task on each
        # worker pays the (milliseconds-scale) mmap open, not the query
        warmup(ctx, task)
    manager = _STATE["manager"]
    manager.reset_counters()
    started = time.perf_counter()
    canonical, extra = run(ctx, task)
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    checksum = result_checksum(canonical)
    if _STATE["ship"] == "file":
        # pid + per-process sequence number: unique across tasks and
        # across repeated run_* calls on one executor, so a retained
        # TaskOutcome's file is never overwritten by a later round
        _STATE["seq"] += 1
        path = os.path.join(_STATE["result_dir"],
                            "result-%s-%d-%d.pkl"
                            % (key, os.getpid(), _STATE["seq"]))
        with open(path, "wb") as handle:
            pickle.dump(canonical, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        payload = ("file", path)
    else:
        payload = ("inline", canonical)
    opened = _STATE["db"].kernel if _STATE.get("db") is not None \
        else _STATE["kernel"]
    generation = opened.generation if opened is not None \
        else _STATE["generation"]
    return TaskOutcome(key, checksum, payload, elapsed_ms,
                       manager.snapshot(), generation,
                       os.getpid(), extra=extra)


def _worker_main(parent_conn, conn, init_args):
    """The worker process loop: recv task, execute, send outcome.

    Exceptions are shipped back per task — the worker survives a
    failing task.  A ``None`` task is the shutdown sentinel.  The
    parent's copy of its own pipe end is closed first so worker death
    is observable as EOF/EPIPE on the parent side.
    """
    if parent_conn is not None:
        parent_conn.close()
    _worker_init(*init_args)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break                      # parent died or terminated us
        if task is None:
            break
        try:
            faults.fire("multiproc.task.start")
            message = ("ok", _run_task(task))
            # between execution and the reply: a crash here loses a
            # finished result (the parent must treat it as crashed),
            # a delay here overruns the per-task timeout
            faults.fire("multiproc.task.mid")
        except BaseException as exc:       # noqa: BLE001 — shipped
            message = ("err", exc)
        try:
            conn.send(message)
            faults.fire("multiproc.task.post_result")
        except (pickle.PicklingError, TypeError, AttributeError):
            # an unpicklable result/exception must not kill the
            # worker: degrade to a typed, always-picklable error
            conn.send(("err", MILError(
                "worker result for task %r could not be shipped: %r"
                % (task[1], message[1]))))
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class PendingTask:
    """A task accepted by :meth:`MultiprocExecutor.submit`.

    ``dispatched`` is set once the task has been written to a worker
    pipe (used to distinguish never-started from possibly-half-run
    when a worker dies).  :meth:`result` blocks for the outcome and
    re-raises the worker's exception, a
    :class:`~repro.errors.WorkerCrashedError`, or a
    :class:`~repro.errors.QueryTimeoutError`.
    """

    __slots__ = ("task", "timeout", "dispatched", "_done", "_outcome",
                 "_error", "pid")

    def __init__(self, task, timeout=None):
        self.task = task
        self.timeout = timeout
        self.dispatched = threading.Event()
        self._done = threading.Event()
        self._outcome = None
        self._error = None
        #: pid of the worker that ran (or lost) the task, once known
        self.pid = None

    def done(self):
        return self._done.is_set()

    def _fulfill(self, outcome):
        self._outcome = outcome
        self._done.set()

    def _fail(self, error):
        self._error = error
        self._done.set()

    def result(self, timeout=None):
        """Block for the :class:`TaskOutcome` (raises on failure)."""
        if not self._done.wait(timeout):
            raise QueryTimeoutError(
                "no outcome for task %r within %.3fs"
                % (self.task[1], timeout))
        if self._error is not None:
            raise self._error
        return self._outcome

    def __repr__(self):
        state = "done" if self.done() else (
            "running" if self.dispatched.is_set() else "queued")
        return "PendingTask(%r, %s)" % (self.task[1], state)


class _WorkerHandle:
    """One worker process + the parent's end of its pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn

    @property
    def pid(self):
        return self.process.pid

    def kill(self):
        """Hard-stop the process (timeout reclaim / terminate)."""
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass
        self.process.join()
        self.conn.close()

    def shutdown(self):
        """Graceful stop: sentinel, then join."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError, ValueError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.conn.close()


class MultiprocExecutor:
    """A warm pool of worker processes sharing one saved catalog.

    Parameters
    ----------
    db_dir:
        The saved database directory every worker reopens via mmap.
    procs:
        Worker process count.
    expected_generation:
        Catalog generation the workers must observe; defaults to the
        generation on disk when the executor is created, so a save
        racing the fan-out fails loudly instead of splitting the fleet
        across snapshots.
    ship:
        ``"inline"`` returns result payloads through the worker pipe;
        ``"file"`` writes one pickle per task under ``result_dir``
        (default ``<db_dir>/_results``) and ships only the path — the
        parent re-verifies the file against the sha1 on load.  File
        names are unique per task, and the caller owns the directory's
        lifecycle (nothing is deleted automatically).
    start_method:
        ``fork``/``spawn``/``forkserver``; default picks ``fork``
        where the platform offers it.
    task_modules:
        Module names every worker imports at start-up, so their
        :func:`register_task_kind` calls exist in each process.
    worker_options:
        Picklable dict exposed to task handlers as
        :attr:`WorkerContext.options` (e.g. plan-cache sizing).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` installed in every
        worker process (chaos testing); ``None`` — the default — keeps
        the injection layer off.
    """

    def __init__(self, db_dir, procs=DEFAULT_PROCS, start_method=None,
                 expected_generation=None, page_size=4096,
                 ship="inline", result_dir=None, lock_timeout=None,
                 task_modules=(), worker_options=None,
                 fault_plan=None):
        if ship not in ("inline", "file"):
            raise ValueError("ship must be 'inline' or 'file'")
        from .storage import catalog_generation
        self.db_dir = os.fspath(db_dir)
        self.procs = max(1, int(procs))
        if expected_generation is None:
            expected_generation = catalog_generation(self.db_dir)
        self.generation = expected_generation
        self.ship = ship
        if ship == "file":
            result_dir = os.fspath(
                result_dir if result_dir is not None
                else os.path.join(self.db_dir, "_results"))
            os.makedirs(result_dir, exist_ok=True)
        self.result_dir = result_dir
        method = start_method or default_start_method()
        if method == "fork":
            # join any thread pool the chunked-parallel layer cached:
            # forking with live worker threads can deadlock children
            # on lock state copied mid-hold
            from . import parallel
            parallel.shutdown_pools()
        self._context = multiprocessing.get_context(method)
        self._init_args = (self.db_dir, self.generation, page_size,
                           ship, result_dir, lock_timeout,
                           tuple(task_modules),
                           dict(worker_options or {}), fault_plan)
        #: tasks crashed + workers respawned since start (observability)
        self.crashes = 0
        self.timeouts = 0
        self.respawns = 0
        self._cv = threading.Condition()
        self._queue = deque()
        self._closing = False
        self._terminated = False
        self._workers = []
        self._pumps = []
        for slot in range(self.procs):
            self._workers.append(self._spawn())
            pump = threading.Thread(target=self._pump, args=(slot,),
                                    name="mp-pump-%d" % slot,
                                    daemon=True)
            self._pumps.append(pump)
            pump.start()

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self):
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(parent_conn, child_conn, self._init_args),
            daemon=True)
        process.start()
        # the worker closes its inherited copy of parent_conn; closing
        # child_conn here leaves exactly one owner per pipe end, so a
        # dead worker is observable as EOF/EPIPE immediately
        child_conn.close()
        return _WorkerHandle(process, parent_conn)

    def _respawn(self, slot):
        if self._terminated:
            return
        self._workers[slot] = self._spawn()
        self.respawns += 1

    def worker_pids(self):
        """Current pids of the live workers."""
        return [worker.pid for worker in self._workers]

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def submit(self, task, timeout=None):
        """Queue one raw task tuple; returns a :class:`PendingTask`.

        ``timeout`` (seconds) starts when the task is handed to a
        worker; an overdue worker is killed and respawned and the task
        fails with :class:`~repro.errors.QueryTimeoutError`.
        """
        pending = PendingTask(task, timeout=timeout)
        with self._cv:
            if self._closing:
                raise MILError("executor is shut down")
            self._queue.append(pending)
            self._cv.notify()
        return pending

    def pending_count(self):
        """Tasks queued but not yet handed to a worker."""
        with self._cv:
            return len(self._queue)

    def _next_task(self):
        with self._cv:
            while not self._queue and not self._closing:
                self._cv.wait()
            if self._queue:
                return self._queue.popleft()
            return None                              # closing + drained

    def _pump(self, slot):
        while True:
            pending = self._next_task()
            if pending is None:
                break
            try:
                self._dispatch(slot, pending)
            except BaseException as exc:   # noqa: BLE001 — last line
                # of defense: a pump that dies strands its slot and
                # leaves the task's waiter blocked forever, so any
                # unexpected dispatch failure resolves the task and
                # recycles the worker instead
                if not pending.done():
                    pending._fail(WorkerCrashedError(
                        "dispatcher failure for task %r: %r"
                        % (pending.task[1], exc)))
                self._workers[slot].kill()
                self._respawn(slot)
        if not self._terminated:
            self._workers[slot].shutdown()

    def _dispatch(self, slot, pending, retried=False):
        worker = self._workers[slot]
        try:
            if not worker.process.is_alive():
                # noticed the death before handing the task over:
                # identical to the send-failure path below
                raise BrokenPipeError("worker died while idle")
            worker.conn.send(pending.task)
        except (BrokenPipeError, OSError, ValueError):
            # the worker died while idle: the task never started, so
            # replace the worker and retry transparently (once — a
            # second failure means spawning itself is broken)
            worker.kill()
            self._respawn(slot)
            if self._terminated:
                pending._fail(WorkerCrashedError(
                    "executor terminated before task %r ran"
                    % (pending.task[1],)))
                return
            if retried:
                pending._fail(WorkerCrashedError(
                    "could not hand task %r to a worker (respawn "
                    "failed to produce a usable process)"
                    % (pending.task[1],)))
                return
            self._dispatch(slot, pending, retried=True)
            return
        pending.pid = worker.pid
        pending.dispatched.set()
        deadline = None if pending.timeout is None \
            else time.monotonic() + pending.timeout
        while True:
            wait = _POLL_INTERVAL if deadline is None else max(
                0.0, min(_POLL_INTERVAL, deadline - time.monotonic()))
            try:
                ready = worker.conn.poll(wait)
            except (OSError, ValueError):
                ready = False
            if ready:
                try:
                    status, body = worker.conn.recv()
                except Exception:      # noqa: BLE001 — see below
                    # EOF/EPIPE (worker died) but also any failure to
                    # *reconstruct* the shipped message (e.g. a custom
                    # exception whose __init__ rejects pickle's
                    # re-call): the message is lost either way, so
                    # treat the worker as crashed rather than leave
                    # the task unfulfilled and this pump dead
                    self._on_crash(slot, worker, pending)
                    return
                if status == "ok":
                    pending._fulfill(body)
                else:
                    pending._fail(body)
                return
            if not worker.process.is_alive():
                # drain a result that raced the exit before declaring
                # the task lost
                try:
                    if worker.conn.poll(0):
                        status, body = worker.conn.recv()
                        if status == "ok":
                            pending._fulfill(body)
                        else:
                            pending._fail(body)
                        self._on_crash(slot, worker, None)
                        return
                except (EOFError, OSError):
                    pass
                self._on_crash(slot, worker, pending)
                return
            if deadline is not None and time.monotonic() > deadline:
                # reclaim the slot: kill the overdue worker outright
                # (it may be wedged in a kernel call) and respawn
                self.timeouts += 1
                worker.kill()
                self._respawn(slot)
                pending._fail(QueryTimeoutError(
                    "task %r exceeded its %.3fs timeout (worker pid "
                    "%s killed and respawned)"
                    % (pending.task[1], pending.timeout, pending.pid)))
                return

    def _on_crash(self, slot, worker, pending):
        worker.kill()
        self._respawn(slot)
        if pending is not None:
            self.crashes += 1
            pending._fail(WorkerCrashedError(
                "worker pid %s died while running task %r (respawned; "
                "resubmit the task)" % (pending.pid, pending.task[1])))

    # ------------------------------------------------------------------
    def map_tasks(self, tasks, timeout=None):
        """Execute raw task tuples; returns outcomes in task order."""
        # greedy per-task dispatch (the Pool-era chunksize=1): tasks
        # are coarse (whole queries), so load balance beats batching
        pendings = [self.submit(task, timeout=timeout)
                    for task in tasks]
        return [pending.result() for pending in pendings]

    def run_queries(self, numbers=None, overrides=None):
        """Fan TPC-D queries over the workers.

        ``numbers`` defaults to the whole query set; ``overrides`` is
        an optional ``{number: params}`` dict.  Returns ``{number:
        TaskOutcome}``.
        """
        if numbers is None:
            from ..tpcd.queries import QUERIES
            numbers = sorted(QUERIES)
        numbers = list(numbers)       # consumed twice: tasks + zip
        tasks = [("query", "q%d" % number, number,
                  (overrides or {}).get(number)) for number in numbers]
        outcomes = self.map_tasks(tasks)
        return dict(zip(numbers, outcomes))

    def run_programs(self, jobs):
        """Execute whole MIL programs, one per task.

        ``jobs`` is a list of ``(program, fetch_names)`` pairs; each
        worker interprets its program against its own catalog and ships
        ``{name: canonical value}`` for the requested variables.
        Returns outcomes in job order.
        """
        tasks = [("mil", "p%d" % index, program, list(fetch))
                 for index, (program, fetch) in enumerate(jobs)]
        return self.map_tasks(tasks)

    def run_partitioned(self, program, fetch):
        """Split one MIL program into independent partitions and fan
        them out (:func:`repro.monet.mil.partition_independent`).

        Every partition executes — including ones that define no
        fetched variable, keeping error behaviour identical to the
        serial run.  Returns ``(env, outcomes)`` where ``env`` maps
        each fetched variable to its canonical shipped value.
        """
        fetch = list(fetch)
        parts = partition_independent(program)
        jobs = []
        for part in parts:
            defined = set(part.defined_vars())
            jobs.append((part, [name for name in fetch
                                if name in defined]))
        missing = set(fetch) - {name for _part, names in jobs
                                for name in names}
        if missing:
            raise MILError("program never assigns fetched variable(s) "
                           "%s" % sorted(missing))
        outcomes = self.run_programs(jobs)
        env = {}
        for outcome in outcomes:
            env.update(outcome.value())
        return env, outcomes

    # ------------------------------------------------------------------
    @staticmethod
    def merged_stats(outcomes):
        """Fleet-wide BufferStats across an outcome collection."""
        total = BufferStats()
        values = outcomes.values() if isinstance(outcomes, dict) \
            else outcomes
        for outcome in values:
            total.merge(outcome.stats)
        return total

    def close(self):
        """Finish queued work, then stop the workers gracefully."""
        with self._cv:
            self._closing = True
            self._cv.notify_all()
        for pump in self._pumps:
            pump.join()

    def terminate(self):
        """Hard stop: kill workers now, fail anything still queued."""
        with self._cv:
            self._closing = True
            self._terminated = True
            doomed = list(self._queue)
            self._queue.clear()
            self._cv.notify_all()
        for pending in doomed:
            pending._fail(WorkerCrashedError(
                "executor terminated before task %r ran"
                % (pending.task[1],)))
        for worker in self._workers:
            worker.kill()
        for pump in self._pumps:
            pump.join()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, _exc, _tb):
        if exc_type is None:
            self.close()
        else:
            self.terminate()


def run_queries_multiproc(db_dir, numbers=None, procs=DEFAULT_PROCS,
                          **kwargs):
    """One-shot convenience: fan queries over a fresh executor."""
    with MultiprocExecutor(db_dir, procs=procs, **kwargs) as executor:
        return executor.run_queries(numbers)


def run_program_serial(kernel, program, fetch):
    """Serial reference execution of a MIL program.

    Returns ``(env, checksum)`` in the same canonical form the workers
    ship, so callers can diff a serial run against
    :meth:`MultiprocExecutor.run_partitioned` /
    :meth:`~MultiprocExecutor.run_programs` byte for byte.
    """
    interpreter = MILInterpreter(kernel)
    interpreter.run(program)
    env = {name: ship_value(interpreter.value(name)) for name in fetch}
    return env, result_checksum(env)
