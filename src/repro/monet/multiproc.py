"""Multi-process query execution over a shared mmap catalog.

The paper's flat BAT layout pays off when independent consumers share
it zero-copy; PR 2 made a saved database a directory of raw heap files
behind a manifest, and this module turns that directory into a live,
concurrently-readable store.  A :class:`MultiprocExecutor` owns a pool
of **worker processes**; each worker

* ``MonetKernel.open``/``open_tpcd``-s the *same* ``db_dir`` itself —
  the heap files arrive as ``np.memmap`` views, so the page cache is
  shared between every worker and nothing is ever copied through a
  pipe at load time (no dbgen, no bulk load),
* pins the catalog **generation** the parent observed
  (``expected_generation``), so a save racing the fan-out surfaces as
  a typed :class:`~repro.errors.CatalogChangedError` instead of
  workers silently serving different snapshots,
* installs its own per-process
  :class:`~repro.monet.buffer.BufferManager`, so simulated fault
  accounting stays per-worker and is shipped back with each result.

Tasks are whole TPC-D queries (:meth:`MultiprocExecutor.run_queries`)
or MIL programs (:meth:`MultiprocExecutor.run_programs`); a straight-
line program can additionally be split into dependency-independent
partitions (:func:`repro.monet.mil.partition_independent`) and fanned
statement-group-wise (:meth:`MultiprocExecutor.run_partitioned`).

Result shipping
---------------

Every task result is reduced to a canonical picklable form
(:func:`ship_value`) and fingerprinted with **sha1**
(:func:`result_checksum`) *inside the worker*.  The payload then ships
either inline through the pool pipe (``ship="inline"``, the default)
or as a per-worker result file (``ship="file"``) that the parent loads
and re-verifies against the shipped checksum.  The checksum is the
contract the benchmarks and CI assert: a multi-process run must be
checksum-identical to the serial execution of the same queries.
"""

import hashlib
import multiprocessing
import os
import pickle
import time

import numpy as np

from ..errors import MILError
from .buffer import BufferManager, BufferStats, set_manager
from .mil import MILInterpreter, partition_independent

__all__ = [
    "MultiprocExecutor", "TaskOutcome", "default_start_method",
    "result_checksum", "run_program_serial", "run_queries_multiproc",
    "ship_value",
]

DEFAULT_PROCS = 2


def default_start_method():
    """``fork`` where available (cheap: workers inherit the imported
    interpreter), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ----------------------------------------------------------------------
# canonical result form + checksums
# ----------------------------------------------------------------------
def ship_value(value):
    """A picklable canonical form of one MIL/query result.

    BATs become ``{"kind": "bat", "head": array, "tail": array}`` of
    their logical values (materialised — the worker's memmaps never
    cross the process boundary); everything else (scalars, ``None``,
    materialised row lists) ships as ``{"kind": "value", ...}``.
    """
    if hasattr(value, "head") and hasattr(value, "tail"):
        return {"kind": "bat",
                "head": np.asarray(value.head.logical()),
                "tail": np.asarray(value.tail.logical())}
    return {"kind": "value", "value": value}


def result_checksum(value):
    """sha1 hex digest of a result under a canonical encoding.

    Stable across processes for everything query execution produces:
    ``None``, bools, ints, exact floats (``float.hex``), strings,
    numpy arrays (dtype + raw bytes; object arrays element-wise),
    lists/tuples/dicts, and the MOA value types (``Row`` via its
    field names + values, ``Ref`` via class name + oid).
    """
    digest = hashlib.sha1()
    _feed(digest, value)
    return digest.hexdigest()


def _feed(digest, value):
    update = digest.update
    if value is None:
        update(b"N;")
    elif isinstance(value, bool):
        update(b"B%d;" % value)
    elif isinstance(value, (int, np.integer)):
        update(b"I" + str(int(value)).encode() + b";")
    elif isinstance(value, (float, np.floating)):
        update(b"F" + float(value).hex().encode() + b";")
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        update(b"S%d:" % len(encoded))
        update(encoded)
    elif isinstance(value, bytes):
        update(b"Y%d:" % len(value))
        update(value)
    elif isinstance(value, np.ndarray):
        if value.dtype == object:
            update(b"O%d[" % len(value))
            for item in value.tolist():
                _feed(digest, item)
            update(b"]")
        else:
            update(b"A" + value.dtype.str.encode()
                   + str(value.shape).encode() + b":")
            update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        update(b"L%d[" % len(value))
        for item in value:
            _feed(digest, item)
        update(b"]")
    elif isinstance(value, dict):
        update(b"D%d{" % len(value))
        for key in sorted(value):
            _feed(digest, key)
            _feed(digest, value[key])
        update(b"}")
    elif hasattr(value, "names") and hasattr(value, "values"):
        # repro.moa.values.Row (duck-typed: no moa import from monet)
        update(b"R[")
        _feed(digest, list(value.names))
        _feed(digest, list(value.values))
        update(b"]")
    elif hasattr(value, "class_name") and hasattr(value, "oid"):
        # repro.moa.values.Ref
        update(b"G" + value.class_name.encode("utf-8")
               + b":" + str(int(value.oid)).encode() + b";")
    else:
        raise TypeError("cannot checksum result value of type %s"
                        % type(value).__name__)


# ----------------------------------------------------------------------
# task outcome
# ----------------------------------------------------------------------
class TaskOutcome:
    """One executed task, shipped back from a worker.

    ``payload`` is ``("inline", canonical_value)`` or ``("file",
    path)`` — use :meth:`value` on the parent side, which loads and
    re-verifies file payloads against ``checksum``.
    """

    __slots__ = ("key", "checksum", "payload", "elapsed_ms", "stats",
                 "generation", "pid")

    def __init__(self, key, checksum, payload, elapsed_ms, stats,
                 generation, pid):
        self.key = key
        self.checksum = checksum
        self.payload = payload
        self.elapsed_ms = elapsed_ms
        #: per-task BufferStats of the worker's private manager
        self.stats = stats
        self.generation = generation
        self.pid = pid

    def value(self, verify=True):
        """The shipped result (loading the result file when needed)."""
        mode, body = self.payload
        if mode == "inline":
            return body
        with open(body, "rb") as handle:
            loaded = pickle.load(handle)
        if verify and result_checksum(loaded) != self.checksum:
            raise MILError(
                "result file %s does not match its shipped checksum"
                % body)
        return loaded

    def __repr__(self):
        return ("TaskOutcome(%r, %.2fms, sha1=%s, gen=%s, pid=%d)"
                % (self.key, self.elapsed_ms, self.checksum[:10],
                   self.generation, self.pid))


# ----------------------------------------------------------------------
# worker side (module-level: must be picklable by reference)
# ----------------------------------------------------------------------
_STATE = {}


def _worker_init(db_dir, expected_generation, page_size, ship,
                 result_dir, lock_timeout):
    manager = BufferManager(page_size=page_size)
    set_manager(manager)
    _STATE.update(db_dir=db_dir, generation=expected_generation,
                  manager=manager, ship=ship, result_dir=result_dir,
                  lock_timeout=lock_timeout, kernel=None, db=None,
                  seq=0)


def _worker_kernel():
    if _STATE.get("kernel") is None:
        if _STATE.get("db") is not None:
            # a mixed workload reuses the query path's open kernel
            # instead of mapping every heap file a second time
            _STATE["kernel"] = _STATE["db"].kernel
        else:
            from .kernel import MonetKernel
            _STATE["kernel"] = MonetKernel.open(
                _STATE["db_dir"],
                expected_generation=_STATE["generation"],
                lock_timeout=_STATE["lock_timeout"])
    return _STATE["kernel"]


def _worker_db():
    if _STATE.get("db") is None:
        from ..tpcd.loader import open_tpcd
        # a mixed workload wraps the MIL path's open kernel instead
        # of mapping the whole catalog a second time (and vice versa:
        # _worker_kernel reuses this db's kernel)
        db, _report = open_tpcd(
            _STATE["db_dir"],
            expected_generation=_STATE["generation"],
            lock_timeout=_STATE["lock_timeout"],
            kernel=_STATE.get("kernel"))
        _STATE["db"] = db
    return _STATE["db"]


def _run_task(task):
    kind, key = task[0], task[1]
    # resolve the catalog before the timer: the first task on each
    # worker pays the (milliseconds-scale) mmap open, not the query
    if kind == "query":
        db = _worker_db()
    else:
        kernel = _worker_kernel()
    manager = _STATE["manager"]
    manager.reset_counters()
    started = time.perf_counter()
    if kind == "query":
        from ..tpcd.queries import QUERIES
        _kind, _key, number, overrides = task
        result = QUERIES[number].run(db, overrides)
        canonical = ship_value(result)
    elif kind == "mil":
        _kind, _key, program, fetch = task
        interpreter = MILInterpreter(kernel)
        interpreter.run(program)
        canonical = {name: ship_value(interpreter.value(name))
                     for name in fetch}
    else:
        raise MILError("unknown multiproc task kind %r" % (kind,))
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    checksum = result_checksum(canonical)
    if _STATE["ship"] == "file":
        # pid + per-process sequence number: unique across tasks and
        # across repeated run_* calls on one executor, so a retained
        # TaskOutcome's file is never overwritten by a later round
        _STATE["seq"] += 1
        path = os.path.join(_STATE["result_dir"],
                            "result-%s-%d-%d.pkl"
                            % (key, os.getpid(), _STATE["seq"]))
        with open(path, "wb") as handle:
            pickle.dump(canonical, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        payload = ("file", path)
    else:
        payload = ("inline", canonical)
    opened = _STATE["db"].kernel if _STATE.get("db") is not None \
        else _STATE["kernel"]
    return TaskOutcome(key, checksum, payload, elapsed_ms,
                       manager.snapshot(), opened.generation,
                       os.getpid())


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class MultiprocExecutor:
    """A pool of worker processes sharing one saved catalog.

    Parameters
    ----------
    db_dir:
        The saved database directory every worker reopens via mmap.
    procs:
        Worker process count.
    expected_generation:
        Catalog generation the workers must observe; defaults to the
        generation on disk when the executor is created, so a save
        racing the fan-out fails loudly instead of splitting the fleet
        across snapshots.
    ship:
        ``"inline"`` returns result payloads through the pool pipe;
        ``"file"`` writes one pickle per task under ``result_dir``
        (default ``<db_dir>/_results``) and ships only the path — the
        parent re-verifies the file against the sha1 on load.  File
        names are unique per task, and the caller owns the directory's
        lifecycle (nothing is deleted automatically).
    start_method:
        ``fork``/``spawn``/``forkserver``; default picks ``fork``
        where the platform offers it.
    """

    def __init__(self, db_dir, procs=DEFAULT_PROCS, start_method=None,
                 expected_generation=None, page_size=4096,
                 ship="inline", result_dir=None, lock_timeout=None):
        if ship not in ("inline", "file"):
            raise ValueError("ship must be 'inline' or 'file'")
        from .storage import catalog_generation
        self.db_dir = os.fspath(db_dir)
        self.procs = max(1, int(procs))
        if expected_generation is None:
            expected_generation = catalog_generation(self.db_dir)
        self.generation = expected_generation
        self.ship = ship
        if ship == "file":
            result_dir = os.fspath(
                result_dir if result_dir is not None
                else os.path.join(self.db_dir, "_results"))
            os.makedirs(result_dir, exist_ok=True)
        self.result_dir = result_dir
        method = start_method or default_start_method()
        if method == "fork":
            # join any thread pool the chunked-parallel layer cached:
            # forking with live worker threads can deadlock children
            # on lock state copied mid-hold
            from . import parallel
            parallel.shutdown_pools()
        context = multiprocessing.get_context(method)
        self._pool = context.Pool(
            processes=self.procs, initializer=_worker_init,
            initargs=(self.db_dir, self.generation, page_size, ship,
                      result_dir, lock_timeout))

    # ------------------------------------------------------------------
    def map_tasks(self, tasks):
        """Execute raw task tuples; returns outcomes in task order."""
        # chunksize=1: tasks are coarse (whole queries), so greedy
        # per-task dispatch beats pre-chunking for load balance
        return self._pool.map(_run_task, list(tasks), chunksize=1)

    def run_queries(self, numbers=None, overrides=None):
        """Fan TPC-D queries over the workers.

        ``numbers`` defaults to the whole query set; ``overrides`` is
        an optional ``{number: params}`` dict.  Returns ``{number:
        TaskOutcome}``.
        """
        if numbers is None:
            from ..tpcd.queries import QUERIES
            numbers = sorted(QUERIES)
        numbers = list(numbers)       # consumed twice: tasks + zip
        tasks = [("query", "q%d" % number, number,
                  (overrides or {}).get(number)) for number in numbers]
        outcomes = self.map_tasks(tasks)
        return dict(zip(numbers, outcomes))

    def run_programs(self, jobs):
        """Execute whole MIL programs, one per task.

        ``jobs`` is a list of ``(program, fetch_names)`` pairs; each
        worker interprets its program against its own catalog and ships
        ``{name: canonical value}`` for the requested variables.
        Returns outcomes in job order.
        """
        tasks = [("mil", "p%d" % index, program, list(fetch))
                 for index, (program, fetch) in enumerate(jobs)]
        return self.map_tasks(tasks)

    def run_partitioned(self, program, fetch):
        """Split one MIL program into independent partitions and fan
        them out (:func:`repro.monet.mil.partition_independent`).

        Every partition executes — including ones that define no
        fetched variable, keeping error behaviour identical to the
        serial run.  Returns ``(env, outcomes)`` where ``env`` maps
        each fetched variable to its canonical shipped value.
        """
        fetch = list(fetch)
        parts = partition_independent(program)
        jobs = []
        for part in parts:
            defined = set(part.defined_vars())
            jobs.append((part, [name for name in fetch
                                if name in defined]))
        missing = set(fetch) - {name for _part, names in jobs
                                for name in names}
        if missing:
            raise MILError("program never assigns fetched variable(s) "
                           "%s" % sorted(missing))
        outcomes = self.run_programs(jobs)
        env = {}
        for outcome in outcomes:
            env.update(outcome.value())
        return env, outcomes

    # ------------------------------------------------------------------
    @staticmethod
    def merged_stats(outcomes):
        """Fleet-wide BufferStats across an outcome collection."""
        total = BufferStats()
        values = outcomes.values() if isinstance(outcomes, dict) \
            else outcomes
        for outcome in values:
            total.merge(outcome.stats)
        return total

    def close(self):
        self._pool.close()
        self._pool.join()

    def terminate(self):
        self._pool.terminate()
        self._pool.join()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, _exc, _tb):
        if exc_type is None:
            self.close()
        else:
            self.terminate()


def run_queries_multiproc(db_dir, numbers=None, procs=DEFAULT_PROCS,
                          **kwargs):
    """One-shot convenience: fan queries over a fresh executor."""
    with MultiprocExecutor(db_dir, procs=procs, **kwargs) as executor:
        return executor.run_queries(numbers)


def run_program_serial(kernel, program, fetch):
    """Serial reference execution of a MIL program.

    Returns ``(env, checksum)`` in the same canonical form the workers
    ship, so callers can diff a serial run against
    :meth:`MultiprocExecutor.run_partitioned` /
    :meth:`~MultiprocExecutor.run_programs` byte for byte.
    """
    interpreter = MILInterpreter(kernel)
    interpreter.run(program)
    env = {name: ship_value(interpreter.value(name)) for name in fetch}
    return env, result_checksum(env)
