"""The BAT algebra: Monet's execution primitives (paper Figure 4).

This package is the public operator surface of the kernel substrate::

    mirror, select_range, select_eq, join, semijoin, antijoin, unique,
    group1, group2, multiplex, set_aggregate, aggregate_all,
    union, difference, intersection, kdiff, kintersect,
    sort_tail, sort_head, sort_positions, slice_bunches,
    count, fetch, exist, mark, number

Every operator materialises its result and never mutates operands
(section 4.2); property propagation and run-time implementation choice
happen inside each operator (sections 5.1-5.2).
"""

from .aggregate import (AGGREGATES, aggregate_all, fill_zero,
                        set_aggregate)
from .group import group1, group2
from .join import join, join_positions, pairjoin
from .misc import count, exist, fetch, ident, mark, mirror, number
from .multiplex import (function_names, get_function, multiplex,
                        register_function)
from .select import select_eq, select_range
from .semijoin import antijoin, semijoin
from .setops import difference, intersection, kdiff, kintersect, union, unique
from .sort import slice_bunches, sort_head, sort_positions, sort_tail

__all__ = [
    "AGGREGATES", "aggregate_all", "fill_zero", "set_aggregate",
    "group1", "group2",
    "join", "join_positions", "pairjoin",
    "count", "exist", "fetch", "ident", "mark", "mirror", "number",
    "function_names", "get_function", "multiplex", "register_function",
    "select_eq", "select_range",
    "antijoin", "semijoin",
    "difference", "intersection", "kdiff", "kintersect", "union", "unique",
    "slice_bunches", "sort_head", "sort_positions", "sort_tail",
]
