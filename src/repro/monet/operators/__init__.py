"""The BAT algebra: Monet's execution primitives (paper Figure 4).

This package is the public operator surface of the kernel substrate::

    mirror, select_range, select_eq, join, semijoin, antijoin, unique,
    group1, group2, multiplex, set_aggregate, aggregate_all,
    union, difference, intersection, kdiff, kintersect,
    sort_tail, sort_head, sort_positions, slice_bunches,
    count, fetch, exist, mark, number

Every operator materialises its result and never mutates operands
(section 4.2); property propagation and run-time implementation choice
happen inside each operator (sections 5.1-5.2).

Operator implementation notes
-----------------------------

Run-time dispatch (the paper's "multiple implementations for each
algebraic operation", section 5.1) picks the physical algorithm from
operand properties and accelerators; all hot paths then execute as
array kernels from :mod:`repro.monet.vectorized` — no per-BUN Python
loops.  The dispatch table:

===========  =================  ===========================================
operator     implementation     chosen when / runs as
===========  =================  ===========================================
select       binsearch          tail ``ordered``: two ``searchsorted``
                                probes + contiguous slice
select       scan               fallback: one vectorised mask pass
join         fetchjoin          inner head void: positional arithmetic
join         mergejoin          inner head ordered+key, fixed atoms:
                                ``searchsorted`` per outer BUN
join         hashjoin           fallback: MultiMap (argsort +
                                ``searchsorted`` group expand); reuses the
                                BAT's array-backed hash accelerator when
                                present
semijoin     syncsemijoin       operands synced: copy
semijoin     datavectorsemijoin left carries a datavector: cached LOOKUP
semijoin     mergesemijoin      both heads ordered: binary-search mask
semijoin     hashsemijoin       fallback: ``np.isin`` membership kernel
group        unary/binary       factorised int codes (``np.unique``),
                                pair codes combined in int64
unique/      code path          joint int64 BUN pair codes +
set ops                         ``np.unique``/``np.isin``; first-occurrence
                                order preserved
aggregate    grouped            ``np.bincount`` (count/avg/float sum),
                                argsort + ``np.add.reduceat`` (int sum,
                                exact), order-rank extremes (min/max incl.
                                strings)
===========  =================  ===========================================

Hash indexes (``bat.accel["hash"]``) are *array-backed* for
fixed-width atoms — a stable sort permutation plus sorted key array —
and keep a Python dict only for object-dtype keys.  The naive
BUN-at-a-time algorithms survive in :mod:`.naive` as the executable
specification the differential tests and the benchmark harness compare
against.

When a :class:`~repro.monet.parallel.ParallelConfig` is installed
(``repro.monet.parallel.use(...)``; off by default), the probe/scan
side of the hot kernels — MultiMap probe, membership, factorize,
grouped sums — is split into horizontal chunks behind a size threshold
and fanned over a thread pool; per-chunk results merge in chunk order.
Output is bit-identical across worker counts, and BUN-identical to the
serial kernels for the position/code paths (float aggregate sums may
differ from the serial single-pass ``bincount`` by last-ulp rounding —
the chunked association differs, deterministically).  Fault traces are
unchanged: accounting happens once, from the calling thread, with
per-chunk pages union-deduplicated.
"""

from .aggregate import (AGGREGATES, aggregate_all, fill_zero,
                        set_aggregate)
from .group import group1, group2
from .join import join, join_positions, pairjoin
from .misc import count, exist, fetch, ident, mark, mirror, number
from .multiplex import (function_names, get_function, multiplex,
                        register_function)
from .select import select_eq, select_range
from .semijoin import antijoin, semijoin
from .setops import difference, intersection, kdiff, kintersect, union, unique
from .sort import slice_bunches, sort_head, sort_positions, sort_tail

__all__ = [
    "AGGREGATES", "aggregate_all", "fill_zero", "set_aggregate",
    "group1", "group2",
    "join", "join_positions", "pairjoin",
    "count", "exist", "fetch", "ident", "mark", "mirror", "number",
    "function_names", "get_function", "multiplex", "register_function",
    "select_eq", "select_range",
    "antijoin", "semijoin",
    "difference", "intersection", "kdiff", "kintersect", "union", "unique",
    "slice_bunches", "sort_head", "sort_positions", "sort_tail",
]
