"""Aggregation: the set-aggregate ``{g}(AB)`` of Figure 4 plus scalar
aggregates.

"The set-aggregate constructor is used for bulk aggregation ... the
set-aggregate version {Y}() groups over the head of the BAT and
calculates for each formed set of tail values an aggregate result.
With this construct, we can execute nested aggregates in one go,
rather than having to do iterative calls to some function on nested
collections."

Supported aggregate functions: ``sum, count, avg, min, max``.  Grouped
min/max on variable-size atoms (strings) work through the heap's value
ranks, so every comparable atom is supported.
"""

import numpy as np

from ...errors import OperatorError
from .. import atoms as _atoms
from ..buffer import get_manager
from ..column import FixedColumn, equality_keys
from ..properties import Props
from ..vectorized import grouped_sum, grouped_weighted_sum, membership_mask
from .common import result_bat

AGGREGATES = ("sum", "count", "avg", "min", "max")


def _sum_atom(atom):
    if atom.name in ("short", "int", "long"):
        return _atoms.LONG
    if atom.name in ("float", "double"):
        return _atoms.DOUBLE
    raise OperatorError("cannot sum %s values" % atom.name)


def set_aggregate(func, ab, name=None):
    """``{func}(AB)``: one aggregate per distinct head value.

    The result head holds the distinct head values in ascending order;
    ``hkey`` and ``hordered`` are set by construction.
    """
    if func not in AGGREGATES:
        raise OperatorError("unknown aggregate %r" % func)
    manager = get_manager()
    with manager.operator("{%s}" % func):
        manager.access_column(ab.head)
        manager.access_column(ab.tail)
        keys = ab.head.keys()
        uniq, first_pos, inverse = np.unique(
            keys, return_index=True, return_inverse=True)
        inverse = inverse.astype(np.int64)
        n_groups = len(uniq)
        head = ab.head.take(first_pos)
        tail = _grouped(func, ab.tail, inverse, n_groups)
    # heads come out in ascending key order; for var-size atoms key
    # order is heap order, not value order, so ordered cannot be set
    props = Props(hkey=True, hordered=not ab.head.atom.varsized)
    return result_bat(head, tail, name=name, props=props)


def _grouped(func, tail_col, inverse, n_groups):
    # the sum kernels (grouped_sum / grouped_weighted_sum) self-chunk
    # under an installed ParallelConfig: per-chunk partials are added
    # in chunk order, exact for integers and deterministic for floats
    if func == "count":
        counts = np.bincount(inverse, minlength=n_groups)
        return FixedColumn(_atoms.LONG, counts.astype(np.int64))
    if func == "sum":
        atom = _sum_atom(tail_col.atom)
        if atom.dtype.kind in "iu":
            values = np.asarray(tail_col.logical(), dtype=np.int64)
            # bincount accumulates in float64: exact only while every
            # partial sum stays below 2**53.  Otherwise fall back to
            # the all-integer argsort + reduceat kernel.
            bound = int(np.abs(values).max()) * len(values) if \
                len(values) else 0
            if bound >= 2 ** 53:
                return FixedColumn(atom, grouped_sum(values, inverse,
                                                     n_groups))
            sums = grouped_weighted_sum(inverse, values, n_groups)
            return FixedColumn(atom, sums.astype(atom.dtype))
        values = np.asarray(tail_col.logical(), dtype=np.float64)
        sums = grouped_weighted_sum(inverse, values, n_groups)
        return FixedColumn(atom, sums.astype(atom.dtype))
    if func == "avg":
        values = np.asarray(tail_col.logical(), dtype=np.float64)
        sums = grouped_weighted_sum(inverse, values, n_groups)
        counts = np.bincount(inverse, minlength=n_groups)
        return FixedColumn(_atoms.DOUBLE, sums / np.maximum(counts, 1))
    # min / max via order ranks so strings work too
    ranks = np.asarray(tail_col.order_keys())
    extreme = np.full(n_groups, -1, dtype=np.int64)
    order = np.argsort(ranks, kind="stable")
    if func == "min":
        # walk descending rank so the smallest overwrites last
        order = order[::-1]
    np_positions = np.arange(len(ranks), dtype=np.int64)[order]
    extreme[inverse[order]] = np_positions
    if np.any(extreme < 0):
        raise OperatorError("aggregate over empty group")
    return tail_col.take(extreme)


def fill_zero(agg, carrier, name=None):
    """Extend a grouped aggregate with 0 for missing carrier heads.

    ``{count}``/``{sum}`` over a ``[owner, elem]`` index only produce
    BUNs for owners that own at least one element; SQL (and MOA's
    logical semantics) give empty groups a count/sum of 0.  This
    operator unions ``[owner, 0]`` for every carrier head absent from
    the aggregate, keeping the result head-unique.
    """
    manager = get_manager()
    with manager.operator("fillzero"):
        manager.access_column(agg.head)
        manager.access_column(carrier.head)
        carrier_keys, agg_keys = equality_keys(carrier.head, agg.head)
        absent = np.nonzero(~membership_mask(carrier_keys, agg_keys))[0]
        missing = [carrier.head.value(int(pos)) for pos in absent]
    if not missing:
        out = agg.take(np.arange(len(agg), dtype=np.int64), name=name)
        out.props = agg.props.copy()
        return out
    from ..bat import bat_from_columns_values, concat_bats
    zero = 0.0 if agg.tail.atom.name in ("float", "double") else 0
    extra = bat_from_columns_values(agg.head.atom, missing,
                                    agg.tail.atom, [zero] * len(missing))
    out = concat_bats([agg, extra], name=name)
    out.props = Props(hkey=True)
    return out


def aggregate_all(func, ab):
    """Scalar aggregate over the whole tail column; returns a Python
    value (``None`` for min/max/avg of an empty BAT, 0 for sum/count).
    """
    if func not in AGGREGATES:
        raise OperatorError("unknown aggregate %r" % func)
    manager = get_manager()
    with manager.operator("%s()" % func):
        manager.access_column(ab.tail)
        n = len(ab)
        if func == "count":
            return n
        if n == 0:
            return 0 if func == "sum" else None
        if func in ("sum", "avg"):
            values = np.asarray(ab.tail.logical(), dtype=np.float64)
            total = float(values.sum())
            if func == "sum":
                if ab.tail.atom.name in ("short", "int", "long"):
                    return int(round(total))
                return total
            return total / n
        ranks = np.asarray(ab.tail.order_keys())
        position = int(np.argmin(ranks) if func == "min"
                       else np.argmax(ranks))
        return ab.tail.value(position)
