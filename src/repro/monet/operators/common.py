"""Shared helpers for the BAT-algebra operator implementations."""

import numpy as np

from ...errors import OperatorError
from ..bat import BAT
from ..properties import Props


def subsequence_props(ab):
    """Props of a result whose BUNs are a subsequence of ``ab``'s.

    Selections and order-preserving semijoins keep relative BUN order,
    so ordered/key flags survive (dropping BUNs cannot introduce
    duplicates or disorder).
    """
    return ab.props.copy()


def take_subsequence(ab, positions, name=None):
    """Result BAT = ``ab`` restricted to ``positions`` (monotonic).

    Inherits properties; when *all* BUNs survive the result is synced
    with the operand (alignment token preserved).
    """
    positions = np.asarray(positions, dtype=np.int64)
    total = len(positions) == len(ab)
    out = ab.take(positions, name=name,
                  alignment=ab.alignment if total else None)
    out.props = subsequence_props(ab)
    return out


def factorize(keys):
    """(codes, n_distinct): dense int codes per distinct key, sorted order."""
    keys = np.asarray(keys)
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64), 0
    uniq, inverse = np.unique(keys, return_inverse=True)
    return inverse.astype(np.int64), len(uniq)


def build_multimap(keys):
    """dict key -> list of positions, over an equality-key array."""
    table = {}
    if keys.dtype == object:
        items = enumerate(keys)
    else:
        items = enumerate(keys.tolist())
    for pos, key in items:
        table.setdefault(key, []).append(pos)
    return table


def require_nonempty_signature(ab, cd, op):
    if ab.tail.atom.varsized != cd.head.atom.varsized:
        raise OperatorError(
            "%s: join columns have incompatible atoms %s vs %s"
            % (op, ab.tail.atom.name, cd.head.atom.name))


def result_bat(head, tail, name=None, props=None, alignment=None):
    out = BAT(head, tail, name=name, alignment=alignment)
    if props is not None:
        out.props = props
    return out


def void_like(column):
    """True when a column is virtual-dense (void)."""
    return column.is_void()


def props_none():
    return Props()
