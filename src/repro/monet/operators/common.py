"""Shared helpers for the BAT-algebra operator implementations."""

import numpy as np

from ...errors import OperatorError
from ..bat import BAT
from ..properties import Props
from ..vectorized import MultiMap
from ..vectorized import factorize as _factorize


def subsequence_props(ab):
    """Props of a result whose BUNs are a subsequence of ``ab``'s.

    Selections and order-preserving semijoins keep relative BUN order,
    so ordered/key flags survive (dropping BUNs cannot introduce
    duplicates or disorder).
    """
    return ab.props.copy()


def take_subsequence(ab, positions, name=None):
    """Result BAT = ``ab`` restricted to ``positions`` (monotonic).

    Inherits properties; when *all* BUNs survive the result is synced
    with the operand (alignment token preserved).
    """
    positions = np.asarray(positions, dtype=np.int64)
    total = len(positions) == len(ab)
    out = ab.take(positions, name=name,
                  alignment=ab.alignment if total else None)
    out.props = subsequence_props(ab)
    return out


def factorize(keys):
    """(codes, n_distinct): dense int codes per distinct key, sorted order."""
    return _factorize(keys)


def build_multimap(keys):
    """Positions-by-key :class:`~repro.monet.vectorized.MultiMap`.

    Array-backed (argsort + searchsorted) for fixed-width keys, dict
    backed for object keys; shared by join, pairjoin and the hash
    accelerator so the per-BUN dict build exists in exactly one place.
    """
    return MultiMap(keys)


def require_nonempty_signature(ab, cd, op):
    if ab.tail.atom.varsized != cd.head.atom.varsized:
        raise OperatorError(
            "%s: join columns have incompatible atoms %s vs %s"
            % (op, ab.tail.atom.name, cd.head.atom.name))


def result_bat(head, tail, name=None, props=None, alignment=None):
    out = BAT(head, tail, name=name, alignment=alignment)
    if props is not None:
        out.props = props
    return out


def void_like(column):
    """True when a column is virtual-dense (void)."""
    return column.is_void()


def props_none():
    return Props()
