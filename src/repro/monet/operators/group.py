"""Grouping: ``AB.group`` and ``AB.group(CD)`` (Figure 4).

``group`` "introduces new oids for uniquely occurring values in a BAT
column"::

    AB.group     = { a o_b  | ab in AB, o_b  = unique_oid(b) }
    AB.group(CD) = { a o_bd | ab in AB, cd in CD, a = c,
                             o_bd = unique_oid(b, d) }

It implements SQL ``GROUP BY`` and MOA ``nest``; groupings on multiple
attributes chain the binary form: ``group(a); group(grp, b); ...``
(section 4.2, "followed up by binary group invocations till all
attributes are processed").

Group oids are dense ``0..k-1`` in order of *sorted distinct key*, so
the result tail can later be used as a dense head by the aggregation
operators.
"""

import numpy as np

from ...errors import OperatorError
from .. import atoms as _atoms
from ..buffer import get_manager
from ..column import FixedColumn
from ..optimizer import get_optimizer
from ..properties import Props, synced
from ..vectorized import combine_codes
from .common import factorize, result_bat
from .join import join_positions


def group1(ab, name=None):
    """Unary group: new dense oid per distinct tail value."""
    manager = get_manager()
    optimizer = get_optimizer()
    optimizer.record("group", "unary")
    with manager.operator("group"):
        manager.access_column(ab.tail)
        # factorize self-chunks under an installed ParallelConfig:
        # per-chunk distinct scans into one merged domain, then
        # per-chunk coding — group oids identical to the serial kernel
        codes, n_groups = factorize(ab.tail.keys())
        manager.access_column(ab.head)
    tail = FixedColumn(_atoms.OID, codes)
    props = Props(hkey=ab.props.hkey, hordered=ab.props.hordered,
                  tkey=(n_groups == len(ab)))
    out = result_bat(ab.head.take(np.arange(len(ab), dtype=np.int64)),
                     tail, name=name, props=props, alignment=ab.alignment)
    return out


def group2(grp, cd, name=None):
    """Binary group: refine ``grp``'s groups by ``cd``'s tail values.

    ``grp`` must be a ``[head, group-oid]`` BAT (typically the output of
    a previous group); ``cd`` supplies one extra grouping attribute for
    the same heads.
    """
    manager = get_manager()
    optimizer = get_optimizer()
    with manager.operator("group"):
        if optimizer.dynamic and synced(grp, cd):
            optimizer.record("group", "binary-synced")
            left_codes = np.asarray(grp.tail.logical(), dtype=np.int64)
            right_keys = cd.tail.keys()
            head_positions = np.arange(len(grp), dtype=np.int64)
        else:
            optimizer.record("group", "binary-hash")
            if not cd.props.hkey:
                raise OperatorError(
                    "binary group needs a head-unique second operand "
                    "when operands are not synced")
            left_pos, right_pos = join_positions(
                _as_join_operand(grp), cd)
            if len(left_pos) != len(grp):
                raise OperatorError(
                    "binary group: second operand misses %d heads"
                    % (len(grp) - len(left_pos)))
            left_codes = np.asarray(
                grp.tail.logical(), dtype=np.int64)[left_pos]
            right_keys = cd.tail.keys()[right_pos]
            head_positions = left_pos
        manager.access_column(grp.tail)
        manager.access_column(cd.tail)
        right_codes, n_right = factorize(right_keys)
        combined = combine_codes(left_codes, right_codes, n_right)
        codes, n_groups = factorize(combined)
        manager.access_column(grp.head)
    tail = FixedColumn(_atoms.OID, codes)
    props = Props(hkey=grp.props.hkey, hordered=grp.props.hordered,
                  tkey=(n_groups == len(grp)))
    return result_bat(grp.head.take(head_positions), tail, name=name,
                      props=props, alignment=grp.alignment)


def _as_join_operand(grp):
    """View ``grp`` as ``[head, head]`` so join matches on heads."""
    return result_bat(grp.head, grp.head, props=Props(
        hkey=grp.props.hkey, hordered=grp.props.hordered,
        tkey=grp.props.hkey, tordered=grp.props.hordered))
