"""Equi-join: ``AB.join(CD) = { ad | ab in AB, cd in CD, b = c }``.

The join columns are projected out to keep the operation closed in the
binary model (section 4.2).  Implementations, chosen at run time:

* ``fetchjoin`` — the inner head is a void (virtual dense) column, so
  matching is pure positional arithmetic; used against datavector-style
  dense tables.
* ``mergejoin`` — the inner head is ordered; binary-search (vectorised
  ``searchsorted``) matching with sequential access patterns, "tend to
  work best ... because they have sequential access patterns"
  (section 5.2).
* ``hashjoin`` — the generic fallback; builds (or reuses) a hash table
  accelerator on the inner head.

The result is produced in outer (left) BUN order.  When every outer
BUN finds exactly one match the result head equals the outer head, so
the result is *synced* with the outer operand — the property that makes
the Q13 multiplex chain positional.
"""

import numpy as np

from ...errors import OperatorError
from ..accelerators.hashidx import hash_of
from ..buffer import get_manager
from ..column import column_from_values, equality_keys
from ..optimizer import get_optimizer
from ..properties import Props
from ..vectorized import (combine_codes_pair, joint_codes,
                          merge_match_segments)
from .common import build_multimap, require_nonempty_signature, result_bat


def join(ab, cd, name=None):
    """Dispatch on operand state, per section 5.1."""
    require_nonempty_signature(ab, cd, "join")
    optimizer = get_optimizer()
    if optimizer.dynamic and cd.head.is_void():
        optimizer.record("join", "fetchjoin")
        return _fetchjoin(ab, cd, name)
    if (optimizer.dynamic and cd.props.hordered and cd.props.hkey
            and not cd.head.atom.varsized and not ab.tail.atom.varsized):
        optimizer.record("join", "mergejoin")
        return _mergejoin(ab, cd, name)
    optimizer.record("join", "hashjoin")
    return _hashjoin(ab, cd, name)


def _probe_map(ab, cd, index=None):
    """(probe keys, MultiMap) for matching ``ab.tail`` against
    ``cd.head`` — the one place the key extraction and
    accelerator-vs-fresh-multimap choice lives, shared by
    :func:`join_positions` and the hashjoin operator."""
    left_keys, right_keys = equality_keys(ab.tail, cd.head)
    if index is not None:
        return left_keys, index.map
    return left_keys, build_multimap(right_keys)


def join_positions(ab, cd, index=None):
    """(left_positions, right_positions) of every matching BUN pair.

    Left-major order; shared by :func:`join` and by the MOA rewriter's
    pair construction for explicit joins.  When a prebuilt hash
    accelerator on ``cd``'s head is passed as ``index`` its sort
    permutation is reused instead of building a fresh multimap.
    """
    left_keys, multimap = _probe_map(ab, cd, index)
    return multimap.match(left_keys)


def pairjoin(operands, name=None):
    """Multi-key equi-join producing ``[left_elem, right_elem]`` pairs.

    ``operands`` is an even-length list: the first half are left key
    columns (BATs ``[left_elem, key_i]``, mutually aligned on their
    heads), the second half right key columns.  A pair qualifies when
    all key positions match — the building block for MOA joins on
    composite keys, where the binary model has no single column to
    join on.
    """
    if len(operands) < 2 or len(operands) % 2:
        raise OperatorError("pairjoin needs an even number of key columns")
    half = len(operands) // 2
    lefts, rights = operands[:half], operands[half:]
    manager = get_manager()
    with manager.operator("pairjoin"):
        left_ids, left_gather = _side_alignment(lefts, manager)
        right_ids, right_gather = _side_alignment(rights, manager)
        left_codes, right_codes = _composite_codes(
            lefts, left_gather, rights, right_gather)
        left_pos, right_pos = build_multimap(right_codes).match(left_codes)
        out_left = left_ids[left_pos]
        out_right = right_ids[right_pos]
    head = column_from_values("oid", out_left)
    tail = column_from_values("oid", out_right)
    props = Props(hordered=True)
    return result_bat(head, tail, name=name, props=props)


def _side_alignment(key_bats, manager):
    """(element ids, per-bat gather positions) for one operand side.

    ``gather[i]`` maps each element of the side's first BAT to its BUN
    position in ``key_bats[i]`` (``-1`` when the head is absent there,
    the analogue of a failed dict lookup in the old tuple build).
    """
    first = key_bats[0]
    manager.access_column(first.head)
    ids = np.asarray(first.head.logical(), dtype=np.int64)
    gathers = [np.arange(len(first), dtype=np.int64)]
    for bat in key_bats[1:]:
        if not bat.props.hkey:
            raise OperatorError("pairjoin key columns must be "
                                "head-unique")
        first_keys, bat_keys = equality_keys(first.head, bat.head)
        gathers.append(build_multimap(bat_keys).lookup_first(first_keys))
    return ids, gathers


def _composite_codes(lefts, left_gather, rights, right_gather):
    """Dense int64 composite-key code per element, both sides jointly.

    Key columns are factorised slot by slot through a coding shared by
    the two sides (equal values — across heaps too — get equal codes);
    a missing head gets the per-slot sentinel code, matching the old
    ``None`` tuple component.  Slot codes are combined and re-densified
    pairwise, so the composite stays within int64 regardless of arity.
    """
    manager = get_manager()
    total_left = total_right = None
    for slot, (lbat, rbat) in enumerate(zip(lefts, rights)):
        manager.access_column(lbat.tail)
        manager.access_column(rbat.tail)
        lraw, rraw = equality_keys(lbat.tail, rbat.tail)
        lkeys, lmissing = _gather_keys(lraw, left_gather[slot])
        rkeys, rmissing = _gather_keys(rraw, right_gather[slot])
        lcodes, rcodes, n = joint_codes(lkeys, rkeys)
        lcodes[lmissing] = n
        rcodes[rmissing] = n
        if total_left is None:
            total_left, total_right = lcodes, rcodes
        else:
            # the pair form keeps the two sides jointly coded even when
            # the mixed-radix product would overflow int64 on wide
            # composite keys (it then factorises the pairs jointly)
            total_left, total_right, _domain = combine_codes_pair(
                total_left, lcodes, total_right, rcodes, n + 1)
            total_left, total_right, _n = joint_codes(
                total_left, total_right)
    return total_left, total_right


def _gather_keys(raw, positions):
    """(keys aligned to positions, missing mask) with -1 = missing."""
    missing = positions < 0
    if len(raw) == 0:
        return np.zeros(len(positions), dtype=np.int64), \
            np.ones(len(positions), dtype=bool)
    return raw[np.where(missing, 0, positions)], missing


def _finish(ab, cd, left_pos, right_pos, name):
    head = ab.head.take(left_pos)
    tail = cd.tail.take(right_pos)
    props = Props()
    props.hordered = ab.props.hordered      # left-major, non-strict order
    props.hkey = ab.props.hkey and cd.props.hkey
    out = result_bat(head, tail, name=name, props=props)
    if len(out) == len(ab) and cd.props.hkey:
        # total 1:1 match: result heads are exactly the outer heads
        out.alignment = ab.alignment
        out.props.hkey = ab.props.hkey
        out.props.hordered = ab.props.hordered
    return out


def _fetchjoin(ab, cd, name):
    manager = get_manager()
    with manager.operator("join.fetchjoin"):
        manager.access_column(ab.tail)
        keys = np.asarray(ab.tail.logical(), dtype=np.int64)
        seqbase = cd.head.seqbase
        positions = keys - seqbase
        valid = (positions >= 0) & (positions < len(cd))
        left_pos = np.nonzero(valid)[0]
        right_pos = positions[valid]
        manager.access_column(ab.head, left_pos)
        manager.access_column(cd.tail, right_pos)
    return _finish(ab, cd, left_pos, right_pos, name)


def _mergejoin(ab, cd, name):
    # dispatch guarantees: fixed-width keys, cd head ordered and unique
    manager = get_manager()
    with manager.operator("join.mergejoin"):
        left_keys, right_keys = equality_keys(ab.tail, cd.head)
        manager.access_column(ab.tail)
        manager.access_column(cd.head)
        positions = np.searchsorted(right_keys, left_keys)
        positions = np.clip(positions, 0, max(0, len(right_keys) - 1))
        if len(right_keys):
            valid = right_keys[positions] == left_keys
        else:
            valid = np.zeros(len(left_keys), dtype=bool)
        left_pos = np.nonzero(valid)[0]
        right_pos = positions[valid]
        manager.access_column(ab.head, left_pos)
        manager.access_column(cd.tail, right_pos)
    return _finish(ab, cd, left_pos, right_pos, name)


def _hashjoin(ab, cd, name):
    # the chunked parallel path splits the probe side into horizontal
    # ranges (ParallelConfig size threshold; see repro.monet.parallel)
    # and matches them on the worker pool; segments merge in chunk
    # order, so the BUN output is identical to the serial probe, and
    # the per-chunk gathers are accounted through the union-dedup
    # buffer call so the fault trace is identical too
    manager = get_manager()
    with manager.operator("join.hashjoin"):
        manager.access_column(ab.tail)
        manager.access_column(cd.head)
        index = None
        if cd.head.atom.varsized == ab.tail.atom.varsized \
                and not ab.tail.atom.varsized \
                and "hash" in cd.accel:
            index = hash_of(cd, "head")
            manager.access_heap(index.heap)
        left_keys, multimap = _probe_map(ab, cd, index)
        segments = multimap.match_chunks(left_keys)
        if segments is None:
            left_pos, right_pos = multimap.match(left_keys)
            manager.access_column(ab.head, left_pos)
            manager.access_column(cd.tail, right_pos)
        else:
            left_pos, right_pos = merge_match_segments(segments)
            manager.access_column_chunks(
                ab.head, [seg[2] for seg in segments])
            manager.access_column_chunks(
                cd.tail, [seg[3] for seg in segments])
    return _finish(ab, cd, left_pos, right_pos, name)
