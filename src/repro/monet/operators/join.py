"""Equi-join: ``AB.join(CD) = { ad | ab in AB, cd in CD, b = c }``.

The join columns are projected out to keep the operation closed in the
binary model (section 4.2).  Implementations, chosen at run time:

* ``fetchjoin`` — the inner head is a void (virtual dense) column, so
  matching is pure positional arithmetic; used against datavector-style
  dense tables.
* ``mergejoin`` — the inner head is ordered; binary-search (vectorised
  ``searchsorted``) matching with sequential access patterns, "tend to
  work best ... because they have sequential access patterns"
  (section 5.2).
* ``hashjoin`` — the generic fallback; builds (or reuses) a hash table
  accelerator on the inner head.

The result is produced in outer (left) BUN order.  When every outer
BUN finds exactly one match the result head equals the outer head, so
the result is *synced* with the outer operand — the property that makes
the Q13 multiplex chain positional.
"""

import numpy as np

from ...errors import OperatorError
from ..accelerators.hashidx import hash_of
from ..buffer import get_manager
from ..column import column_from_values, equality_keys
from ..optimizer import get_optimizer
from ..properties import Props
from .common import build_multimap, require_nonempty_signature, result_bat


def join(ab, cd, name=None):
    """Dispatch on operand state, per section 5.1."""
    require_nonempty_signature(ab, cd, "join")
    optimizer = get_optimizer()
    if optimizer.dynamic and cd.head.is_void():
        optimizer.record("join", "fetchjoin")
        return _fetchjoin(ab, cd, name)
    if (optimizer.dynamic and cd.props.hordered and cd.props.hkey
            and not cd.head.atom.varsized and not ab.tail.atom.varsized):
        optimizer.record("join", "mergejoin")
        return _mergejoin(ab, cd, name)
    optimizer.record("join", "hashjoin")
    return _hashjoin(ab, cd, name)


def join_positions(ab, cd):
    """(left_positions, right_positions) of every matching BUN pair.

    Left-major order; shared by :func:`join` and by the MOA rewriter's
    pair construction for explicit joins.
    """
    left_keys, right_keys = equality_keys(ab.tail, cd.head)
    table = build_multimap(right_keys)
    lefts = []
    rights = []
    if left_keys.dtype == object:
        items = enumerate(left_keys)
    else:
        items = enumerate(left_keys.tolist())
    for pos, key in items:
        hits = table.get(key)
        if hits:
            lefts.extend([pos] * len(hits))
            rights.extend(hits)
    return (np.asarray(lefts, dtype=np.int64),
            np.asarray(rights, dtype=np.int64))


def pairjoin(operands, name=None):
    """Multi-key equi-join producing ``[left_elem, right_elem]`` pairs.

    ``operands`` is an even-length list: the first half are left key
    columns (BATs ``[left_elem, key_i]``, mutually aligned on their
    heads), the second half right key columns.  A pair qualifies when
    all key positions match — the building block for MOA joins on
    composite keys, where the binary model has no single column to
    join on.
    """
    if len(operands) < 2 or len(operands) % 2:
        raise OperatorError("pairjoin needs an even number of key columns")
    half = len(operands) // 2
    lefts, rights = operands[:half], operands[half:]
    manager = get_manager()
    with manager.operator("pairjoin"):
        left_ids, left_keys = _tuple_keys(lefts, manager)
        right_ids, right_keys = _tuple_keys(rights, manager)
        table = {}
        for rid, rkey in zip(right_ids, right_keys):
            table.setdefault(rkey, []).append(rid)
        out_left = []
        out_right = []
        for lid, lkey in zip(left_ids, left_keys):
            hits = table.get(lkey)
            if hits:
                out_left.extend([lid] * len(hits))
                out_right.extend(hits)
    head = column_from_values("oid", out_left)
    tail = column_from_values("oid", out_right)
    props = Props(hordered=True)
    return result_bat(head, tail, name=name, props=props)


def _tuple_keys(key_bats, manager):
    """(element ids, tuple keys) from aligned [elem, key] columns."""
    first = key_bats[0]
    manager.access_column(first.head)
    ids = [int(v) for v in first.head.logical()]
    columns = []
    for bat in key_bats:
        manager.access_column(bat.tail)
        if bat is first:
            columns.append(list(bat.tail.logical()))
        else:
            if not bat.props.hkey:
                raise OperatorError("pairjoin key columns must be "
                                    "head-unique")
            lookup = dict(zip((int(v) for v in bat.head.logical()),
                              bat.tail.logical()))
            columns.append([lookup.get(i) for i in ids])
    keys = [tuple(_plain(col[i]) for col in columns)
            for i in range(len(ids))]
    return ids, keys


def _plain(value):
    import numpy as _np
    if isinstance(value, _np.integer):
        return int(value)
    if isinstance(value, _np.floating):
        return float(value)
    if isinstance(value, _np.bool_):
        return bool(value)
    return value


def _finish(ab, cd, left_pos, right_pos, name):
    head = ab.head.take(left_pos)
    tail = cd.tail.take(right_pos)
    props = Props()
    props.hordered = ab.props.hordered      # left-major, non-strict order
    props.hkey = ab.props.hkey and cd.props.hkey
    out = result_bat(head, tail, name=name, props=props)
    if len(out) == len(ab) and cd.props.hkey:
        # total 1:1 match: result heads are exactly the outer heads
        out.alignment = ab.alignment
        out.props.hkey = ab.props.hkey
        out.props.hordered = ab.props.hordered
    return out


def _fetchjoin(ab, cd, name):
    manager = get_manager()
    with manager.operator("join.fetchjoin"):
        manager.access_column(ab.tail)
        keys = np.asarray(ab.tail.logical(), dtype=np.int64)
        seqbase = cd.head.seqbase
        positions = keys - seqbase
        valid = (positions >= 0) & (positions < len(cd))
        left_pos = np.nonzero(valid)[0]
        right_pos = positions[valid]
        manager.access_column(ab.head, left_pos)
        manager.access_column(cd.tail, right_pos)
    return _finish(ab, cd, left_pos, right_pos, name)


def _mergejoin(ab, cd, name):
    # dispatch guarantees: fixed-width keys, cd head ordered and unique
    manager = get_manager()
    with manager.operator("join.mergejoin"):
        left_keys, right_keys = equality_keys(ab.tail, cd.head)
        manager.access_column(ab.tail)
        manager.access_column(cd.head)
        positions = np.searchsorted(right_keys, left_keys)
        positions = np.clip(positions, 0, max(0, len(right_keys) - 1))
        if len(right_keys):
            valid = right_keys[positions] == left_keys
        else:
            valid = np.zeros(len(left_keys), dtype=bool)
        left_pos = np.nonzero(valid)[0]
        right_pos = positions[valid]
        manager.access_column(ab.head, left_pos)
        manager.access_column(cd.tail, right_pos)
    return _finish(ab, cd, left_pos, right_pos, name)


def _hashjoin(ab, cd, name):
    manager = get_manager()
    with manager.operator("join.hashjoin"):
        manager.access_column(ab.tail)
        manager.access_column(cd.head)
        if cd.head.atom.varsized == ab.tail.atom.varsized \
                and not ab.tail.atom.varsized \
                and "hash" in cd.accel:
            index = hash_of(cd, "head")
            manager.access_heap(index.heap)
        left_pos, right_pos = join_positions(ab, cd)
        manager.access_column(ab.head, left_pos)
        manager.access_column(cd.tail, right_pos)
    return _finish(ab, cd, left_pos, right_pos, name)
