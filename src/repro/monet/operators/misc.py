"""Small MIL utilities: mirror, count, fetch, exist, mark.

``mark`` numbers the BUNs of a BAT with fresh dense oids; MOA's
rewriter uses it to mint element ids for join pairs and projected
tuples, the way Monet's ``mark`` supports intermediate-result oids.
"""

import numpy as np

from .. import atoms as _atoms
from ..buffer import get_manager
from ..column import VoidColumn
from ..properties import Props
from .common import result_bat


def mirror(ab, name=None):
    """The zero-cost mirror view (head and tail swapped)."""
    out = ab.mirror()
    if name is not None:
        out.name = name
    return out


def count(ab):
    """Number of BUNs."""
    return len(ab)


def fetch(ab, position):
    """The BUN at one position, as a Python pair."""
    return ab.bun(position)


def exist(ab, value):
    """True when some tail value equals ``value``."""
    manager = get_manager()
    with manager.operator("exist"):
        manager.access_column(ab.tail)
        encoded = ab.tail.encode(value)
        if encoded is None:
            return False
        keys = ab.tail.keys()
        if keys.dtype == object:
            return value in set(keys)
        return bool(np.any(keys == encoded))


def mark(ab, base=0, name=None):
    """``[a, o]`` with fresh dense oids ``o = base, base+1, ...``.

    The tail is a void (virtual) column, so marking is free of storage.
    """
    manager = get_manager()
    with manager.operator("mark"):
        manager.access_column(ab.head)
    tail = VoidColumn(base, len(ab))
    props = Props(hkey=ab.props.hkey, hordered=ab.props.hordered,
                  tkey=True, tordered=True)
    return result_bat(ab.head, tail, name=name, props=props,
                      alignment=ab.alignment)


def number(ab, base=0, name=None):
    """``[o, b]``: dense oids over the tail values (mark mirrored)."""
    head = VoidColumn(base, len(ab))
    props = Props(hkey=True, hordered=True, tkey=ab.props.tkey,
                  tordered=ab.props.tordered)
    return result_bat(head, ab.tail, name=name, props=props)


def ident(ab, name=None):
    """``[a, a]``: the head column duplicated into the tail.

    The MOA rewriter uses it to treat a carrier BAT's heads as values
    (element identity), e.g. before BUN-level set operations.
    """
    props = Props(hkey=ab.props.hkey, hordered=ab.props.hordered,
                  tkey=ab.props.hkey, tordered=ab.props.hordered)
    return result_bat(ab.head, ab.head, name=name, props=props,
                      alignment=ab.alignment)
