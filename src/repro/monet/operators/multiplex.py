"""The multiplex construct ``[f](AB, ..., XY)`` (Figure 4).

"The multiplex constructor [X] allows bulk application of any algebraic
operation on all tail values of a BAT.  Multiple BAT parameters can be
given, in which case the algebraic operation is applied on all
combinations of tail values over the natural join on head values.
This operation is used to vectorize computation of expressions, and
invocation of methods."

The fast path applies when all BAT operands are mutually *synced*
(section 5.1): the natural join on heads degenerates to positional
alignment, and the whole multiplex is one vectorised numpy expression —
this is why the kernel tracks ``synced`` through semijoin chains.

Scalar (non-BAT) arguments are broadcast, e.g. ``[-](1.0, discount)``.

The function registry is extensible (:func:`register_function`),
mirroring MIL's run-time command extensibility.
"""

import numpy as np

from ...errors import OperatorError
from .. import atoms as _atoms
from ..buffer import get_manager
from ..column import FixedColumn, VarColumn, column_from_values
from ..optimizer import get_optimizer
from ..properties import Props, synced
from .common import result_bat
from .join import join_positions


class MultiplexFunction:
    """A bulk-appliable scalar function: numpy impl + result typing."""

    __slots__ = ("name", "impl", "result_atom", "arity")

    def __init__(self, name, impl, result_atom, arity):
        self.name = name
        self.impl = impl
        self.result_atom = result_atom
        self.arity = arity


_FUNCTIONS = {}


def register_function(name, impl, result_atom, arity):
    """Add a multiplexable function; ``result_atom`` maps operand atoms
    to the result atom (or is a fixed :class:`~repro.monet.atoms.Atom`).
    """
    if name in _FUNCTIONS:
        raise OperatorError("multiplex function %r already registered" % name)
    _FUNCTIONS[name] = MultiplexFunction(name, impl, result_atom, arity)


def get_function(name):
    try:
        return _FUNCTIONS[name]
    except KeyError:
        raise OperatorError("unknown multiplex function %r" % name) from None


def function_names():
    return sorted(_FUNCTIONS)


def multiplex(fname, *operands, name=None):
    """Apply ``[fname]`` over BAT/scalar operands (see module doc)."""
    func = get_function(fname)
    if func.arity is not None and len(operands) != func.arity:
        raise OperatorError("multiplex [%s] expects %d operands, got %d"
                            % (fname, func.arity, len(operands)))
    bats = [op for op in operands if hasattr(op, "head")]
    if not bats:
        raise OperatorError("multiplex needs at least one BAT operand")
    manager = get_manager()
    optimizer = get_optimizer()
    first = bats[0]
    all_synced = all(synced(first, other) for other in bats[1:])
    with manager.operator("multiplex[%s]" % fname):
        if all_synced and optimizer.dynamic or len(bats) == 1:
            optimizer.record("multiplex", "synced")
            head = first.head
            head_positions = None
            arrays = []
            for op in operands:
                if hasattr(op, "head"):
                    manager.access_column(op.tail)
                    arrays.append(op.tail.logical())
                else:
                    arrays.append(op)
            hkey = first.props.hkey
            hordered = first.props.hordered
            alignment = first.alignment
        else:
            optimizer.record("multiplex", "aligned")
            head_positions, aligned = _align_on_heads(bats, manager)
            head = first.head.take(head_positions)
            arrays = []
            index = 0
            for op in operands:
                if hasattr(op, "head"):
                    arrays.append(aligned[index])
                    index += 1
                else:
                    arrays.append(op)
            hkey = all(b.props.hkey for b in bats)
            hordered = first.props.hordered
            alignment = None
        result = func.impl(*arrays)
    atom = _result_atom(func, operands)
    tail = _column_from_array(atom, result)
    props = Props(hkey=hkey, hordered=hordered)
    return result_bat(head, tail, name=name, props=props,
                      alignment=alignment)


def _align_on_heads(bats, manager):
    """Natural join of all BATs on head values; returns positional
    carrier (positions into the first BAT) plus each BAT's tail values
    aligned to it.  Requires head-unique operands beyond the first."""
    first = bats[0]
    positions = np.arange(len(first), dtype=np.int64)
    manager.access_column(first.head)
    aligned_positions = [positions]
    for other in bats[1:]:
        if not other.props.hkey:
            raise OperatorError(
                "multiplex alignment needs head-unique operands")
        manager.access_column(other.head)
        view = result_bat(first.head.take(positions),
                          first.head.take(positions))
        left_pos, right_pos = join_positions(view, other)
        positions = positions[left_pos]
        aligned_positions = [p[left_pos] for p in aligned_positions]
        aligned_positions.append(right_pos)
    arrays = []
    for bat, pos in zip(bats, aligned_positions):
        manager.access_column(bat.tail, pos)
        arrays.append(bat.tail.logical()[pos])
    return positions, arrays


def _result_atom(func, operands):
    if isinstance(func.result_atom, _atoms.Atom):
        return func.result_atom
    atoms_in = [op.tail.atom if hasattr(op, "head") else _scalar_atom(op)
                for op in operands]
    return func.result_atom(atoms_in)


def _scalar_atom(value):
    if isinstance(value, bool):
        return _atoms.BOOL
    if isinstance(value, int):
        return _atoms.INT if -(2**31) <= value < 2**31 else _atoms.LONG
    if isinstance(value, float):
        return _atoms.DOUBLE
    if isinstance(value, str):
        return _atoms.STRING if len(value) != 1 else _atoms.STRING
    raise OperatorError("cannot type scalar %r" % (value,))


def _column_from_array(atom, array):
    if atom.varsized:
        return column_from_values(atom, list(array))
    return FixedColumn(atom, np.asarray(array, dtype=atom.dtype))


# ----------------------------------------------------------------------
# built-in function library
# ----------------------------------------------------------------------
def _numeric_result(atoms_in):
    numeric = [a for a in atoms_in if _atoms.is_numeric(a)]
    if not numeric:
        raise OperatorError("arithmetic needs numeric operands")
    out = numeric[0]
    for spec in numeric[1:]:
        out = _atoms.common_numeric(out, spec)
    return out


def _div_result(atoms_in):
    # division always yields double, like MIL's '/' on mixed operands
    return _atoms.DOUBLE


def _first_atom(atoms_in):
    return atoms_in[0]


def _second_atom(atoms_in):
    return atoms_in[1]


def _year(days):
    dates = np.asarray(days, dtype="datetime64[D]")
    return dates.astype("datetime64[Y]").astype(np.int64) + 1970


def _month(days):
    dates = np.asarray(days, dtype="datetime64[D]")
    years = dates.astype("datetime64[Y]")
    months = dates.astype("datetime64[M]")
    return (months - years.astype("datetime64[M]")).astype(np.int64) + 1


def _str_op(fn):
    def impl(values, pattern):
        return np.fromiter((fn(v, pattern) for v in values), dtype=bool,
                           count=len(values))
    return impl


register_function("+", lambda a, b: np.asarray(a) + np.asarray(b),
                  _numeric_result, 2)
register_function("-", lambda a, b: np.asarray(a) - np.asarray(b),
                  _numeric_result, 2)
register_function("*", lambda a, b: np.asarray(a) * np.asarray(b),
                  _numeric_result, 2)
register_function("/", lambda a, b: np.asarray(a, dtype=np.float64)
                  / np.asarray(b), _div_result, 2)
register_function("neg", lambda a: -np.asarray(a), _first_atom, 1)
register_function("=", lambda a, b: np.asarray(a == b, dtype=bool),
                  _atoms.BOOL, 2)
register_function("!=", lambda a, b: np.asarray(a != b, dtype=bool),
                  _atoms.BOOL, 2)
register_function("<", lambda a, b: np.asarray(a < b, dtype=bool),
                  _atoms.BOOL, 2)
register_function("<=", lambda a, b: np.asarray(a <= b, dtype=bool),
                  _atoms.BOOL, 2)
register_function(">", lambda a, b: np.asarray(a > b, dtype=bool),
                  _atoms.BOOL, 2)
register_function(">=", lambda a, b: np.asarray(a >= b, dtype=bool),
                  _atoms.BOOL, 2)
register_function("and", lambda a, b: np.asarray(a, dtype=bool)
                  & np.asarray(b, dtype=bool), _atoms.BOOL, 2)
register_function("or", lambda a, b: np.asarray(a, dtype=bool)
                  | np.asarray(b, dtype=bool), _atoms.BOOL, 2)
register_function("not", lambda a: ~np.asarray(a, dtype=bool),
                  _atoms.BOOL, 1)
register_function("year", _year, _atoms.INT, 1)
register_function("month", _month, _atoms.INT, 1)
register_function("startswith", _str_op(lambda v, p: v.startswith(p)),
                  _atoms.BOOL, 2)
register_function("endswith", _str_op(lambda v, p: v.endswith(p)),
                  _atoms.BOOL, 2)
register_function("contains", _str_op(lambda v, p: p in v),
                  _atoms.BOOL, 2)
register_function("ifthenelse",
                  lambda c, a, b: np.where(np.asarray(c, dtype=bool), a, b),
                  _second_atom, 3)
