"""Naive BUN-at-a-time reference kernels.

These are the pre-vectorisation algorithms — Python dicts, sets and
per-BUN ``for`` loops — kept as an executable specification.  Two
consumers:

* the differential/property tests, which assert the vectorised kernels
  in :mod:`repro.monet.vectorized` are BUN-for-BUN identical to these
  references for every atom mix;
* ``benchmarks/run_bench.py``, which times them against the vectorised
  operators so ``BENCH_operators.json`` records the measured speedup
  instead of a claim.

They are deliberately *not* wired into the operator dispatch: the
operators import :mod:`repro.monet.vectorized` only.
"""

import numpy as np


def _items(keys):
    if getattr(keys, "dtype", None) == object:
        return enumerate(keys)
    return enumerate(keys.tolist())


def build_multimap(keys):
    """dict key -> list of positions, over an equality-key array."""
    table = {}
    for pos, key in _items(np.asarray(keys)):
        table.setdefault(key, []).append(pos)
    return table


def join_match(left_keys, right_keys):
    """(left_pos, right_pos) per matching pair; left-major, rights in
    build (ascending position) order."""
    table = build_multimap(right_keys)
    lefts = []
    rights = []
    for pos, key in _items(np.asarray(left_keys)):
        hits = table.get(key)
        if hits:
            lefts.extend([pos] * len(hits))
            rights.extend(hits)
    return (np.asarray(lefts, dtype=np.int64),
            np.asarray(rights, dtype=np.int64))


def membership_mask(left_keys, right_keys):
    """Per-BUN set probe membership test."""
    left_keys = np.asarray(left_keys)
    members = set(np.asarray(right_keys).tolist()
                  if getattr(right_keys, "dtype", None) != object
                  else right_keys)
    return np.fromiter((k in members for k in _values(left_keys)),
                       dtype=bool, count=len(left_keys))


def _values(keys):
    return keys if keys.dtype == object else keys.tolist()


def first_occurrence(codes):
    """First-occurrence positions of each code, in BUN order."""
    seen = set()
    positions = []
    for pos, code in _items(np.asarray(codes)):
        if code not in seen:
            seen.add(code)
            positions.append(pos)
    return np.asarray(positions, dtype=np.int64)


def grouped_sum(values, codes, n_groups):
    """Per-group sum with a Python accumulation loop."""
    values = np.asarray(values)
    sums = [0] * int(n_groups)
    for value, code in zip(values.tolist(),
                           np.asarray(codes).tolist()):
        sums[code] += value
    return np.asarray(sums, dtype=values.dtype)


def factorize(keys):
    """(codes, n_distinct) with one dict probe per BUN (first-seen
    order, which preserves equality — the only property the set-op and
    group kernels rely on)."""
    table = {}
    codes = np.empty(len(keys), dtype=np.int64)
    for pos, key in _items(np.asarray(keys)):
        code = table.get(key)
        if code is None:
            code = table[key] = len(table)
        codes[pos] = code
    return codes, len(table)


def lookup_first(right_keys, probe_keys):
    """First-match position per probe key, -1 when absent."""
    table = build_multimap(right_keys)
    out = np.full(len(probe_keys), -1, dtype=np.int64)
    for pos, key in _items(np.asarray(probe_keys)):
        hits = table.get(key)
        if hits:
            out[pos] = hits[0]
    return out
