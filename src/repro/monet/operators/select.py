"""Selections on BATs: ``AB.select(T)`` and ``AB.select(Tl, Th)``.

Figure 4 semantics::

    AB.select(Tl, Th) = { ab | ab in AB  and  Tl <= b <= Th }
    AB.select(T)      = { ab | ab in AB  and  b = T }

Two implementations exist, chosen at run time (section 5.1):

* ``binsearch`` — when the tail is known ``ordered``, a binary search
  finds the qualifying BUN range; the paper keeps all attribute BATs
  tail-sorted precisely to enable this ("in order to use binary search
  selection", section 5.2).  IO cost: a few probe pages plus the
  contiguous result range — the ``ceil(sX / C_bat)`` term of the
  section 5.2.2 model.
* ``scan`` — the generic fallback: one sequential pass over the tail.
"""

import numpy as np

from ..buffer import get_manager
from ..optimizer import get_optimizer
from .common import take_subsequence


def select_range(ab, low=None, high=None, name=None,
                 low_inclusive=True, high_inclusive=True):
    """Range selection on the tail column; ``None`` bound = open."""
    optimizer = get_optimizer()
    if optimizer.dynamic and ab.props.tordered and len(ab) > 0:
        optimizer.record("select", "binsearch")
        return _select_binsearch(ab, low, high, name,
                                 low_inclusive, high_inclusive)
    optimizer.record("select", "scan")
    return _select_scan(ab, low, high, name, low_inclusive, high_inclusive)


def select_eq(ab, value, name=None):
    """Point selection ``b = value`` on the tail column."""
    optimizer = get_optimizer()
    if optimizer.dynamic and ab.props.tordered and len(ab) > 0:
        optimizer.record("select", "binsearch")
        return _select_binsearch(ab, value, value, name, True, True)
    optimizer.record("select", "scan")
    encoded = ab.tail.encode(value) if not ab.tail.atom.varsized else None
    manager = get_manager()
    with manager.operator("select.scan"):
        manager.access_column(ab.tail)
        if ab.tail.atom.varsized:
            heap_index = ab.tail.encode(value)
            if heap_index is None:
                positions = np.empty(0, dtype=np.int64)
            else:
                positions = np.nonzero(ab.tail.keys() == heap_index)[0]
        else:
            positions = np.nonzero(ab.tail.keys() == encoded)[0]
        manager.access_column(ab.head, positions)
    return take_subsequence(ab, positions, name=name)


def _bounds_mask(values, low, high, low_inclusive, high_inclusive):
    mask = np.ones(len(values), dtype=bool)
    if low is not None:
        mask &= (values >= low) if low_inclusive else (values > low)
    if high is not None:
        mask &= (values <= high) if high_inclusive else (values < high)
    return mask


def _select_scan(ab, low, high, name, low_inclusive, high_inclusive):
    manager = get_manager()
    with manager.operator("select.scan"):
        manager.access_column(ab.tail)
        values = ab.tail.logical()
        if low is not None:
            low = ab.tail.atom.coerce(low)
        if high is not None:
            high = ab.tail.atom.coerce(high)
        mask = _bounds_mask(values, low, high, low_inclusive, high_inclusive)
        positions = np.nonzero(mask)[0]
        manager.access_column(ab.head, positions)
    return take_subsequence(ab, positions, name=name)


def _select_binsearch(ab, low, high, name, low_inclusive, high_inclusive):
    manager = get_manager()
    with manager.operator("select.binsearch"):
        values = ab.tail.logical()
        n = len(values)
        if low is not None:
            low = ab.tail.atom.coerce(low)
            side = "left" if low_inclusive else "right"
            lo_pos = int(np.searchsorted(values, low, side=side))
        else:
            lo_pos = 0
        if high is not None:
            high = ab.tail.atom.coerce(high)
            side = "right" if high_inclusive else "left"
            hi_pos = int(np.searchsorted(values, high, side=side))
        else:
            hi_pos = n
        hi_pos = max(lo_pos, hi_pos)
        # probes to locate the range, then a sequential read of it
        for heap in ab.tail.heaps:
            width = getattr(heap, "width", None) or 1
            manager.access_probes(heap, 2, n, width)
        positions = np.arange(lo_pos, hi_pos, dtype=np.int64)
        manager.access_column(ab.tail, positions)
        manager.access_column(ab.head, positions)
    out = ab.slice(lo_pos, hi_pos, name=name)
    out.props = ab.props.copy()
    if lo_pos == 0 and hi_pos == len(ab):
        out.alignment = ab.alignment
    return out
