"""Semijoin: ``AB.semijoin(CD) = { ab | ab in AB, exists cd: a = c }``.

"The semijoin operation is important, since it is heavily used for
re-assembling vertically partitioned fragments" (section 4.2).  Four
implementations exist, dispatched at run time on operand state
(sections 5.1 and 5.2.1):

* ``syncsemijoin`` — the operands are *synced* (identical head
  sequences), so the result is just a copy of the left operand: "the
  most particular variant".
* ``datavectorsemijoin`` — the left operand carries a datavector
  accelerator (section 5.2.1): oids of the right operand are looked up
  in the sorted class extent with probe-based binary search, the
  resulting LOOKUP array is cached per right operand (the "blazed
  trail"), and values are fetched positionally from the value vector.
  The result is produced in *right* operand order, so two datavector
  semijoins against the same selection are synced with each other.
* ``mergesemijoin`` — both head columns ordered: vectorised
  binary-search membership with sequential access.
* ``hashsemijoin`` — the generic fallback.

``antijoin`` (``{ ab | a not in heads(CD) }``) is the complement,
needed by set difference and NOT EXISTS-style queries.
"""

import numpy as np

from ..accelerators.datavector import has_datavector
from ..buffer import get_manager
from ..column import equality_keys
from ..optimizer import get_optimizer
from ..properties import Props, synced
from ..vectorized import membership_mask
from .common import result_bat, take_subsequence


def semijoin(ab, cd, name=None):
    """Dispatch over the four variants; see module docstring."""
    optimizer = get_optimizer()
    if optimizer.dynamic and synced(ab, cd):
        optimizer.record("semijoin", "syncsemijoin")
        return _syncsemijoin(ab, name)
    if (optimizer.dynamic and has_datavector(ab) and cd.props.hkey
            and not cd.head.atom.varsized):
        optimizer.record("semijoin", "datavectorsemijoin")
        return _datavectorsemijoin(ab, cd, name)
    if (optimizer.dynamic and ab.props.hordered and cd.props.hordered
            and not ab.head.atom.varsized and not cd.head.atom.varsized):
        optimizer.record("semijoin", "mergesemijoin")
        return _mergesemijoin(ab, cd, name)
    optimizer.record("semijoin", "hashsemijoin")
    return _hashsemijoin(ab, cd, name)


def antijoin(ab, cd, name=None):
    """``{ ab | a not in heads(CD) }`` — complement of semijoin."""
    manager = get_manager()
    with manager.operator("antijoin"):
        mask = _membership_mask(ab, cd, manager)
        positions = np.nonzero(~mask)[0]
        manager.access_column(ab.tail, positions)
    return take_subsequence(ab, positions, name=name)


def _membership_mask(ab, cd, manager):
    # fixed-width atoms go through the sort-based np.isin kernel; the
    # per-BUN Python set probe survives only for object-dtype keys.
    # membership_mask self-chunks the probe side under an installed
    # ParallelConfig (one shared sorted right side, per-chunk probes
    # merged in plan order), so large semijoins fan across workers
    # while the mask stays BUN-identical to the serial kernel
    left_keys, right_keys = equality_keys(ab.head, cd.head)
    manager.access_column(ab.head)
    manager.access_column(cd.head)
    return membership_mask(left_keys, right_keys)


def _syncsemijoin(ab, name):
    # synced operands: every left BUN qualifies; return a copy
    out = ab.take(np.arange(len(ab), dtype=np.int64), name=name,
                  alignment=ab.alignment)
    out.props = ab.props.copy()
    return out


def _hashsemijoin(ab, cd, name):
    manager = get_manager()
    with manager.operator("semijoin.hash"):
        mask = _membership_mask(ab, cd, manager)
        positions = np.nonzero(mask)[0]
        manager.access_column(ab.tail, positions)
    out = take_subsequence(ab, positions, name=name)
    if len(out) != len(ab):
        out.alignment = ("semijoin", ab.alignment, cd.identity)
    return out


def _mergesemijoin(ab, cd, name):
    manager = get_manager()
    with manager.operator("semijoin.merge"):
        left_keys, right_keys = equality_keys(ab.head, cd.head)
        manager.access_column(ab.head)
        manager.access_column(cd.head)
        positions_r = np.searchsorted(right_keys, left_keys)
        positions_r = np.clip(positions_r, 0, max(0, len(right_keys) - 1))
        if len(right_keys):
            mask = right_keys[positions_r] == left_keys
        else:
            mask = np.zeros(len(left_keys), dtype=bool)
        positions = np.nonzero(mask)[0]
        manager.access_column(ab.tail, positions)
    out = take_subsequence(ab, positions, name=name)
    if len(out) != len(ab):
        out.alignment = ("semijoin", ab.alignment, cd.identity)
    return out


def _datavectorsemijoin(ab, cd, name):
    # paper section 5.2.1 pseudo code: EXTENT/VECTOR fetch through the
    # cached LOOKUP array; result in right-operand (cd) order.
    manager = get_manager()
    accel = ab.accel["datavector"]
    registry = accel.registry
    with manager.operator("semijoin.datavector"):
        extent_pos, _right_pos = registry.lookup(cd)
        head = registry.extent_column.take(extent_pos)
        tail = accel.vector.take(extent_pos)
        for heap in accel.vector.heaps:
            width = getattr(heap, "width", None) or 4
            manager.access_positions(heap, extent_pos, width)
    props = Props(hkey=True, hordered=bool(cd.props.hordered))
    return result_bat(head, tail, name=name, props=props,
                      alignment=("dv", registry.class_name, cd.identity))
