"""Set operations on BATs: unique, union, difference, intersection.

Figure 4 defines ``AB.unique = { ab | ab in AB }`` (duplicate BUNs
removed); union/difference/intersection are "omitted for brevity" in
the paper but part of MIL.  All four work on whole BUNs (head *and*
tail); the ``k``-prefixed variants (``kdiff``, ``kintersect``) compare
on heads only and serve the MOA set operations over identified value
sets, where element identity is the id.

First-occurrence order is preserved, so ordered/key properties of the
left operand survive.

BUNs are compared through dense int64 *pair codes* (head and tail
equality keys factorised jointly across both operands, then combined
into one code per BUN — see :mod:`repro.monet.vectorized`), so the
membership and dedup scans run as ``np.isin``/``np.unique`` over
contiguous arrays instead of per-BUN Python set probes.  Object-dtype
keys (never produced by the column layouts, which compare var atoms on
heap indices) fall back to the tuple-and-set path.

NaN tails follow IEEE semantics, exactly like the join/semijoin
kernels and the tuple-and-set reference: a NaN equals nothing, itself
included, so a BUN with a NaN tail is never a duplicate, never a
member of the other operand, and survives ``unique`` untouched.  (The
coded paths used to inherit ``np.unique``'s ``equal_nan`` collapse,
which silently diverged from the naive kernels; :func:`factorize` now
assigns every NaN key its own code.)

Membership and dedup scans self-chunk under an installed
:class:`~repro.monet.parallel.ParallelConfig` — the direct-address (or
sorted) right side is built once and probed per chunk — with chunk
masks merged in plan order, so parallel results are BUN-identical.
"""

import numpy as np

from ..buffer import get_manager
from ..column import equality_keys
from ..optimizer import get_optimizer
from ..vectorized import (combine_codes, combine_codes_pair, factorize,
                          first_occurrence, joint_codes,
                          membership_mask)
from .common import take_subsequence
from .semijoin import antijoin, semijoin
from ..bat import concat_bats


def _bun_codes(ab, cd=None):
    """Per-BUN int64 pair codes for one or two BATs.

    Returns ``(left_codes, right_codes, domain)`` (``right_codes`` is
    ``None`` without a second operand); equal codes mean equal (head,
    tail) BUN pairs, within and across the operands, and every code is
    below ``domain``.  Falls back to :func:`_pair_keys` tuples (``None``
    result) for object-dtype keys.
    """
    hk_a, hk_c = (equality_keys(ab.head, cd.head) if cd is not None
                  else (ab.head.keys(), None))
    tk_a, tk_c = (equality_keys(ab.tail, cd.tail) if cd is not None
                  else (ab.tail.keys(), None))
    if any(k is not None and np.asarray(k).dtype == object
           for k in (hk_a, hk_c, tk_a, tk_c)):
        return None
    if cd is None:
        h_codes, n_h = factorize(hk_a)
        t_codes, n_t = factorize(tk_a)
        return (combine_codes(h_codes, t_codes, n_t), None,
                max(1, n_h) * max(1, n_t))
    h_left, h_right, n_h = joint_codes(hk_a, hk_c)
    t_left, t_right, n_t = joint_codes(tk_a, tk_c)
    # the pair form keeps both operands jointly coded even when the
    # head x tail product would overflow int64 (wide offset-coded
    # domains); its returned domain bound is also the tighter one
    return combine_codes_pair(h_left, t_left, h_right, t_right, n_t)


def _pair_keys(ab, cd=None):
    """Tuple pair-keys fallback for object-dtype equality keys."""
    hk_a, hk_c = (equality_keys(ab.head, cd.head) if cd is not None
                  else (ab.head.keys(), None))
    tk_a, tk_c = (equality_keys(ab.tail, cd.tail) if cd is not None
                  else (ab.tail.keys(), None))
    left = list(zip(hk_a.tolist() if hk_a.dtype != object else hk_a,
                    tk_a.tolist() if tk_a.dtype != object else tk_a))
    if cd is None:
        return left, None
    right = list(zip(hk_c.tolist() if hk_c.dtype != object else hk_c,
                     tk_c.tolist() if tk_c.dtype != object else tk_c))
    return left, right


def unique(ab, name=None):
    """Remove duplicate BUNs, keeping first occurrences."""
    optimizer = get_optimizer()
    manager = get_manager()
    if optimizer.dynamic and (ab.props.hkey or ab.props.tkey):
        # a key column means no BUN can repeat: result = copy
        optimizer.record("unique", "noop")
        out = ab.take(np.arange(len(ab), dtype=np.int64), name=name,
                      alignment=ab.alignment)
        out.props = ab.props.copy()
        return out
    optimizer.record("unique", "hash")
    with manager.operator("unique"):
        manager.access_bat(ab)
        codes = _bun_codes(ab)
        if codes is not None:
            positions = first_occurrence(codes[0])
        else:
            pairs, _unused = _pair_keys(ab)
            seen = set()
            positions = []
            for pos, pair in enumerate(pairs):
                if pair not in seen:
                    seen.add(pair)
                    positions.append(pos)
            positions = np.asarray(positions, dtype=np.int64)
    return take_subsequence(ab, positions, name=name)


def union(ab, cd, name=None):
    """BUN-set union, left BUNs first, duplicates removed."""
    manager = get_manager()
    with manager.operator("union"):
        manager.access_bat(ab)
        manager.access_bat(cd)
        combined = concat_bats([ab, cd], name=name)
    return unique(combined, name=name)


def difference(ab, cd, name=None):
    """BUNs of ``ab`` that do not occur in ``cd``."""
    manager = get_manager()
    with manager.operator("difference"):
        manager.access_bat(ab)
        manager.access_bat(cd)
        codes = _bun_codes(ab, cd)
        if codes is not None:
            left_codes, right_codes, domain = codes
            positions = np.nonzero(~membership_mask(
                left_codes, right_codes, domain=domain))[0]
        else:
            left, right = _pair_keys(ab, cd)
            members = set(right)
            positions = np.asarray(
                [pos for pos, pair in enumerate(left)
                 if pair not in members], dtype=np.int64)
    return take_subsequence(ab, positions, name=name)


def intersection(ab, cd, name=None):
    """BUNs of ``ab`` that also occur in ``cd`` (deduplicated)."""
    manager = get_manager()
    with manager.operator("intersection"):
        manager.access_bat(ab)
        manager.access_bat(cd)
        codes = _bun_codes(ab, cd)
        if codes is not None:
            left_codes, right_codes, domain = codes
            shared = np.nonzero(membership_mask(
                left_codes, right_codes, domain=domain))[0]
            positions = shared[first_occurrence(left_codes[shared])]
        else:
            left, right = _pair_keys(ab, cd)
            members = set(right)
            seen = set()
            positions = []
            for pos, pair in enumerate(left):
                if pair in members and pair not in seen:
                    seen.add(pair)
                    positions.append(pos)
            positions = np.asarray(positions, dtype=np.int64)
    return take_subsequence(ab, positions, name=name)


def kdiff(ab, cd, name=None):
    """Head-wise difference: ``{ ab | a not in heads(CD) }``."""
    return antijoin(ab, cd, name=name)


def kintersect(ab, cd, name=None):
    """Head-wise intersection — an alias of semijoin."""
    return semijoin(ab, cd, name=name)
