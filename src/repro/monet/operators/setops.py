"""Set operations on BATs: unique, union, difference, intersection.

Figure 4 defines ``AB.unique = { ab | ab in AB }`` (duplicate BUNs
removed); union/difference/intersection are "omitted for brevity" in
the paper but part of MIL.  All four work on whole BUNs (head *and*
tail); the ``k``-prefixed variants (``kdiff``, ``kintersect``) compare
on heads only and serve the MOA set operations over identified value
sets, where element identity is the id.

First-occurrence order is preserved, so ordered/key properties of the
left operand survive.
"""

import numpy as np

from ..buffer import get_manager
from ..column import equality_keys
from ..optimizer import get_optimizer
from .common import take_subsequence
from .semijoin import antijoin, semijoin
from ..bat import concat_bats


def _pair_keys(ab, cd=None):
    """Comparable (pair-key arrays) for one or two BATs.

    Keys are Python tuples (exact, hashable); vectorising this with
    factorised int64 pairs is possible but tuples keep the code simple
    and correct for every atom mix.
    """
    hk_a, hk_c = (equality_keys(ab.head, cd.head) if cd is not None
                  else (ab.head.keys(), None))
    tk_a, tk_c = (equality_keys(ab.tail, cd.tail) if cd is not None
                  else (ab.tail.keys(), None))
    left = list(zip(hk_a.tolist() if hk_a.dtype != object else hk_a,
                    tk_a.tolist() if tk_a.dtype != object else tk_a))
    if cd is None:
        return left, None
    right = list(zip(hk_c.tolist() if hk_c.dtype != object else hk_c,
                     tk_c.tolist() if tk_c.dtype != object else tk_c))
    return left, right


def unique(ab, name=None):
    """Remove duplicate BUNs, keeping first occurrences."""
    optimizer = get_optimizer()
    manager = get_manager()
    if optimizer.dynamic and (ab.props.hkey or ab.props.tkey):
        # a key column means no BUN can repeat: result = copy
        optimizer.record("unique", "noop")
        out = ab.take(np.arange(len(ab), dtype=np.int64), name=name,
                      alignment=ab.alignment)
        out.props = ab.props.copy()
        return out
    optimizer.record("unique", "hash")
    with manager.operator("unique"):
        manager.access_bat(ab)
        pairs, _unused = _pair_keys(ab)
        seen = set()
        positions = []
        for pos, pair in enumerate(pairs):
            if pair not in seen:
                seen.add(pair)
                positions.append(pos)
    return take_subsequence(ab, np.asarray(positions, dtype=np.int64),
                            name=name)


def union(ab, cd, name=None):
    """BUN-set union, left BUNs first, duplicates removed."""
    manager = get_manager()
    with manager.operator("union"):
        manager.access_bat(ab)
        manager.access_bat(cd)
        combined = concat_bats([ab, cd], name=name)
    return unique(combined, name=name)


def difference(ab, cd, name=None):
    """BUNs of ``ab`` that do not occur in ``cd``."""
    manager = get_manager()
    with manager.operator("difference"):
        manager.access_bat(ab)
        manager.access_bat(cd)
        left, right = _pair_keys(ab, cd)
        members = set(right)
        positions = [pos for pos, pair in enumerate(left)
                     if pair not in members]
    return take_subsequence(ab, np.asarray(positions, dtype=np.int64),
                            name=name)


def intersection(ab, cd, name=None):
    """BUNs of ``ab`` that also occur in ``cd`` (deduplicated)."""
    manager = get_manager()
    with manager.operator("intersection"):
        manager.access_bat(ab)
        manager.access_bat(cd)
        left, right = _pair_keys(ab, cd)
        members = set(right)
        seen = set()
        positions = []
        for pos, pair in enumerate(left):
            if pair in members and pair not in seen:
                seen.add(pair)
                positions.append(pos)
    return take_subsequence(ab, np.asarray(positions, dtype=np.int64),
                            name=name)


def kdiff(ab, cd, name=None):
    """Head-wise difference: ``{ ab | a not in heads(CD) }``."""
    return antijoin(ab, cd, name=name)


def kintersect(ab, cd, name=None):
    """Head-wise intersection — an alias of semijoin."""
    return semijoin(ab, cd, name=name)
