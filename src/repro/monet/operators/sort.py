"""Ordering operators: sort, multi-key sort positions, top-N slices.

Monet keeps attribute BATs *tail-sorted* ("we then reordered all tables
on tail values", section 6); :func:`sort_tail` is that reorder.  The
TPC-D queries additionally need multi-attribute ORDER BY and top-N
(Figure 9: "find top-10 valuable orders"), provided by
:func:`sort_positions` and :func:`slice_bunches`.
"""

import numpy as np

from ..buffer import get_manager
from ..properties import Props, fresh_alignment
from .common import result_bat


def sort_tail(ab, ascending=True, name=None):
    """Stable reorder of the BUNs by tail value."""
    manager = get_manager()
    with manager.operator("sort"):
        manager.access_bat(ab)
        ranks = np.asarray(ab.tail.order_keys())
        order = np.argsort(ranks, kind="stable")
        if not ascending:
            order = order[::-1]
    out = ab.take(order, name=name, alignment=fresh_alignment("sorted"))
    out.props = Props(hkey=ab.props.hkey, tkey=ab.props.tkey,
                      tordered=ascending)
    return out


def sort_head(ab, ascending=True, name=None):
    """Stable reorder of the BUNs by head value."""
    return sort_tail(ab.mirror(), ascending=ascending,
                     name=name).mirror()


def sort_positions(columns, descending=None):
    """Permutation ordering rows by multiple key columns.

    ``columns`` are :class:`~repro.monet.column.Column` objects of equal
    length; ``descending`` is a parallel list of bools (default: all
    ascending).  Later keys break ties of earlier keys, as in SQL
    ORDER BY.  Stable.
    """
    if descending is None:
        descending = [False] * len(columns)
    keys = []
    # np.lexsort sorts by the LAST key first, so feed keys reversed
    for column, desc in zip(reversed(columns), reversed(descending)):
        ranks = np.asarray(column.order_keys(), dtype=np.int64) \
            if column.atom.varsized else np.asarray(column.order_keys())
        if desc:
            if ranks.dtype.kind in "iu":
                ranks = -ranks.astype(np.int64)
            else:
                ranks = -ranks
        keys.append(ranks)
    if not keys:
        return np.arange(0, dtype=np.int64)
    return np.lexsort(keys)


def slice_bunches(ab, lo, hi, name=None):
    """BUNs in positions ``[lo, hi)`` — MIL's slice, used for top-N."""
    manager = get_manager()
    with manager.operator("slice"):
        positions = np.arange(max(0, lo), min(len(ab), hi), dtype=np.int64)
        manager.access_bat(ab, positions)
    out = ab.slice(max(0, lo), min(len(ab), hi), name=name)
    out.props = ab.props.copy()
    return out
