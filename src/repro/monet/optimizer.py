"""Dynamic (run-time) operator optimization, paper sections 2 and 5.1.

"The Monet kernel generally contains multiple implementations for each
algebraic operation. ... Depending on the state of the system, and the
state of the operands, a run-time choice between the available
algorithms can be made."

The dispatch *policy* lives inside each operator module (it inspects
the operand properties and accelerators); this module provides:

* a process-global switch to disable property-driven dispatch (every
  operator then falls back to its generic hash/scan implementation),
  used by the ablation benchmark A2;
* recording of which implementation ran, so tests can assert that the
  expected variant was chosen and benchmarks can report dispatch
  statistics.
"""

import contextlib
from collections import Counter


class Optimizer:
    """Dispatch switch + per-implementation counters."""

    def __init__(self, dynamic=True, eliminate_dead=False):
        #: When False, operators ignore properties/accelerators and use
        #: their generic implementation (ablation A2).
        self.dynamic = dynamic
        #: When True, the rewriter drops MIL statements whose results
        #: the result rep never observes (dead-code elimination driven
        #: by the analysis layer's liveness pass).  Off by default:
        #: the paper's plans are emitted verbatim unless asked.
        self.eliminate_dead = eliminate_dead
        #: Counter of "op:impl" strings.
        self.stats = Counter()
        #: Most recent implementation per op, for tests.
        self.last = {}

    def record_dce(self, removed):
        """Note that dead-code elimination dropped ``removed`` stmts."""
        if removed:
            self.stats["dce:removed"] += removed

    def record(self, op, impl):
        """Note that operator ``op`` executed implementation ``impl``."""
        self.stats["%s:%s" % (op, impl)] += 1
        self.last[op] = impl

    def reset(self):
        self.stats.clear()
        self.last.clear()


_current = Optimizer()


def get_optimizer():
    return _current


def set_optimizer(optimizer):
    global _current
    _current = optimizer


@contextlib.contextmanager
def use(optimizer):
    """Temporarily install a different optimizer (or policy switch)."""
    global _current
    previous = _current
    _current = optimizer
    try:
        yield optimizer
    finally:
        _current = previous


@contextlib.contextmanager
def dispatch_disabled():
    """Run a block with property-driven dispatch switched off."""
    opt = Optimizer(dynamic=False)
    with use(opt):
        yield opt
