"""Chunked parallel execution of the vectorised kernels.

The paper's performance argument rests on every operator running as a
tight loop over contiguous arrays; this layer is the multi-core
continuation of that argument.  A BAT's position range is split into
*horizontal chunks* sized to a fixed byte budget (a fraction of L2 — a
handful of the pager's 4 KB pages), and the per-chunk kernel work is
fanned over a thread pool.  numpy releases the GIL inside the hot
primitives (``argsort``, ``searchsorted``, ``isin``/``unique``,
``reduceat``, ``bincount``), so chunks genuinely run concurrently on
multi-core hosts while the Python layer only plans and merges.

Determinism contract
--------------------

* The chunk **plan** depends only on ``chunk_bytes`` and the operand
  size — never on the worker count.
* Every chunk-aware kernel merges its per-chunk results **in chunk
  order** (left-major order preserved).

Together these make results bit-identical across worker counts: a
``workers=1`` run and a ``workers=4`` run execute the same chunks and
the same merges, so the CI equality gate can diff them byte for byte.

The layer is **off by default** (``get_config()`` is ``None``): the
serial kernels run unchanged, and fault-simulation traces — including
``--validate`` runs against the real pager — stay exactly those of the
single-threaded execution.  Operators account their page touches from
the calling thread only (see
:meth:`~repro.monet.buffer.BufferManager.access_positions_chunks`),
so enabling the layer never changes a Figure 9/10 fault trace either.
"""

import contextlib
import os
import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = [
    "DEFAULT_CHUNK_BYTES", "DEFAULT_MIN_ROWS", "ParallelConfig",
    "get_config", "set_config", "use", "plan_chunks", "chunk_plan",
    "run_chunks", "shutdown_pools",
]

#: Default horizontal chunk budget: 64 KiB of key bytes per chunk —
#: 16 pager pages, comfortably inside one L2 slice, and large enough
#: that the per-task pool overhead stays well under the kernel time.
DEFAULT_CHUNK_BYTES = 1 << 16

#: Below this many rows an operand is never chunked: thread hand-off
#: costs more than the whole serial kernel.
DEFAULT_MIN_ROWS = 4096


class ParallelConfig:
    """Execution policy for the chunked kernels.

    Parameters
    ----------
    workers:
        Thread-pool size.  ``None`` picks ``os.cpu_count()`` (capped at
        8).  ``workers=1`` still *chunks* — the plan and merges are
        identical to any other worker count — but runs the chunks in
        the calling thread, which is what the determinism gate diffs
        against.
    chunk_bytes:
        Byte budget per horizontal chunk; the planner converts it to a
        row count per operand width.  This is the only knob the chunk
        plan depends on.
    min_rows:
        Size threshold: operands smaller than this stay on the serial
        kernels even when the layer is installed.
    """

    __slots__ = ("workers", "chunk_bytes", "min_rows")

    def __init__(self, workers=None, chunk_bytes=DEFAULT_CHUNK_BYTES,
                 min_rows=DEFAULT_MIN_ROWS):
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.workers = max(1, int(workers))
        self.chunk_bytes = max(1, int(chunk_bytes))
        self.min_rows = max(1, int(min_rows))

    def plan(self, n_rows, width=8):
        """Chunk ranges for ``n_rows`` entries of ``width`` bytes.

        Returns ``None`` when the operand is below the size threshold
        or fits in a single chunk (then the serial kernel is the right
        tool); otherwise a list of ``(lo, hi)`` half-open ranges that
        partition ``range(n_rows)`` in ascending order.
        """
        if n_rows < self.min_rows:
            return None
        rows = max(1, self.chunk_bytes // max(1, int(width)))
        if n_rows <= rows:
            return None
        return plan_chunks(n_rows, rows)

    def __repr__(self):
        return ("ParallelConfig(workers=%d, chunk_bytes=%d, min_rows=%d)"
                % (self.workers, self.chunk_bytes, self.min_rows))


def plan_chunks(n_rows, rows_per_chunk):
    """``(lo, hi)`` ranges of ``rows_per_chunk`` covering ``n_rows``."""
    rows_per_chunk = max(1, int(rows_per_chunk))
    return [(lo, min(lo + rows_per_chunk, n_rows))
            for lo in range(0, int(n_rows), rows_per_chunk)]


#: The installed config; ``None`` = layer off, serial kernels only.
_current = None

_pools = {}
_pool_lock = threading.Lock()


def get_config():
    """The active :class:`ParallelConfig`, or ``None`` when disabled."""
    return _current


def set_config(config):
    """Install ``config`` globally (``None`` disables the layer)."""
    global _current
    _current = config


@contextlib.contextmanager
def use(config):
    """Context manager installing ``config`` for the duration."""
    global _current
    previous = _current
    _current = config
    try:
        yield config
    finally:
        _current = previous


def chunk_plan(n_rows, width=8):
    """The active config's chunk plan for an operand, or ``None``.

    This is the single gate every chunk-aware kernel asks: ``None``
    means "stay serial" (layer off, operand too small, or one chunk).
    """
    config = _current
    if config is None:
        return None
    return config.plan(n_rows, width)


def _pool(workers):
    with _pool_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = _pools[workers] = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-chunk")
        return pool


def shutdown_pools():
    """Join and drop every cached worker pool (test hygiene)."""
    with _pool_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)


def run_chunks(fn, plan):
    """``[fn(lo, hi) for lo, hi in plan]``, fanned over the pool.

    Results come back **in plan order** regardless of completion
    order, so merges by concatenation preserve left-major order.  With
    ``workers=1`` (or a single chunk) the chunks run inline in the
    calling thread — same plan, same merge, no pool.
    """
    config = _current
    if config is None or config.workers <= 1 or len(plan) <= 1:
        return [fn(lo, hi) for lo, hi in plan]
    pool = _pool(config.workers)
    return list(pool.map(lambda chunk: fn(chunk[0], chunk[1]), plan))
