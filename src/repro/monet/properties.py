"""BAT property management (paper section 5.1).

Monet keeps per-column properties on every permanent and intermediate
BAT and uses them for run-time ("dynamic") optimization:

* ``ordered(BAT)`` — the column is stored in ascending order,
* ``key(BAT)`` — the column contains no duplicates,
* ``synced(BAT1, BAT2)`` — the BUNs of the two BATs correspond by
  position (most commonly: identical head columns).

``ordered`` and ``key`` are plain booleans per column, held in
:class:`Props`.  ``synced`` is implemented through *alignment tokens*:
every BAT carries a hashable token describing the identity and order of
its head column; two BATs of equal length whose tokens are equal are
synced.  Operators propagate tokens deliberately — e.g. two semijoins
of different attribute BATs against the *same* right operand produce
results with the same token, which is exactly the situation the paper
exploits in the Q13 trace ("the Monet kernel knows that the BATs
prices and discount are synced").

:func:`verify` recomputes every declared property from the actual data
and raises :class:`~repro.errors.PropertyError` on any mismatch; the
test suite runs it after every operator.
"""

import itertools

import numpy as np

from ..errors import PropertyError

_ALIGN_IDS = itertools.count(1)


def fresh_alignment(tag="anon"):
    """A brand-new alignment token, synced with nothing else."""
    return (tag, next(_ALIGN_IDS))


def mirror_alignment(token):
    """Alignment of a BAT's mirror; an involution."""
    if isinstance(token, tuple) and len(token) == 2 and token[0] == "mirror":
        return token[1]
    return ("mirror", token)


def synced(left, right):
    """True when the two BATs are positionally aligned (section 5.1)."""
    return (left.alignment is not None
            and left.alignment == right.alignment
            and len(left) == len(right))


class Props:
    """``ordered``/``key`` flags for head and tail of one BAT.

    The flags are *conservative*: ``False`` means "not known to hold",
    never "known not to hold".  Operators may only set a flag when the
    property is guaranteed by construction.
    """

    __slots__ = ("hkey", "hordered", "tkey", "tordered")

    def __init__(self, hkey=False, hordered=False, tkey=False, tordered=False):
        self.hkey = hkey
        self.hordered = hordered
        self.tkey = tkey
        self.tordered = tordered

    def swapped(self):
        """Props of the mirrored BAT (head and tail exchanged)."""
        return Props(hkey=self.tkey, hordered=self.tordered,
                     tkey=self.hkey, tordered=self.hordered)

    def copy(self):
        return Props(self.hkey, self.hordered, self.tkey, self.tordered)

    def __repr__(self):
        bits = []
        if self.hkey:
            bits.append("hkey")
        if self.hordered:
            bits.append("hordered")
        if self.tkey:
            bits.append("tkey")
        if self.tordered:
            bits.append("tordered")
        return "Props(%s)" % ", ".join(bits)

    def __eq__(self, other):
        return (isinstance(other, Props)
                and self.hkey == other.hkey
                and self.hordered == other.hordered
                and self.tkey == other.tkey
                and self.tordered == other.tordered)


def _is_ordered(keys):
    if len(keys) <= 1:
        return True
    return bool(np.all(keys[:-1] <= keys[1:]))


def _is_key(keys):
    if len(keys) <= 1:
        return True
    if keys.dtype == object:
        return len(set(keys)) == len(keys)
    return len(np.unique(keys)) == len(keys)


def compute_props(bat):
    """Recompute the full property set of a BAT from its data."""
    head_order = bat.head.order_keys()
    tail_order = bat.tail.order_keys()
    return Props(hkey=_is_key(head_order), hordered=_is_ordered(head_order),
                 tkey=_is_key(tail_order), tordered=_is_ordered(tail_order))


def verify(bat):
    """Check every *declared* property against the data.

    Declared-but-false properties are bugs (they would let the dynamic
    optimizer pick an incorrect implementation); undeclared-but-true
    properties are merely missed opportunities and pass the check.
    """
    actual = compute_props(bat)
    declared = bat.props
    for flag in ("hkey", "hordered", "tkey", "tordered"):
        if getattr(declared, flag) and not getattr(actual, flag):
            raise PropertyError(
                "BAT %r declares %s but the data violates it"
                % (bat.name or "<anonymous>", flag))
    return True
