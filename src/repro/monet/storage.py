"""Pluggable heap storage: persist a BAT catalog, reopen it via mmap.

The real Monet maps BAT heaps straight into virtual memory (paper
section 2: "it has no page-based buffer manager ... lets the MMU do
the job in hardware"), so a loaded database is just a directory of
heap files plus a catalog.  This module reproduces that design for the
kernel in :mod:`repro.monet.kernel`:

* :class:`HeapStorage` — the backend interface.  Two implementations
  exist: :class:`MemoryBackend` (arrays held in a process-local dict,
  the degenerate "current behaviour" transport used by tests) and
  :class:`MmapBackend` (one raw little-endian file per heap under a
  directory, reopened as ``np.memmap`` views).
* a JSON **catalog manifest** (``catalog.json``) describing every BAT:
  name, head/tail atom types and layouts, the declared properties
  (key/ordered), alignment groups (so ``synced`` relationships survive
  a reopen), plus accelerator heaps — datavectors and hash indexes.
* :func:`save_kernel` / :func:`open_kernel` — bulk persistence for a
  whole :class:`~repro.monet.kernel.MonetKernel` catalog.  Reopened
  fixed-width columns are served as zero-copy ``np.memmap`` views and
  var heaps decode lazily, so opening a database touches no heap
  pages.
* residency helpers (:func:`mapped_file_rss`,
  :func:`resident_page_count`, :func:`residency_report`) that compare
  the *simulated* page-fault accounting of
  :mod:`repro.monet.buffer` against the pages the OS actually faulted
  into the process for the mapped files — turning the paper's central
  observable into a testable claim.
* the **shared-catalog protocol** that makes one saved directory safe
  for many concurrent processes (:class:`CatalogLock`,
  :func:`catalog_generation`).  The manifest carries a monotonically
  increasing *generation counter*; every save acquires an exclusive
  advisory file lock (``catalog.lock``, ``flock``), bumps the counter
  and rewrites the manifest atomically (write-temp + rename), and
  every open reads the manifest and maps its heap files under a shared
  lock.  Because heap files are only ever replaced via ``rename`` and
  never truncated in place, a reader that already mapped a heap keeps
  reading its opened generation untouched (the old inodes stay alive
  under the mappings) — a writer can never tear pages out from under
  an open reader.  A reader that loses the race between reading a
  manifest and mapping its files (the writer pruned them first) sees a
  :class:`~repro.errors.HeapError`, detects the generation moved, and
  retries on the new manifest; see :func:`open_kernel`.

File layout (all arrays little-endian, ``tofile`` raw format)::

    <dir>/catalog.json            the manifest (written last)
    <dir>/<bat>.head.col          FixedColumn data array
    <dir>/<bat>.tail.idx          VarColumn heap-index array (int32)
    <dir>/vh<N>.off, vh<N>.body   VarHeap offsets (int64) + NUL-
                                  terminated UTF-8 bodies
    <dir>/<bat>.dv.*              datavector value vector per attribute
    <dir>/<bat>.<slot>.order/.keys  hash accelerator arrays
"""

import contextlib
import json
import mmap as _mmap
import os
import time

try:
    import fcntl
except ImportError:                          # non-POSIX: advisory
    fcntl = None                             # locking degrades to no-op

import numpy as np

from .. import faults
from ..errors import (CatalogChangedError, CatalogError,
                      CatalogLockTimeout, HeapError, StaleCatalogError)
from . import atoms as _atoms
from .accelerators.datavector import DataVector, DataVectorRegistry
from .accelerators.hashidx import HashIndex
from .bat import BAT
from .column import FixedColumn, VarColumn, VoidColumn
from .heap import MappedVarHeap, VarHeap
from .properties import Props, fresh_alignment
from .vectorized import MultiMap

FORMAT = "repro-bat-catalog"
VERSION = 1
MANIFEST = "catalog.json"
LOCKFILE = "catalog.lock"
PAGESIZE = _mmap.PAGESIZE

#: How long lock acquisition waits before CatalogLockTimeout.
DEFAULT_LOCK_TIMEOUT = 10.0

#: How often open_kernel re-reads the manifest after losing the race
#: against a concurrent save (files pruned between manifest read and
#: heap mapping) before giving up with CatalogChangedError.
OPEN_RETRIES = 3

_PROP_FLAGS = ("hkey", "hordered", "tkey", "tordered")

#: Chaos injection points of the save path (see :mod:`repro.faults`).
#: ``torn`` points use the ``tear`` action (the site writes a short
#: payload, then raises or crashes); the rest honour ``raise``/
#: ``crash``/``delay``.  All are no-ops without an installed plan.
faults.declare(
    "storage.save.begin", "storage.save.heaps_written",
    "storage.save.manifest_written",
    "storage.write_array.torn", "storage.write_array.staged",
    "storage.write_array.synced", "storage.write_array.renamed",
    "storage.manifest.torn", "storage.manifest.staged",
    "storage.manifest.synced", "storage.manifest.renamed",
)


# ----------------------------------------------------------------------
# shared-catalog locking
# ----------------------------------------------------------------------
class _NullLock:
    """Degenerate lock: in-process backends need no file locking."""

    #: in-process storage has no cross-process writers to race, so a
    #: null lock counts as held (no lockless-race recheck needed)
    held = True

    @contextlib.contextmanager
    def shared(self, timeout=None):
        yield self

    @contextlib.contextmanager
    def exclusive(self, timeout=None):
        yield self


class CatalogLock:
    """Advisory ``flock`` on ``<dir>/catalog.lock``.

    Writers (:func:`save_kernel`) hold the *exclusive* lock across the
    whole save — heap-file writes, manifest rename and pruning — so two
    writers never interleave and a reader never observes a manifest
    whose files are being pruned mid-open.  Readers
    (:func:`open_kernel`) hold the *shared* lock only while reading the
    manifest and mapping its heap files; once mapped, the inodes stay
    alive regardless of later renames/unlinks, so readers drop the lock
    immediately and queries run lock-free.

    ``flock`` has no native timeout, so acquisition polls non-blocking
    until ``timeout`` elapses and then raises
    :class:`~repro.errors.CatalogLockTimeout`.  Re-entrant per
    instance (a depth counter — backends hand out one cached instance
    per directory) so ``save_tpcd`` can hold the writer lock around a
    kernel save plus extra section writes.  On platforms without
    ``fcntl`` the lock degrades to a no-op, and *readers* also degrade
    to lock-free when the lock file cannot be created (missing
    directory, read-only media) — opening a catalog never mutates the
    filesystem; the retry-on-rewrite path in :func:`open_kernel`
    covers the lockless race.
    """

    _POLL_S = 0.01

    def __init__(self, path):
        self.path = os.fspath(path)
        self._fd = None
        self._depth = 0
        self._exclusive = False

    @contextlib.contextmanager
    def _acquire(self, exclusive, timeout):
        if fcntl is None:
            yield self
            return
        if self._depth:
            if exclusive and not self._exclusive:
                raise CatalogError(
                    "cannot upgrade a shared catalog lock to exclusive")
            self._depth += 1
            try:
                yield self
            finally:
                self._depth -= 1
            return
        if timeout is None:
            timeout = DEFAULT_LOCK_TIMEOUT
        try:
            if exclusive:
                # writers are about to create files anyway
                os.makedirs(os.path.dirname(self.path) or ".",
                            exist_ok=True)
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            if exclusive:
                raise
            # readers degrade to lock-free rather than mutating the
            # filesystem: the directory may not exist (a typo'd open
            # must not litter it into existence) or the catalog may
            # live on read-only media, where no writer can race us
            # anyway and the manifest is still one atomic file
            yield self
            return
        deadline = time.monotonic() + timeout
        flag = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        while True:
            try:
                fcntl.flock(fd, flag | fcntl.LOCK_NB)
                break
            except (BlockingIOError, InterruptedError):
                # held by someone else (or interrupted): poll on
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise CatalogLockTimeout(
                        "%s catalog lock on %s still held after %.2fs"
                        % ("exclusive" if exclusive else "shared",
                           self.path, timeout)) from None
                time.sleep(self._POLL_S)
            except OSError:
                # a real locking failure (e.g. ENOLCK on a share
                # without lock support) must surface immediately,
                # not masquerade as a timeout
                os.close(fd)
                raise
        self._fd = fd
        self._depth = 1
        self._exclusive = exclusive
        try:
            yield self
        finally:
            self._depth -= 1
            if not self._depth:
                fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)
                self._fd = None
                self._exclusive = False

    def shared(self, timeout=None):
        """Context manager holding the reader (shared) lock."""
        return self._acquire(False, timeout)

    def exclusive(self, timeout=None):
        """Context manager holding the writer (exclusive) lock."""
        return self._acquire(True, timeout)

    @property
    def held(self):
        return self._depth > 0


def _le(dtype):
    """The little-endian variant of a numpy dtype (stored format).

    ``dtype.str`` resolves native byte order ('=') to the concrete
    '<'/'>' character, so this converts on big-endian hosts too.
    """
    dtype = np.dtype(dtype)
    if dtype.str.startswith(">"):
        return dtype.newbyteorder("<")
    return dtype


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class HeapStorage:
    """Backend interface: named flat arrays plus one JSON manifest."""

    def write_array(self, name, array):
        raise NotImplementedError

    def read_array(self, name, dtype, length):
        """The named array as ``dtype[length]``; raises HeapError."""
        raise NotImplementedError

    def write_manifest(self, manifest):
        raise NotImplementedError

    def read_manifest(self):
        """The manifest dict; raises CatalogError when absent/corrupt."""
        raise NotImplementedError

    def exists(self):
        """True when a manifest has been written to this backend."""
        raise NotImplementedError

    def prune(self, keep, keep_prefix=None):
        """Drop stored arrays not named in ``keep`` (best effort).

        ``keep_prefix`` additionally protects every name starting with
        it — the in-flight save's own freshly written files."""

    def sweep_stale(self, manifest):
        """Recovery sweep: drop staging litter and orphaned heap files
        left behind by a save that crashed before its manifest rename
        (no-op for in-process backends — they cannot crash mid-save
        and survive)."""

    def sync_directory(self):
        """fsync the directory holding the catalog (no-op when the
        backend has no directory)."""

    def lock(self):
        """The backend's :class:`CatalogLock` (no-op when storage is
        process-local and needs no cross-process serialisation)."""
        return _NullLock()


class MemoryBackend(HeapStorage):
    """In-process storage: the current (memory-only) behaviour.

    Round-trips a catalog without touching disk; reads hand back the
    stored arrays directly, which is exactly what in-memory heaps do.
    """

    def __init__(self):
        self._arrays = {}
        self._manifest = None

    def write_array(self, name, array):
        self._arrays[name] = np.ascontiguousarray(array, dtype=_le(array.dtype))

    def read_array(self, name, dtype, length):
        try:
            array = self._arrays[name]
        except KeyError:
            raise HeapError("heap array %r missing from storage" % name) \
                from None
        dtype = np.dtype(dtype)
        if array.nbytes != dtype.itemsize * length:
            raise HeapError(
                "heap array %r truncated: %d bytes stored, manifest "
                "says %d" % (name, array.nbytes, dtype.itemsize * length))
        return array if array.dtype == dtype else array.view(dtype)

    def write_manifest(self, manifest):
        self._manifest = json.loads(json.dumps(manifest))

    def read_manifest(self):
        if self._manifest is None:
            raise CatalogError("no catalog manifest in storage")
        return json.loads(json.dumps(self._manifest))

    def exists(self):
        return self._manifest is not None

    def prune(self, keep, keep_prefix=None):
        for name in [n for n in self._arrays if n not in keep
                     and not (keep_prefix
                              and n.startswith(keep_prefix))]:
            del self._arrays[name]


class MmapBackend(HeapStorage):
    """Directory-of-files storage reopened through ``np.memmap``."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._lock = None

    def _file(self, name):
        return os.path.join(self.path, name)

    def lock(self):
        # one cached instance per backend so nested acquisition inside
        # this process is re-entrant instead of self-deadlocking
        if self._lock is None:
            self._lock = CatalogLock(self._file(LOCKFILE))
        return self._lock

    def write_array(self, name, array):
        os.makedirs(self.path, exist_ok=True)
        array = np.ascontiguousarray(array, dtype=_le(array.dtype))
        # write-to-temp + fsync + rename: ``array`` may be an np.memmap
        # of the destination itself (saving a kernel back to the
        # directory it was opened from) — truncating in place would
        # SIGBUS the copy; skipping the fsync would let the post-crash
        # filesystem keep the rename but drop the bytes
        staging = self._file(name + ".tmp")
        spec = faults.fire("storage.write_array.torn")
        if spec is not None:
            payload = array.tobytes()
            with open(staging, "wb") as handle:
                handle.write(payload[:int(len(payload)
                                          * spec.fraction)])
            spec.conclude()
        with open(staging, "wb") as handle:
            array.tofile(handle)
            handle.flush()
            faults.fire("storage.write_array.staged")
            os.fsync(handle.fileno())
        faults.fire("storage.write_array.synced")
        os.replace(staging, self._file(name))
        faults.fire("storage.write_array.renamed")

    def read_array(self, name, dtype, length):
        path = self._file(name)
        dtype = np.dtype(dtype)
        expected = dtype.itemsize * length
        try:
            actual = os.path.getsize(path)
        except OSError:
            raise HeapError("heap file %r missing from %s"
                            % (name, self.path)) from None
        if actual != expected:
            raise HeapError(
                "heap file %r truncated: %d bytes on disk, manifest "
                "says %d" % (name, actual, expected))
        if length == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(path, dtype=dtype, mode="r", shape=(length,))

    def write_manifest(self, manifest):
        os.makedirs(self.path, exist_ok=True)
        staging = self._file(MANIFEST + ".tmp")
        payload = json.dumps(manifest, indent=1, sort_keys=True) + "\n"
        spec = faults.fire("storage.manifest.torn")
        if spec is not None:
            with open(staging, "w") as handle:
                handle.write(payload[:int(len(payload)
                                          * spec.fraction)])
            spec.conclude()
        with open(staging, "w") as handle:
            handle.write(payload)
            handle.flush()
            faults.fire("storage.manifest.staged")
            os.fsync(handle.fileno())
        faults.fire("storage.manifest.synced")
        os.replace(staging, self._file(MANIFEST))
        faults.fire("storage.manifest.renamed")
        # one directory fsync after the manifest rename makes the whole
        # save durable: every heap file of this generation was fsynced
        # before its own rename, and all the renames live in this one
        # directory
        self.sync_directory()

    def read_manifest(self):
        path = self._file(MANIFEST)
        if not os.path.exists(path):
            raise CatalogError("no catalog manifest at %s" % path)
        try:
            with open(path) as handle:
                manifest = json.load(handle)
        except ValueError as exc:
            raise CatalogError("corrupt catalog manifest at %s: %s"
                               % (path, exc)) from None
        if not isinstance(manifest, dict):
            raise CatalogError("corrupt catalog manifest at %s: not an "
                               "object" % path)
        return manifest

    def exists(self):
        return os.path.exists(self._file(MANIFEST))

    #: suffixes this backend ever writes — pruning is limited to them
    #: so foreign files in the directory are never touched
    _OWNED_SUFFIXES = (".col", ".idx", ".off", ".body", ".order",
                       ".keys", ".extent", ".tmp")

    def prune(self, keep, keep_prefix=None):
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        for name in names:
            if name in keep or name == MANIFEST:
                continue
            if keep_prefix and name.startswith(keep_prefix):
                continue
            if not name.endswith(self._OWNED_SUFFIXES):
                continue
            try:
                os.unlink(self._file(name))
            except OSError:
                pass

    def sweep_stale(self, manifest):
        # everything the durable manifest references is kept; staging
        # ``.tmp`` litter and heap files of a crashed save's dead
        # generation are orphans with owned suffixes, so prune's
        # keep-set logic is exactly the recovery sweep
        try:
            self.prune(_manifest_files(manifest))
        except Exception:                        # best effort on open
            pass

    def sync_directory(self):
        if not hasattr(os, "O_DIRECTORY"):      # pragma: no cover
            return
        try:
            fd = os.open(self.path, os.O_RDONLY | os.O_DIRECTORY)
        except OSError:                          # pragma: no cover
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def as_backend(target):
    """Coerce a path (or pass a backend through) to a HeapStorage."""
    if isinstance(target, HeapStorage):
        return target
    return MmapBackend(target)


# ----------------------------------------------------------------------
# generation counter
# ----------------------------------------------------------------------
def catalog_generation(target):
    """The saved catalog's generation counter (0 for pre-protocol
    manifests that never recorded one); raises CatalogError when no
    manifest exists."""
    manifest = as_backend(target).read_manifest()
    return _generation_of(manifest)


def _generation_of(manifest):
    generation = manifest.get("generation", 0)
    if not isinstance(generation, int) or generation < 0:
        raise CatalogError("manifest generation %r is not a "
                           "non-negative integer" % (generation,))
    return generation


def _previous_generation(backend):
    """Last durable generation, treating absent/corrupt manifests as 0
    (a crashed save leaves no openable manifest; the counter must keep
    moving forward regardless)."""
    try:
        return _generation_of(backend.read_manifest())
    except CatalogError:
        return 0


def next_generation(target):
    """The generation the next save will assign.  Callers naming files
    for that save (e.g. the TPC-D loader's row-store section) must
    hold the exclusive catalog lock so the answer cannot move."""
    return _previous_generation(as_backend(target)) + 1


def generation_prefix(generation):
    """File-name prefix scoping heap files to one generation.

    Every save writes its heaps under fresh names (``g<N>.…``), so the
    previous generation's files are never renamed over or truncated:
    a save killed at *any* point before its manifest rename leaves the
    old generation byte-for-byte intact, and the new generation's
    half-written files are unreferenced orphans for the recovery
    sweep.  Pre-existing catalogs with unprefixed names keep opening
    unchanged — readers take file names from the manifest."""
    return "g%d." % generation


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def save_kernel(kernel, target, meta=None, extra=None,
                lock_timeout=None):
    """Persist a kernel catalog; returns the manifest dict.

    Every catalog BAT is written with its properties, alignment group
    and accelerator heaps (datavector value vectors and array-backed
    hash indexes); shared var heaps are written once and re-shared on
    open.  The manifest is written last, so a crashed save never
    leaves an openable-but-inconsistent database behind.

    The whole save runs under the backend's **exclusive** catalog lock
    and bumps the manifest's generation counter, so concurrent savers
    serialise and concurrent readers always observe a complete
    generation.  ``extra`` merges additional top-level sections into
    the manifest (e.g. the TPC-D loader's persisted row-store
    baseline); their referenced files are protected from pruning.
    """
    backend = as_backend(target)
    with backend.lock().exclusive(lock_timeout):
        return _save_kernel_locked(kernel, backend, meta, extra)


def _save_kernel_locked(kernel, backend, meta, extra):
    generation = _previous_generation(backend) + 1
    prefix = generation_prefix(generation)
    # recovery sweep before writing anything: a previously crashed
    # save may have left ``.tmp`` staging litter or orphaned heap
    # files of a dead generation behind.  Files of *this* save's
    # generation are protected — the TPC-D loader writes its row-store
    # section under the same prefix before delegating here (inside the
    # same re-entrant exclusive lock).
    try:
        backend.prune(_manifest_files(backend.read_manifest()),
                      keep_prefix=prefix)
    except (CatalogError, KeyError):
        backend.prune(set(), keep_prefix=prefix)
    faults.fire("storage.save.begin")
    groups = _AlignmentGroups()
    var_heaps = {}
    bats = {}
    registries = dict(kernel.registries)
    for name in kernel.names():
        bat = kernel.get(name)
        entry = {
            "head": _save_column(backend, var_heaps, prefix,
                                 name + ".head", bat.head),
            "tail": _save_column(backend, var_heaps, prefix,
                                 name + ".tail", bat.tail),
            "props": [flag for flag in _PROP_FLAGS
                      if getattr(bat.props, flag)],
            "alignment": groups.index_of(bat.alignment),
        }
        accel = _save_accelerators(backend, var_heaps, prefix, name,
                                   bat, registries)
        if accel:
            entry["accel"] = accel
        bats[name] = entry
    datavectors = {}
    for class_name, registry in sorted(registries.items()):
        # when the registry's extent column is a catalog BAT's head
        # (the create_datavectors construction), record the share so
        # the reopen re-attaches the same heap — otherwise the fault
        # accounting would charge extent pages to two distinct heaps
        shared = _extent_bat_of(kernel, registry)
        if shared is not None:
            datavectors[class_name] = {"extent_bat": shared}
            continue
        stem = prefix + "_dv.%s.extent" % class_name
        backend.write_array(stem, np.asarray(registry.extent,
                                             dtype=np.int64))
        datavectors[class_name] = {"extent": {
            "file": stem, "dtype": "<i8",
            "length": len(registry.extent)}}
    faults.fire("storage.save.heaps_written")
    manifest = {
        "format": FORMAT,
        "version": VERSION,
        "generation": generation,
        "meta": dict(meta or {}),
        "alignment_groups": groups.tags,
        "var_heaps": var_heaps,
        "bats": bats,
        "datavectors": datavectors,
    }
    for key, section in sorted((extra or {}).items()):
        if key in manifest:
            raise CatalogError("extra manifest section %r collides "
                               "with a reserved key" % key)
        manifest[key] = section
    backend.write_manifest(manifest)
    faults.fire("storage.save.manifest_written")
    # with the new manifest durable, drop files it no longer
    # references (heap ids are process-global, so a re-save would
    # otherwise strand the previous save's files forever).  Readers
    # that mapped the previous generation keep their inodes alive;
    # only the directory entries go.
    backend.prune(_manifest_files(manifest))
    return manifest


def _manifest_files(manifest):
    """Every storage name a manifest references (pruning keep-set)."""
    keep = set()

    def column_files(spec):
        if spec.get("file"):
            keep.add(spec["file"])

    for entry in manifest["bats"].values():
        column_files(entry["head"])
        column_files(entry["tail"])
        accel = entry.get("accel", {})
        if "datavector" in accel:
            column_files(accel["datavector"]["vector"])
        for slot in ("hash", "hash_tail"):
            if slot in accel:
                keep.add(accel[slot]["order"])
                keep.add(accel[slot]["keys"])
    for spec in manifest["var_heaps"].values():
        keep.add(spec["offsets"])
        keep.add(spec["body"])
    for entry in manifest.get("datavectors", {}).values():
        if "extent" in entry:
            keep.add(entry["extent"]["file"])
    for table in manifest.get("rowstore", {}).get("tables", {}).values():
        for spec in table.values():
            column_files(spec)
    return keep


def _extent_bat_of(kernel, registry):
    """Catalog BAT whose head column backs the registry's extent."""
    extent_heaps = {heap.heap_id for heap in
                    registry.extent_column.heaps}
    if not extent_heaps:
        return None
    for name in kernel.names():
        head = kernel.get(name).head
        if any(heap.heap_id in extent_heaps for heap in head.heaps):
            return name
    return None


class _AlignmentGroups:
    """Token -> dense group index, remembering each group's tag."""

    def __init__(self):
        self._index = {}
        self.tags = []

    def index_of(self, token):
        if token is None:
            return None
        index = self._index.get(token)
        if index is None:
            index = self._index[token] = len(self.tags)
            tag = token[0] if (isinstance(token, tuple) and token
                               and isinstance(token[0], str)) else "anon"
            self.tags.append(tag)
        return index


def _save_column(backend, var_heaps, prefix, stem, column):
    if isinstance(column, VoidColumn):
        return {"kind": "void", "seqbase": column.seqbase,
                "length": column.length}
    if isinstance(column, VarColumn):
        heap_key = _save_var_heap(backend, var_heaps, prefix,
                                  column.heap)
        file_name = prefix + stem + ".idx"
        backend.write_array(file_name, column.indices)
        return {"kind": "var", "atom": column.atom.name,
                "file": file_name, "dtype": "<i4",
                "length": len(column), "heap": heap_key,
                "label": column._index_heap.label}
    if isinstance(column, FixedColumn):
        dtype = _le(column.data.dtype)
        file_name = prefix + stem + ".col"
        backend.write_array(file_name, column.data)
        return {"kind": "fixed", "atom": column.atom.name,
                "file": file_name, "dtype": dtype.str,
                "length": len(column), "label": column._heap.label}
    raise CatalogError("cannot persist column type %s"
                       % type(column).__name__)


def _save_var_heap(backend, var_heaps, prefix, heap):
    key = "vh%d" % heap.heap_id
    if key in var_heaps:
        return key
    if isinstance(heap, MappedVarHeap) and not heap.decoded:
        offsets = np.asarray(heap._offsets, dtype=np.int64)
        body = np.asarray(heap._body, dtype=np.uint8)
    else:
        encoded = [value.encode("utf-8") for value in heap.values]
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        if encoded:
            np.cumsum([len(piece) + 1 for piece in encoded],
                      out=offsets[1:])
        body = np.frombuffer(b"".join(piece + b"\0" for piece in encoded),
                             dtype=np.uint8)
    backend.write_array(prefix + key + ".off", offsets)
    backend.write_array(prefix + key + ".body", body)
    var_heaps[key] = {"offsets": prefix + key + ".off",
                      "body": prefix + key + ".body",
                      "count": int(len(offsets) - 1),
                      "body_bytes": int(offsets[-1]) if len(offsets) else 0,
                      "label": heap.label}
    return key


def _save_accelerators(backend, var_heaps, prefix, name, bat,
                       registries):
    accel = {}
    vector = bat.accel.get("datavector")
    if vector is not None:
        registries.setdefault(vector.registry.class_name,
                              vector.registry)
        accel["datavector"] = {
            "class": vector.registry.class_name,
            "vector": _save_column(backend, var_heaps, prefix,
                                   name + ".dv", vector.vector),
        }
    for slot in ("hash", "hash_tail"):
        index = bat.accel.get(slot)
        if isinstance(index, HashIndex) and index.map.vectorised:
            order_file = "%s%s.%s.order" % (prefix, name, slot)
            keys_file = "%s%s.%s.keys" % (prefix, name, slot)
            backend.write_array(order_file,
                                np.asarray(index.map.order, dtype=np.int64))
            keys = np.asarray(index.map.sorted_keys)
            backend.write_array(keys_file, keys)
            accel[slot] = {"order": order_file, "keys": keys_file,
                           "dtype": _le(keys.dtype).str,
                           "length": int(index.n_entries),
                           "label": index.heap.label}
    return accel


# ----------------------------------------------------------------------
# open
# ----------------------------------------------------------------------
def open_with_protocol(backend, map_manifest, expected_generation=None,
                       lock_timeout=None, retries=OPEN_RETRIES):
    """Read the manifest and map its files under the open protocol.

    The one implementation of the reader side of the shared-catalog
    protocol, shared by :func:`open_kernel` and the rowstore baseline
    (:func:`repro.tpcd.rowstore.open_rowstore`): the manifest is read
    and ``map_manifest(manifest)`` invoked under the backend's shared
    lock; ``expected_generation`` pins the open (typed
    ``StaleCatalogError``/``CatalogChangedError`` on mismatch); a
    :class:`~repro.errors.HeapError` from ``map_manifest`` with a
    moved generation retries on the new manifest, as does a
    *lock-free* open (no ``fcntl``, unwritable lock file) whose
    generation moved mid-mapping without tripping a ``HeapError``
    (same file names, same sizes — only a save still in flight on
    such a platform remains undetectable).  Returns
    ``(result, generation)``.
    """
    attempt = 0
    while True:
        lock = backend.lock()
        with lock.shared(lock_timeout):
            manifest = backend.read_manifest()
            generation = _generation_of(manifest)
            if expected_generation is not None \
                    and generation != expected_generation:
                if generation < expected_generation:
                    raise StaleCatalogError(
                        "stale manifest: generation %d on disk, caller "
                        "expects %d" % (generation, expected_generation))
                raise CatalogChangedError(
                    "catalog was rewritten: generation %d on disk, "
                    "caller pinned %d" % (generation,
                                          expected_generation))
            try:
                result = map_manifest(manifest)
            except HeapError as exc:
                # a writer replaced the catalog between our manifest
                # read and the heap mapping (lockless reader or no
                # fcntl): if the generation moved, retry on the new
                # manifest; otherwise the database is really damaged
                if expected_generation is None and attempt < retries \
                        and _previous_generation(backend) != generation:
                    attempt += 1
                    continue
                if _previous_generation(backend) != generation:
                    raise CatalogChangedError(
                        "catalog was rewritten while opening "
                        "generation %d" % generation) from exc
                raise
            if not lock.held \
                    and _previous_generation(backend) != generation:
                if expected_generation is None and attempt < retries:
                    attempt += 1
                    continue
                raise CatalogChangedError(
                    "catalog was rewritten while opening generation "
                    "%d (lock-free reader)" % generation)
            if lock.held:
                # recovery sweep: under the shared lock no writer can
                # be staging files, so every ``.tmp`` and every
                # unreferenced heap file is litter from a crashed
                # save.  Lock-free readers must not sweep — they could
                # race a live writer's staging files.
                backend.sweep_stale(manifest)
            return result, generation


def open_kernel(target, buffer_manager=None, kernel=None,
                expected_generation=None, lock_timeout=None,
                retries=OPEN_RETRIES):
    """Reopen a saved catalog; returns a populated MonetKernel.

    Columns come back as ``np.memmap`` views (mmap backend) and var
    heaps decode lazily, so no heap data is read eagerly; properties
    are restored from the manifest rather than recomputed, and BATs of
    one alignment group come back mutually synced.

    Shared-catalog protocol: the manifest is read and its heap files
    mapped under the backend's *shared* lock, so a concurrent save
    (exclusive lock) can never prune files out from under the mapping
    pass.  ``expected_generation`` pins the open to one generation —
    an older manifest raises :class:`~repro.errors.StaleCatalogError`,
    a newer one :class:`~repro.errors.CatalogChangedError` (the worker
    fan-out uses this so every process provably serves the same
    snapshot).  Without a pin, losing the race between reading the
    manifest and mapping its files (possible when the reader skipped
    the lock, or on backends without ``fcntl``) retries on the newer
    manifest up to ``retries`` times.  The returned kernel records
    ``kernel.generation`` and ``kernel.origin``.
    """
    from .kernel import MonetKernel

    backend = as_backend(target)
    kernel_factory = (type(kernel) if kernel is not None
                      else MonetKernel)
    calls = {"count": 0}

    def map_manifest(manifest):
        _check_manifest(manifest)
        calls["count"] += 1
        target_kernel = kernel if calls["count"] == 1 \
            and kernel is not None else kernel_factory(buffer_manager)
        return _open_manifest(backend, manifest, target_kernel,
                              buffer_manager)

    opened, generation = open_with_protocol(
        backend, map_manifest, expected_generation=expected_generation,
        lock_timeout=lock_timeout, retries=retries)
    opened.generation = generation
    opened.origin = backend
    return opened


def _open_manifest(backend, manifest, kernel, buffer_manager):
    from .kernel import MonetKernel, mark_persistent

    if kernel is None:
        kernel = MonetKernel(buffer_manager)
    tokens = [fresh_alignment(tag) for tag in manifest["alignment_groups"]]
    for tag, token in zip(manifest["alignment_groups"], tokens):
        if tag.startswith("load:"):
            kernel._group_alignment.setdefault(tag[len("load:"):], token)
    opener = _Opener(backend, manifest["var_heaps"])
    entries = manifest["bats"]
    for name in sorted(entries):
        entry = entries[name]
        bat = BAT(opener.column(entry["head"]),
                  opener.column(entry["tail"]),
                  props=_open_props(entry.get("props", ())),
                  alignment=_token_of(tokens, entry.get("alignment")))
        mark_persistent(bat)
        kernel.register(name, bat)
    registries = {}
    for class_name, spec in sorted(manifest.get("datavectors",
                                                {}).items()):
        extent_bat = spec.get("extent_bat")
        extent_spec = spec.get("extent")
        if extent_bat is not None and extent_bat in kernel:
            # re-share the extent BAT's head heap (see save side)
            column = kernel.get(extent_bat).head
        elif extent_spec is not None:
            extent = _read_spec_array(backend, extent_spec)
            column = FixedColumn(_atoms.OID, extent, label=class_name)
            _note_mapped(column._heap, extent)
            column._heap.persistent = True
        else:
            raise CatalogError("datavector entry for %r has no extent"
                               % class_name)
        registry = DataVectorRegistry(class_name, column, check=False)
        registries[class_name] = registry
    kernel.registries.update(registries)
    for name in sorted(entries):
        _open_accelerators(opener, registries, entries[name],
                           kernel.get(name))
    return kernel


def _check_manifest(manifest):
    if manifest.get("format") != FORMAT:
        raise CatalogError("not a %s manifest (format=%r)"
                           % (FORMAT, manifest.get("format")))
    if not isinstance(manifest.get("version"), int) \
            or manifest["version"] > VERSION:
        raise CatalogError("manifest version %r is not supported "
                           "(this build reads <= %d)"
                           % (manifest.get("version"), VERSION))
    for key in ("alignment_groups", "var_heaps", "bats"):
        if key not in manifest:
            raise CatalogError("manifest misses required key %r" % key)


def _token_of(tokens, index):
    if index is None:
        return None
    if not isinstance(index, int) or not 0 <= index < len(tokens):
        raise CatalogError("alignment group %r out of range" % (index,))
    return tokens[index]


def _open_props(flags):
    unknown = [flag for flag in flags if flag not in _PROP_FLAGS]
    if unknown:
        raise CatalogError("unknown property flags %r in manifest"
                           % (unknown,))
    return Props(**{flag: True for flag in flags})


def _read_spec_array(backend, spec):
    try:
        return backend.read_array(spec["file"], spec["dtype"],
                                  spec["length"])
    except KeyError as exc:
        raise CatalogError("column spec misses key %s" % exc) from None


def _note_mapped(heap, *arrays):
    mapped = tuple(array for array in arrays
                   if isinstance(array, np.memmap))
    if mapped:
        heap.mapped = mapped


class _Opener:
    """Column/heap reader that de-duplicates shared var heaps."""

    def __init__(self, backend, var_specs):
        self.backend = backend
        self.var_specs = var_specs
        self._heaps = {}

    def column(self, spec):
        kind = spec.get("kind")
        if kind == "void":
            return VoidColumn(spec["seqbase"], spec["length"])
        if kind == "fixed":
            data = _read_spec_array(self.backend, spec)
            column = FixedColumn(_atoms.atom(spec["atom"]), data,
                                 label=spec.get("label", ""))
            _note_mapped(column._heap, column.data)
            return column
        if kind == "var":
            indices = _read_spec_array(self.backend, spec)
            heap = self.var_heap(spec["heap"])
            column = VarColumn(_atoms.atom(spec["atom"]), indices, heap,
                               label=spec.get("label", ""))
            _note_mapped(column._index_heap, column.indices)
            return column
        raise CatalogError("unknown column kind %r in manifest" % (kind,))

    def var_heap(self, key):
        heap = self._heaps.get(key)
        if heap is not None:
            return heap
        spec = self.var_specs.get(key)
        if spec is None:
            raise CatalogError("var heap %r missing from manifest" % key)
        offsets = self.backend.read_array(spec["offsets"], "<i8",
                                          spec["count"] + 1)
        body = self.backend.read_array(spec["body"], "|u1",
                                       spec["body_bytes"])
        heap = MappedVarHeap(offsets, body, label=spec.get("label", ""))
        self._heaps[key] = heap
        return heap


def _open_accelerators(opener, registries, entry, bat):
    accel = entry.get("accel")
    if not accel:
        return
    vector_spec = accel.get("datavector")
    if vector_spec is not None:
        registry = registries.get(vector_spec["class"])
        if registry is None:
            raise CatalogError(
                "BAT %r references unknown datavector class %r"
                % (bat.name, vector_spec["class"]))
        vector = opener.column(vector_spec["vector"])
        for heap in vector.heaps:
            heap.persistent = True
        bat.accel["datavector"] = DataVector(registry, vector)
    for slot in ("hash", "hash_tail"):
        spec = accel.get(slot)
        if spec is None:
            continue
        order = opener.backend.read_array(spec["order"], "<i8",
                                          spec["length"])
        keys = opener.backend.read_array(spec["keys"], spec["dtype"],
                                         spec["length"])
        index = HashIndex(MultiMap.from_sorted(order, keys),
                          label=spec.get("label", ""))
        _note_mapped(index.heap, order, keys)
        index.heap.persistent = True
        bat.accel[slot] = index


# ----------------------------------------------------------------------
# real-pager residency (Linux)
# ----------------------------------------------------------------------
def _smaps_rss_by_path():
    """path -> Rss bytes of this process's file mappings.

    One ``/proc/self/smaps`` parse covering every mapping (Linux);
    returns ``None`` when the accounting is unavailable.  This counts
    the pages our mappings actually faulted in — unlike ``mincore``,
    which reports page-cache residency and so counts pages cached by
    the writer too.
    """
    try:
        with open("/proc/self/smaps") as handle:
            lines = handle.read().splitlines()
    except OSError:
        return None
    totals = {}
    current = None
    for line in lines:
        fields = line.split(None, 5)
        first = fields[0] if fields else ""
        if "-" in first and all(c in "0123456789abcdef-" for c in first):
            # mapping header: "start-end perms offset dev inode [path]"
            current = fields[5] if len(fields) == 6 else None
        elif current is not None and line.startswith("Rss:"):
            totals[current] = totals.get(current, 0) \
                + int(line.split()[1]) * 1024
    return totals


def mapped_file_rss(path, rss_table=None):
    """Bytes of ``path`` faulted into *this* process's mappings.

    Pass a precomputed :func:`_smaps_rss_by_path` table when querying
    many files — each fresh parse walks every VMA of the process.
    """
    if path is None:
        return None
    if rss_table is None:
        rss_table = _smaps_rss_by_path()
    if rss_table is None:
        return None
    return rss_table.get(os.path.abspath(path), 0)


def resident_page_count(array, page_size=PAGESIZE):
    """Pages of a mapped array resident in memory, via ``mincore``.

    Reports page-cache residency of the mapped range; returns ``None``
    when ``mincore`` is unavailable (non-POSIX platforms).
    """
    import ctypes
    array = np.asanyarray(array)
    if array.nbytes == 0:
        return 0
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        mincore = libc.mincore
    except (OSError, AttributeError):
        return None
    address = array.__array_interface__["data"][0]
    start = address - (address % page_size)
    length = array.nbytes + (address - start)
    n_pages = -(-length // page_size)
    vec = (ctypes.c_ubyte * n_pages)()
    result = mincore(ctypes.c_void_p(start), ctypes.c_size_t(length), vec)
    if result != 0:
        return None
    return int(sum(byte & 1 for byte in vec))


def iter_catalog_heaps(kernel):
    """Every distinct heap behind the catalog, accelerators included."""
    seen = set()
    for name in kernel.names():
        bat = kernel.get(name)
        for column in (bat.head, bat.tail):
            for heap in column.heaps:
                if heap.heap_id not in seen:
                    seen.add(heap.heap_id)
                    yield heap
        vector = bat.accel.get("datavector")
        if vector is not None:
            for heap in vector.vector.heaps:
                if heap.heap_id not in seen:
                    seen.add(heap.heap_id)
                    yield heap
        for slot in ("hash", "hash_tail"):
            index = bat.accel.get(slot)
            if index is not None and index.heap.heap_id not in seen:
                seen.add(index.heap.heap_id)
                yield index.heap


def heap_resident_pages(heap, page_size=PAGESIZE, rss_table=None):
    """Real faulted-in pages of one mmap-backed heap, or ``None``."""
    arrays = getattr(heap, "mapped", None)
    if not arrays:
        return None
    if rss_table is None:
        rss_table = _smaps_rss_by_path()
    total = 0
    for array in arrays:
        rss = mapped_file_rss(getattr(array, "filename", None),
                              rss_table)
        if rss is None:
            return None
        total += rss
    return total // page_size


def residency_snapshot(kernel, page_size=PAGESIZE):
    """heap_id -> real resident pages, for every mmap-backed heap."""
    rss_table = _smaps_rss_by_path()
    snapshot = {}
    for heap in iter_catalog_heaps(kernel):
        pages = heap_resident_pages(heap, page_size, rss_table)
        if pages is not None:
            snapshot[heap.heap_id] = pages
    return snapshot


def residency_report(kernel, manager, before=None, page_size=PAGESIZE):
    """Simulated vs real page touches, per mmap-backed heap.

    ``manager`` must be a :class:`~repro.monet.buffer.BufferManager`
    created with ``track_pages=True`` that accounted the run;
    ``before`` is an optional :func:`residency_snapshot` taken before
    the run, subtracted from the real counts.  Returns a list of
    per-heap dicts plus a totals dict — the validation mode for the
    Figure 9/10 fault traces.
    """
    before = before or {}
    rss_table = _smaps_rss_by_path()
    rows = []
    total_sim = total_real = 0
    for heap in iter_catalog_heaps(kernel):
        real = heap_resident_pages(heap, page_size, rss_table)
        if real is None:
            continue
        real_delta = max(0, real - before.get(heap.heap_id, 0))
        simulated = len(manager.heap_pages.get(heap.heap_id, ()))
        if real_delta == 0 and simulated == 0:
            continue
        total_sim += simulated
        total_real += real_delta
        rows.append({
            "heap_id": heap.heap_id,
            "label": heap.label,
            "nbytes": int(heap.nbytes),
            "simulated_pages": int(simulated),
            "resident_pages": int(real_delta),
        })
    totals = {
        "simulated_pages": int(total_sim),
        "resident_pages": int(total_real),
        "page_size": int(page_size),
    }
    return rows, totals
