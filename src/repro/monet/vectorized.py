"""Vectorised kernels for the BAT-algebra hot paths.

The paper's performance argument (sections 5 and 6) rests on every
algebraic operator running as a tight loop over contiguous arrays —
"the columns of a BAT are simple memory arrays" — so the interpreted
reproduction must not hide a Python ``for`` loop behind each operator.
This module is the single home for the array-native primitives the
operator layer dispatches onto:

* :class:`MultiMap` — positions-by-key lookup built once per inner
  operand (argsort + ``searchsorted`` for fixed-width keys, a dict for
  object keys), replacing the per-BUN dict builds that used to live in
  ``operators/common.py`` and ``operators/join.py``.
* :func:`join_match` — equi-join position matching in left-major
  order, fully vectorised for fixed-width keys.
* :func:`membership_mask` — ``np.isin``-based membership for
  semijoin/antijoin and the set operations.
* :func:`factorize` / :func:`joint_codes` / :func:`first_occurrence`
  — dense integer coding of key (pairs), the building block for
  group/unique/set-op kernels.
* :func:`grouped_sum` — exact per-group sums via stable argsort +
  ``np.add.reduceat``.

Every kernel keeps a slow-path fallback for ``object``-dtype keys
(variable-size atoms normally compare on heap *indices*, so the
fallback only triggers for exotic key arrays), and each fast path is
BUN-for-BUN order-identical to the naive implementation it replaced:
left-major match order, ascending inner positions per key,
first-occurrence semantics for deduplication.

NaN keys follow IEEE semantics *everywhere*: a NaN never equals
anything, itself included — matching both the clipped-prefix probes of
:class:`MultiMap` and the dict references (Python dicts treat distinct
NaN objects as distinct keys).  The coded paths enforce this by
masking NaN keys to their own fresh codes instead of letting
``np.unique`` collapse them (its ``equal_nan`` default).

When a :class:`~repro.monet.parallel.ParallelConfig` is installed, the
probe/scan side of each kernel is split into horizontal chunks and
fanned over the worker pool; per-chunk results are merged in chunk
order, so chunked output is BUN-identical to the serial kernel's (for
the position/code kernels) and bit-identical across worker counts (for
every kernel, float sums included — the chunk plan never depends on
the worker count).
"""

import numpy as np

from . import parallel

__all__ = [
    "MultiMap", "join_match", "membership_mask", "factorize",
    "joint_codes", "combine_codes", "combine_codes_pair",
    "first_occurrence", "grouped_sum", "grouped_weighted_sum",
    "grouped_weighted_sum_plan", "merge_match_segments",
]


def _is_object(keys):
    return getattr(keys, "dtype", None) == object


#: Direct-address tables are built when the integer key domain spans at
#: most ``max(_DENSE_FLOOR, _DENSE_FACTOR * n)`` values.
_DENSE_FLOOR = 1 << 16
_DENSE_FACTOR = 4


class MultiMap:
    """Positions-by-key lookup over one key array.

    For fixed-width keys the map is *array-backed*: a stable argsort of
    the keys plus the sorted key array, so that every probe is a pair
    of binary searches and a slice — no Python-level hashing at all.
    Integer keys whose value domain is compact additionally get a
    *direct-address* table (per-key bucket boundaries indexed by
    ``key - base``), turning whole-column probes into pure array
    gathers — the positional-lookup trick Monet's void columns are
    built on.  Object-dtype keys (only reachable through exotic key
    arrays; var atoms compare on heap indices) fall back to a dict of
    position lists.

    Because the argsort is *stable*, positions of equal keys appear in
    ascending BUN order, exactly like the insertion-ordered dict the
    operators used to build — so match output order is unchanged.
    """

    __slots__ = ("n_entries", "order", "sorted_keys", "table",
                 "base", "starts", "_n_matchable")

    def __init__(self, keys):
        keys = np.asarray(keys)
        self.n_entries = len(keys)
        self.base = None
        self.starts = None
        if _is_object(keys):
            table = {}
            for pos, key in enumerate(keys):
                table.setdefault(key, []).append(pos)
            self.table = table
            self.order = None
            self.sorted_keys = None
            self._n_matchable = len(keys)
            return
        self.table = None
        self.order = np.argsort(keys, kind="stable")
        self.sorted_keys = keys[self.order]
        # NaN keys sort to the end; they must never match anything
        # (IEEE semantics, and what the dict reference does), so probes
        # are clipped to the finite prefix of the sorted keys.
        self._n_matchable = self.n_entries
        if self.sorted_keys.dtype.kind == "f":
            self._n_matchable = int(np.searchsorted(
                self.sorted_keys, np.inf, side="right"))
        if keys.dtype.kind in "iu" and self.n_entries:
            base = int(self.sorted_keys[0])
            domain = int(self.sorted_keys[-1]) - base + 1
            if domain <= max(_DENSE_FLOOR, _DENSE_FACTOR * self.n_entries):
                counts = np.bincount(
                    self.sorted_keys.astype(np.int64) - base,
                    minlength=domain)
                self.base = base
                self.starts = np.concatenate(
                    ([0], np.cumsum(counts))).astype(np.int64)

    @classmethod
    def from_sorted(cls, order, sorted_keys):
        """Rebuild a map from a persisted (order, sorted_keys) pair.

        Skips the argsort entirely — the storage layer saves hash
        accelerators as exactly these two arrays, so reopening a
        database re-attaches working indexes without touching the key
        data.  The direct-address table is *not* rebuilt (it would read
        every page); probes fall back to binary search until the index
        is rebuilt from live keys.
        """
        self = cls.__new__(cls)
        self.n_entries = len(order)
        self.base = None
        self.starts = None
        self.table = None
        self.order = order
        self.sorted_keys = sorted_keys
        self._n_matchable = self.n_entries
        if getattr(sorted_keys, "dtype", None) is not None \
                and sorted_keys.dtype.kind == "f" and self.n_entries:
            self._n_matchable = int(np.searchsorted(
                sorted_keys, np.inf, side="right"))
        return self

    @property
    def vectorised(self):
        return self.table is None

    def _dense_ranges(self, probe_keys):
        """(lo, hi) bucket bounds per probe via the direct-address
        table; absent keys get empty ranges."""
        probes = probe_keys.astype(np.int64, copy=False)
        kmax = self.base + len(self.starts) - 2
        valid = (probes >= self.base) & (probes <= kmax)
        idx = np.where(valid, probes - self.base, 0)
        lo = self.starts[idx]
        hi = np.where(valid, self.starts[idx + 1], lo)
        return lo, hi

    # ------------------------------------------------------------------
    # scalar probes (accelerator API)
    # ------------------------------------------------------------------
    def positions(self, key):
        """Positions whose key equals ``key``, ascending; ``()`` if none."""
        if self.table is not None:
            return self.table.get(key, ())
        lo = min(int(np.searchsorted(self.sorted_keys, key,
                                     side="left")), self._n_matchable)
        hi = min(int(np.searchsorted(self.sorted_keys, key,
                                     side="right")), self._n_matchable)
        if lo == hi:
            return ()
        return self.order[lo:hi]

    def first(self, key):
        """Smallest position holding ``key``, or ``None``."""
        hits = self.positions(key)
        return int(hits[0]) if len(hits) else None

    # ------------------------------------------------------------------
    # vector probes
    # ------------------------------------------------------------------
    def match(self, probe_keys):
        """All matches of ``probe_keys`` against the mapped keys.

        Returns ``(probe_pos, match_pos)`` int64 arrays in probe-major
        order with ascending match positions per probe — BUN-for-BUN
        the order the naive dict loop produced.  Under an installed
        :class:`~repro.monet.parallel.ParallelConfig` the probe side
        is chunked and matched on the worker pool; segments are merged
        in chunk order, so output is identical to the serial probe.
        """
        probe_keys = np.asarray(probe_keys)
        if self.table is not None or _is_object(probe_keys):
            return self._match_slow(probe_keys)
        segments = self.match_chunks(probe_keys)
        if segments is not None:
            return merge_match_segments(segments)
        return self._match_range(probe_keys, 0)

    def match_chunks(self, probe_keys):
        """Per-chunk match segments under the active parallel config.

        Returns ``[(lo, hi, probe_pos, match_pos), ...]`` — one entry
        per planned probe chunk, probe positions already rebased to the
        full probe array — or ``None`` when the parallel layer is off,
        the probe side is below the size threshold, or either side is
        dict-backed.  Operators that want per-chunk buffer accounting
        (see :meth:`BufferManager.access_positions_chunks`) call this
        directly and merge with :func:`merge_match_segments`.
        """
        probe_keys = np.asarray(probe_keys)
        if self.table is not None or _is_object(probe_keys):
            return None
        plan = parallel.chunk_plan(len(probe_keys),
                                   probe_keys.dtype.itemsize)
        if plan is None:
            return None

        def one(lo, hi):
            probe_pos, match_pos = self._match_range(probe_keys[lo:hi], lo)
            return (lo, hi, probe_pos, match_pos)

        return parallel.run_chunks(one, plan)

    def _match_range(self, probe_keys, base):
        """Serial match of one probe slice; probe positions offset by
        ``base`` so chunk outputs concatenate into the full answer."""
        if self.starts is not None and probe_keys.dtype.kind in "iu":
            lo, hi = self._dense_ranges(probe_keys)
        else:
            lo = np.minimum(np.searchsorted(self.sorted_keys, probe_keys,
                                            side="left"),
                            self._n_matchable)
            hi = np.minimum(np.searchsorted(self.sorted_keys, probe_keys,
                                            side="right"),
                            self._n_matchable)
        counts = hi - lo
        total = int(counts.sum())
        probe_pos = np.repeat(
            np.arange(len(probe_keys), dtype=np.int64), counts)
        if base:
            probe_pos += base
        if total == 0:
            return probe_pos, np.empty(0, dtype=np.int64)
        # ramp[j] walks lo[i] .. hi[i]-1 for each surviving probe i
        starts = np.cumsum(counts) - counts
        ramp = (np.arange(total, dtype=np.int64)
                - np.repeat(starts, counts)
                + np.repeat(lo.astype(np.int64), counts))
        return probe_pos, self.order[ramp].astype(np.int64)

    def _as_table(self):
        """Dict view of the mapping (for object-dtype probes)."""
        if self.table is not None:
            return self.table
        table = {}
        for rank, key in enumerate(self.sorted_keys.tolist()):
            table.setdefault(key, []).append(int(self.order[rank]))
        return table

    def _match_slow(self, probe_keys):
        table = self._as_table()
        lefts = []
        rights = []
        for pos, key in enumerate(probe_keys):
            hits = table.get(key)
            if hits:
                lefts.extend([pos] * len(hits))
                rights.extend(hits)
        return (np.asarray(lefts, dtype=np.int64),
                np.asarray(rights, dtype=np.int64))

    def lookup_first(self, probe_keys):
        """First-match position per probe key, ``-1`` when absent."""
        probe_keys = np.asarray(probe_keys)
        out = np.full(len(probe_keys), -1, dtype=np.int64)
        if self.table is not None or _is_object(probe_keys):
            table = self._as_table()
            for pos, key in enumerate(probe_keys):
                hits = table.get(key)
                if hits:
                    out[pos] = hits[0]
            return out
        if self.n_entries == 0:
            return out
        if self.starts is not None and probe_keys.dtype.kind in "iu":
            lo, hi = self._dense_ranges(probe_keys)
        else:
            lo = np.minimum(np.searchsorted(self.sorted_keys, probe_keys,
                                            side="left"),
                            self._n_matchable)
            hi = np.minimum(np.searchsorted(self.sorted_keys, probe_keys,
                                            side="right"),
                            self._n_matchable)
        found = hi > lo
        out[found] = self.order[lo[found]]
        return out

    def __len__(self):
        return self.n_entries


def join_match(left_keys, right_keys):
    """(left_pos, right_pos) of every equi-matching pair, left-major."""
    return MultiMap(right_keys).match(left_keys)


def merge_match_segments(segments):
    """Merge per-chunk match segments in chunk order (left-major).

    ``segments`` is the list :meth:`MultiMap.match_chunks` returns;
    concatenating in plan order reproduces exactly the serial
    probe-major output.
    """
    return (np.concatenate([seg[2] for seg in segments]),
            np.concatenate([seg[3] for seg in segments]))


#: A direct-address membership table is used when the (hinted) code
#: domain stays below this many entries — one transient byte each.
_TABLE_CAP = 1 << 22


def membership_mask(left_keys, right_keys, domain=None):
    """Boolean mask: ``left_keys[i] in right_keys``.

    Fixed-width keys go through ``np.isin`` (sort-based, no Python
    hashing); object keys keep the set probe.  When the keys are known
    non-negative codes bounded by ``domain`` (e.g. from
    :func:`joint_codes`) and the domain is compact, a direct-address
    bool table replaces the sort entirely.

    Under an installed parallel config the probe side is chunked: the
    right side is prepared once (bool table, or one shared sort) and
    each chunk probes it concurrently; chunk masks concatenate in plan
    order, identical to the serial mask.  NaN keys are members of
    nothing on every path (IEEE semantics, like the set reference).
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if _is_object(left_keys) or _is_object(right_keys):
        members = set(right_keys)
        return np.fromiter((k in members for k in left_keys),
                           dtype=bool, count=len(left_keys))
    if len(right_keys) == 0 or len(left_keys) == 0:
        return np.zeros(len(left_keys), dtype=bool)
    plan = parallel.chunk_plan(len(left_keys), left_keys.dtype.itemsize)
    if domain is not None and domain <= max(
            _TABLE_CAP, _DENSE_FACTOR * (len(left_keys)
                                         + len(right_keys))):
        table = np.zeros(int(domain), dtype=bool)
        table[right_keys] = True
        if plan is not None:
            return np.concatenate(parallel.run_chunks(
                lambda lo, hi: table[left_keys[lo:hi]], plan))
        return table[left_keys]
    if plan is not None:
        sorted_right = np.sort(right_keys)
        top = len(sorted_right) - 1

        def probe(lo, hi):
            chunk = left_keys[lo:hi]
            at = np.searchsorted(sorted_right, chunk, side="left")
            return (sorted_right[np.minimum(at, top)] == chunk) \
                & (at <= top)

        return np.concatenate(parallel.run_chunks(probe, plan))
    return np.isin(left_keys, right_keys)


def factorize(keys):
    """(codes, n_distinct): dense int64 code per key.

    Fixed-width keys get codes in *sorted* distinct-key order (the
    contract the group operators rely on for dense group oids); object
    keys get first-seen codes, which preserves equality but not order.

    NaN keys are **pairwise distinct** (IEEE: NaN != NaN, which is also
    what the dict reference computes): each NaN row receives its own
    fresh code after the finite codes, in BUN order — ``np.unique``'s
    ``equal_nan`` collapse is explicitly undone.  Chunked execution
    under a parallel config reproduces the serial coding exactly.
    """
    keys = np.asarray(keys)
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64), 0
    if _is_object(keys):
        table = {}
        codes = np.empty(len(keys), dtype=np.int64)
        for pos, key in enumerate(keys):
            code = table.get(key)
            if code is None:
                code = table[key] = len(table)
            codes[pos] = code
        return codes, len(table)
    plan = parallel.chunk_plan(len(keys), keys.dtype.itemsize)
    if plan is not None:
        return _factorize_chunked(keys, plan)
    if keys.dtype.kind == "f":
        nan_mask = np.isnan(keys)
        n_nan = int(nan_mask.sum())
        if n_nan:
            uniq, inverse = np.unique(keys[~nan_mask],
                                      return_inverse=True)
            codes = np.empty(len(keys), dtype=np.int64)
            codes[~nan_mask] = inverse
            codes[nan_mask] = len(uniq) + np.arange(n_nan,
                                                    dtype=np.int64)
            return codes, len(uniq) + n_nan
    uniq, inverse = np.unique(keys, return_inverse=True)
    return inverse.astype(np.int64), len(uniq)


def _factorize_chunked(keys, plan):
    """Chunked :func:`factorize`: per-chunk distinct scan, one merged
    domain, per-chunk coding — identical output to the serial kernel.

    Pass one collects each chunk's distinct finite keys (and NaN
    count); the merged sorted domain is built once; pass two codes
    every chunk by binary search into the shared domain.  NaN rows get
    ``n_finite + (global NaN ordinal)``, with per-chunk ordinal offsets
    from a serial prefix sum — the same codes the serial kernel
    assigns in BUN order.
    """
    is_float = keys.dtype.kind == "f"

    def distinct(lo, hi):
        chunk = keys[lo:hi]
        if is_float:
            finite = chunk[~np.isnan(chunk)]
            return np.unique(finite), len(chunk) - len(finite)
        return np.unique(chunk), 0

    scans = parallel.run_chunks(distinct, plan)
    uniq = np.unique(np.concatenate([uniq_c for uniq_c, _n in scans]))
    n_finite = len(uniq)
    nan_counts = [n for _uniq_c, n in scans]
    n_nan = sum(nan_counts)
    nan_offsets = {}
    running = n_finite
    for (lo, _hi), count in zip(plan, nan_counts):
        nan_offsets[lo] = running
        running += count

    def code(lo, hi):
        chunk = keys[lo:hi]
        out = np.searchsorted(uniq, chunk).astype(np.int64)
        if is_float:
            mask = np.isnan(chunk)
            hits = int(mask.sum())
            if hits:
                out[mask] = nan_offsets[lo] + np.arange(hits,
                                                        dtype=np.int64)
        return out

    codes = np.concatenate(parallel.run_chunks(code, plan))
    return codes, n_finite + n_nan


def joint_codes(left_keys, right_keys):
    """(left_codes, right_codes, n): one coding shared by both arrays.

    Equal keys receive equal codes across the two operands — the
    cross-operand analogue of :func:`factorize`, used by the set
    operations to compare BUNs of two BATs.  Codes are non-negative
    and bounded by ``n`` but not necessarily dense: integer keys with
    a compact value domain are *offset-coded* (``key - min``), which
    skips the sort entirely.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    n_left = len(left_keys)
    total = n_left + len(right_keys)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), 0
    if _is_object(left_keys) or _is_object(right_keys):
        both = np.concatenate([left_keys.astype(object),
                               right_keys.astype(object)])
        codes, n = factorize(both)
        return codes[:n_left], codes[n_left:], n
    if left_keys.dtype.kind in "iu" and right_keys.dtype.kind in "iu":
        bounds = [(int(a.min()), int(a.max()))
                  for a in (left_keys, right_keys) if len(a)]
        lo = min(b[0] for b in bounds)
        hi = max(b[1] for b in bounds)
        domain = hi - lo + 1
        if domain <= max(_DENSE_FLOOR, _DENSE_FACTOR * total):
            return (left_keys.astype(np.int64) - lo,
                    right_keys.astype(np.int64) - lo, domain)
    both = np.concatenate([left_keys, right_keys])
    codes, n = factorize(both)
    return codes[:n_left], codes[n_left:], n


#: Largest combined code representable; beyond it the mixed-radix
#: arithmetic would wrap and alias distinct pairs.
_INT64_MAX = np.iinfo(np.int64).max


def _combine_overflows(max_high, n_low):
    """True when ``high * n_low + low`` can exceed int64 for codes
    bounded by ``max_high`` / ``n_low`` (checked in Python ints)."""
    return (int(max_high) + 1) * int(n_low) - 1 > _INT64_MAX


def _factorize_pairs(high_codes, low_codes):
    """(codes, n): dense int64 codes over (high, low) pairs.

    The overflow fallback for :func:`combine_codes`: a lexicographic
    sort of the pairs plus a run-boundary scan.  Codes come out in
    sorted (high, low) order — the same order the mixed-radix
    arithmetic induces — so the fallback changes density, never
    relative order.
    """
    order = np.lexsort((low_codes, high_codes))
    sorted_high = high_codes[order]
    sorted_low = low_codes[order]
    fresh = np.empty(len(order), dtype=bool)
    fresh[0] = True
    fresh[1:] = ((sorted_high[1:] != sorted_high[:-1])
                 | (sorted_low[1:] != sorted_low[:-1]))
    compact = np.cumsum(fresh) - 1
    codes = np.empty(len(order), dtype=np.int64)
    codes[order] = compact
    return codes, int(compact[-1]) + 1


def combine_codes(high_codes, low_codes, n_low):
    """One int64 code per row from two per-column codes.

    Equality of the combined code is equality of the (high, low) pair;
    ``n_low`` bounds the low codes (``max(low) < n_low``).  Wide
    domains that would overflow int64 (offset-coded composites from
    :func:`joint_codes` can reach ``2**63``) fall back to joint
    factorization of the pairs — codes from *separate* calls are then
    no longer comparable, so cross-operand callers must use
    :func:`combine_codes_pair`.
    """
    high_codes = np.asarray(high_codes, dtype=np.int64)
    low_codes = np.asarray(low_codes, dtype=np.int64)
    n_low = max(1, int(n_low))
    if len(high_codes) and _combine_overflows(high_codes.max(), n_low):
        codes, _n = _factorize_pairs(high_codes, low_codes)
        return codes
    return high_codes * n_low + low_codes


def combine_codes_pair(high_left, low_left, high_right, low_right,
                       n_low):
    """Combined (high, low) codes for two operands, jointly coded.

    The cross-operand form of :func:`combine_codes`: equal pairs get
    equal codes *across* the two operands (the property the set
    operations compare BUNs with).  Returns ``(left, right, domain)``
    with every code below ``domain``.  When the mixed-radix product
    would overflow int64, both operands' pairs are factorised jointly
    so the shared coding survives the fallback.
    """
    high_left = np.asarray(high_left, dtype=np.int64)
    low_left = np.asarray(low_left, dtype=np.int64)
    high_right = np.asarray(high_right, dtype=np.int64)
    low_right = np.asarray(low_right, dtype=np.int64)
    n_low = max(1, int(n_low))
    max_high = 0
    for side in (high_left, high_right):
        if len(side):
            max_high = max(max_high, int(side.max()))
    if _combine_overflows(max_high, n_low):
        n_left = len(high_left)
        codes, n = _factorize_pairs(
            np.concatenate([high_left, high_right]),
            np.concatenate([low_left, low_right]))
        return codes[:n_left], codes[n_left:], n
    return (high_left * n_low + low_left,
            high_right * n_low + low_right,
            (max_high + 1) * n_low)


def first_occurrence(codes):
    """Positions of the first occurrence of each code, ascending.

    The vectorised form of the ``seen``-set dedup loop: taking these
    positions keeps first occurrences in original BUN order.
    """
    codes = np.asarray(codes)
    if len(codes) == 0:
        return np.empty(0, dtype=np.int64)
    _uniq, first = np.unique(codes, return_index=True)
    return np.sort(first).astype(np.int64)


def grouped_sum(values, codes, n_groups):
    """Per-group sum over dense group codes via argsort + ``reduceat``.

    Exact for integer dtypes (no float round-trip).  Every group in
    ``0..n_groups-1`` must be non-empty — which holds for codes coming
    from :func:`factorize` — because ``np.add.reduceat`` returns the
    *element* (not 0) at a repeated boundary.

    Chunked execution computes per-chunk partial sums (scattered into
    full-width group vectors) and adds the partials in chunk order:
    exact and identical to the serial kernel for integer dtypes, and
    bit-identical across worker counts for floats.
    """
    values = np.asarray(values)
    if n_groups == 0:
        return np.zeros(0, dtype=values.dtype)
    codes = np.asarray(codes, dtype=np.int64)
    plan = parallel.chunk_plan(len(values),
                               values.dtype.itemsize + codes.dtype.itemsize)
    if plan is not None and _partials_worthwhile(n_groups, len(values),
                                                 len(plan)):
        partials = parallel.run_chunks(
            lambda lo, hi: _grouped_sum_scatter(values[lo:hi],
                                                codes[lo:hi], n_groups),
            plan)
        total = partials[0]
        for partial in partials[1:]:
            total = total + partial
        return total
    order = np.argsort(codes, kind="stable")
    starts = np.searchsorted(codes[order],
                             np.arange(n_groups, dtype=np.int64),
                             side="left")
    return np.add.reduceat(values[order], starts)


def _partials_worthwhile(n_groups, n_rows, n_chunks):
    """Gate on the chunked-sum merge cost.

    Every chunk materialises a full-width ``n_groups`` partial and the
    serial merge adds them all, so the parallel path costs
    ``O(n_chunks * n_groups)`` time and memory *on top of* the row
    work.  That only pays off while the partials stay small next to
    the input; for high-cardinality groupings (worst case: near-unique
    keys, ``n_groups ~ n_rows``) it would dwarf the serial
    argsort/bincount kernel — stay serial there.  The gate depends
    only on plan and operand shape, never the worker count, so it
    keeps results bit-identical across worker counts.
    """
    return n_groups * n_chunks <= 4 * n_rows


def _grouped_sum_scatter(values, codes, n_groups):
    """One chunk's per-group partial sums, scattered into a
    full-width vector (groups absent from the chunk stay 0)."""
    out = np.zeros(n_groups, dtype=values.dtype)
    if len(values) == 0:
        return out
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    starts = np.nonzero(
        np.r_[True, sorted_codes[1:] != sorted_codes[:-1]])[0]
    out[sorted_codes[starts]] = np.add.reduceat(values[order], starts)
    return out


def grouped_weighted_sum_plan(n_rows, n_groups):
    """The chunk plan :func:`grouped_weighted_sum` would execute under
    the active parallel config, or ``None`` when it stays serial.

    The single source of truth for the kernel's own dispatch — and the
    public probe the bench sweep uses to check that its chunk sizing
    really engages the chunked path (instead of re-deriving the
    internal gates and silently desynchronizing from them).
    """
    # int64 codes + float64 weights: 16 bytes per row
    plan = parallel.chunk_plan(n_rows, 16)
    if plan is None or not _partials_worthwhile(n_groups, n_rows,
                                                len(plan)):
        return None
    return plan


def grouped_weighted_sum(codes, weights, n_groups):
    """Float per-group sums — the ``np.bincount`` aggregation kernel.

    The chunk-aware variant the aggregate operator dispatches onto for
    float sums and averages: per-chunk ``bincount`` partials are added
    in chunk order.  For a fixed chunk plan the result is bit-identical
    across worker counts (the merge order never changes); the chunked
    association may differ from the serial single-pass ``bincount`` by
    float rounding, which is within the operator's contract.
    """
    codes = np.asarray(codes, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    plan = grouped_weighted_sum_plan(len(codes), n_groups)
    if plan is None:
        return np.bincount(codes, weights=weights, minlength=n_groups)
    partials = parallel.run_chunks(
        lambda lo, hi: np.bincount(codes[lo:hi], weights=weights[lo:hi],
                                   minlength=n_groups),
        plan)
    total = partials[0]
    for partial in partials[1:]:
        total = total + partial
    return total
