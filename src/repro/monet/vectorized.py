"""Vectorised kernels for the BAT-algebra hot paths.

The paper's performance argument (sections 5 and 6) rests on every
algebraic operator running as a tight loop over contiguous arrays —
"the columns of a BAT are simple memory arrays" — so the interpreted
reproduction must not hide a Python ``for`` loop behind each operator.
This module is the single home for the array-native primitives the
operator layer dispatches onto:

* :class:`MultiMap` — positions-by-key lookup built once per inner
  operand (argsort + ``searchsorted`` for fixed-width keys, a dict for
  object keys), replacing the per-BUN dict builds that used to live in
  ``operators/common.py`` and ``operators/join.py``.
* :func:`join_match` — equi-join position matching in left-major
  order, fully vectorised for fixed-width keys.
* :func:`membership_mask` — ``np.isin``-based membership for
  semijoin/antijoin and the set operations.
* :func:`factorize` / :func:`joint_codes` / :func:`first_occurrence`
  — dense integer coding of key (pairs), the building block for
  group/unique/set-op kernels.
* :func:`grouped_sum` — exact per-group sums via stable argsort +
  ``np.add.reduceat``.

Every kernel keeps a slow-path fallback for ``object``-dtype keys
(variable-size atoms normally compare on heap *indices*, so the
fallback only triggers for exotic key arrays), and each fast path is
BUN-for-BUN order-identical to the naive implementation it replaced:
left-major match order, ascending inner positions per key,
first-occurrence semantics for deduplication.
"""

import numpy as np

__all__ = [
    "MultiMap", "join_match", "membership_mask", "factorize",
    "joint_codes", "combine_codes", "first_occurrence", "grouped_sum",
]


def _is_object(keys):
    return getattr(keys, "dtype", None) == object


#: Direct-address tables are built when the integer key domain spans at
#: most ``max(_DENSE_FLOOR, _DENSE_FACTOR * n)`` values.
_DENSE_FLOOR = 1 << 16
_DENSE_FACTOR = 4


class MultiMap:
    """Positions-by-key lookup over one key array.

    For fixed-width keys the map is *array-backed*: a stable argsort of
    the keys plus the sorted key array, so that every probe is a pair
    of binary searches and a slice — no Python-level hashing at all.
    Integer keys whose value domain is compact additionally get a
    *direct-address* table (per-key bucket boundaries indexed by
    ``key - base``), turning whole-column probes into pure array
    gathers — the positional-lookup trick Monet's void columns are
    built on.  Object-dtype keys (only reachable through exotic key
    arrays; var atoms compare on heap indices) fall back to a dict of
    position lists.

    Because the argsort is *stable*, positions of equal keys appear in
    ascending BUN order, exactly like the insertion-ordered dict the
    operators used to build — so match output order is unchanged.
    """

    __slots__ = ("n_entries", "order", "sorted_keys", "table",
                 "base", "starts", "_n_matchable")

    def __init__(self, keys):
        keys = np.asarray(keys)
        self.n_entries = len(keys)
        self.base = None
        self.starts = None
        if _is_object(keys):
            table = {}
            for pos, key in enumerate(keys):
                table.setdefault(key, []).append(pos)
            self.table = table
            self.order = None
            self.sorted_keys = None
            self._n_matchable = len(keys)
            return
        self.table = None
        self.order = np.argsort(keys, kind="stable")
        self.sorted_keys = keys[self.order]
        # NaN keys sort to the end; they must never match anything
        # (IEEE semantics, and what the dict reference does), so probes
        # are clipped to the finite prefix of the sorted keys.
        self._n_matchable = self.n_entries
        if self.sorted_keys.dtype.kind == "f":
            self._n_matchable = int(np.searchsorted(
                self.sorted_keys, np.inf, side="right"))
        if keys.dtype.kind in "iu" and self.n_entries:
            base = int(self.sorted_keys[0])
            domain = int(self.sorted_keys[-1]) - base + 1
            if domain <= max(_DENSE_FLOOR, _DENSE_FACTOR * self.n_entries):
                counts = np.bincount(
                    self.sorted_keys.astype(np.int64) - base,
                    minlength=domain)
                self.base = base
                self.starts = np.concatenate(
                    ([0], np.cumsum(counts))).astype(np.int64)

    @classmethod
    def from_sorted(cls, order, sorted_keys):
        """Rebuild a map from a persisted (order, sorted_keys) pair.

        Skips the argsort entirely — the storage layer saves hash
        accelerators as exactly these two arrays, so reopening a
        database re-attaches working indexes without touching the key
        data.  The direct-address table is *not* rebuilt (it would read
        every page); probes fall back to binary search until the index
        is rebuilt from live keys.
        """
        self = cls.__new__(cls)
        self.n_entries = len(order)
        self.base = None
        self.starts = None
        self.table = None
        self.order = order
        self.sorted_keys = sorted_keys
        self._n_matchable = self.n_entries
        if getattr(sorted_keys, "dtype", None) is not None \
                and sorted_keys.dtype.kind == "f" and self.n_entries:
            self._n_matchable = int(np.searchsorted(
                sorted_keys, np.inf, side="right"))
        return self

    @property
    def vectorised(self):
        return self.table is None

    def _dense_ranges(self, probe_keys):
        """(lo, hi) bucket bounds per probe via the direct-address
        table; absent keys get empty ranges."""
        probes = probe_keys.astype(np.int64, copy=False)
        kmax = self.base + len(self.starts) - 2
        valid = (probes >= self.base) & (probes <= kmax)
        idx = np.where(valid, probes - self.base, 0)
        lo = self.starts[idx]
        hi = np.where(valid, self.starts[idx + 1], lo)
        return lo, hi

    # ------------------------------------------------------------------
    # scalar probes (accelerator API)
    # ------------------------------------------------------------------
    def positions(self, key):
        """Positions whose key equals ``key``, ascending; ``()`` if none."""
        if self.table is not None:
            return self.table.get(key, ())
        lo = min(int(np.searchsorted(self.sorted_keys, key,
                                     side="left")), self._n_matchable)
        hi = min(int(np.searchsorted(self.sorted_keys, key,
                                     side="right")), self._n_matchable)
        if lo == hi:
            return ()
        return self.order[lo:hi]

    def first(self, key):
        """Smallest position holding ``key``, or ``None``."""
        hits = self.positions(key)
        return int(hits[0]) if len(hits) else None

    # ------------------------------------------------------------------
    # vector probes
    # ------------------------------------------------------------------
    def match(self, probe_keys):
        """All matches of ``probe_keys`` against the mapped keys.

        Returns ``(probe_pos, match_pos)`` int64 arrays in probe-major
        order with ascending match positions per probe — BUN-for-BUN
        the order the naive dict loop produced.
        """
        probe_keys = np.asarray(probe_keys)
        if self.table is not None or _is_object(probe_keys):
            return self._match_slow(probe_keys)
        if self.starts is not None and probe_keys.dtype.kind in "iu":
            lo, hi = self._dense_ranges(probe_keys)
        else:
            lo = np.minimum(np.searchsorted(self.sorted_keys, probe_keys,
                                            side="left"),
                            self._n_matchable)
            hi = np.minimum(np.searchsorted(self.sorted_keys, probe_keys,
                                            side="right"),
                            self._n_matchable)
        counts = hi - lo
        total = int(counts.sum())
        probe_pos = np.repeat(
            np.arange(len(probe_keys), dtype=np.int64), counts)
        if total == 0:
            return probe_pos, np.empty(0, dtype=np.int64)
        # ramp[j] walks lo[i] .. hi[i]-1 for each surviving probe i
        starts = np.cumsum(counts) - counts
        ramp = (np.arange(total, dtype=np.int64)
                - np.repeat(starts, counts)
                + np.repeat(lo.astype(np.int64), counts))
        return probe_pos, self.order[ramp].astype(np.int64)

    def _as_table(self):
        """Dict view of the mapping (for object-dtype probes)."""
        if self.table is not None:
            return self.table
        table = {}
        for rank, key in enumerate(self.sorted_keys.tolist()):
            table.setdefault(key, []).append(int(self.order[rank]))
        return table

    def _match_slow(self, probe_keys):
        table = self._as_table()
        lefts = []
        rights = []
        for pos, key in enumerate(probe_keys):
            hits = table.get(key)
            if hits:
                lefts.extend([pos] * len(hits))
                rights.extend(hits)
        return (np.asarray(lefts, dtype=np.int64),
                np.asarray(rights, dtype=np.int64))

    def lookup_first(self, probe_keys):
        """First-match position per probe key, ``-1`` when absent."""
        probe_keys = np.asarray(probe_keys)
        out = np.full(len(probe_keys), -1, dtype=np.int64)
        if self.table is not None or _is_object(probe_keys):
            table = self._as_table()
            for pos, key in enumerate(probe_keys):
                hits = table.get(key)
                if hits:
                    out[pos] = hits[0]
            return out
        if self.n_entries == 0:
            return out
        if self.starts is not None and probe_keys.dtype.kind in "iu":
            lo, hi = self._dense_ranges(probe_keys)
        else:
            lo = np.minimum(np.searchsorted(self.sorted_keys, probe_keys,
                                            side="left"),
                            self._n_matchable)
            hi = np.minimum(np.searchsorted(self.sorted_keys, probe_keys,
                                            side="right"),
                            self._n_matchable)
        found = hi > lo
        out[found] = self.order[lo[found]]
        return out

    def __len__(self):
        return self.n_entries


def join_match(left_keys, right_keys):
    """(left_pos, right_pos) of every equi-matching pair, left-major."""
    return MultiMap(right_keys).match(left_keys)


#: A direct-address membership table is used when the (hinted) code
#: domain stays below this many entries — one transient byte each.
_TABLE_CAP = 1 << 22


def membership_mask(left_keys, right_keys, domain=None):
    """Boolean mask: ``left_keys[i] in right_keys``.

    Fixed-width keys go through ``np.isin`` (sort-based, no Python
    hashing); object keys keep the set probe.  When the keys are known
    non-negative codes bounded by ``domain`` (e.g. from
    :func:`joint_codes`) and the domain is compact, a direct-address
    bool table replaces the sort entirely.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if _is_object(left_keys) or _is_object(right_keys):
        members = set(right_keys)
        return np.fromiter((k in members for k in left_keys),
                           dtype=bool, count=len(left_keys))
    if len(right_keys) == 0 or len(left_keys) == 0:
        return np.zeros(len(left_keys), dtype=bool)
    if domain is not None and domain <= max(
            _TABLE_CAP, _DENSE_FACTOR * (len(left_keys)
                                         + len(right_keys))):
        table = np.zeros(int(domain), dtype=bool)
        table[right_keys] = True
        return table[left_keys]
    return np.isin(left_keys, right_keys)


def factorize(keys):
    """(codes, n_distinct): dense int64 code per key.

    Fixed-width keys get codes in *sorted* distinct-key order (the
    contract the group operators rely on for dense group oids); object
    keys get first-seen codes, which preserves equality but not order.
    """
    keys = np.asarray(keys)
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64), 0
    if _is_object(keys):
        table = {}
        codes = np.empty(len(keys), dtype=np.int64)
        for pos, key in enumerate(keys):
            code = table.get(key)
            if code is None:
                code = table[key] = len(table)
            codes[pos] = code
        return codes, len(table)
    uniq, inverse = np.unique(keys, return_inverse=True)
    return inverse.astype(np.int64), len(uniq)


def joint_codes(left_keys, right_keys):
    """(left_codes, right_codes, n): one coding shared by both arrays.

    Equal keys receive equal codes across the two operands — the
    cross-operand analogue of :func:`factorize`, used by the set
    operations to compare BUNs of two BATs.  Codes are non-negative
    and bounded by ``n`` but not necessarily dense: integer keys with
    a compact value domain are *offset-coded* (``key - min``), which
    skips the sort entirely.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    n_left = len(left_keys)
    total = n_left + len(right_keys)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), 0
    if _is_object(left_keys) or _is_object(right_keys):
        both = np.concatenate([left_keys.astype(object),
                               right_keys.astype(object)])
        codes, n = factorize(both)
        return codes[:n_left], codes[n_left:], n
    if left_keys.dtype.kind in "iu" and right_keys.dtype.kind in "iu":
        bounds = [(int(a.min()), int(a.max()))
                  for a in (left_keys, right_keys) if len(a)]
        lo = min(b[0] for b in bounds)
        hi = max(b[1] for b in bounds)
        domain = hi - lo + 1
        if domain <= max(_DENSE_FLOOR, _DENSE_FACTOR * total):
            return (left_keys.astype(np.int64) - lo,
                    right_keys.astype(np.int64) - lo, domain)
    both = np.concatenate([left_keys, right_keys])
    codes, n = factorize(both)
    return codes[:n_left], codes[n_left:], n


def combine_codes(high_codes, low_codes, n_low):
    """One int64 code per row from two per-column codes.

    Equality of the combined code is equality of the (high, low) pair;
    ``n_low`` bounds the low codes (``max(low) < n_low``).
    """
    return (np.asarray(high_codes, dtype=np.int64) * max(1, int(n_low))
            + np.asarray(low_codes, dtype=np.int64))


def first_occurrence(codes):
    """Positions of the first occurrence of each code, ascending.

    The vectorised form of the ``seen``-set dedup loop: taking these
    positions keeps first occurrences in original BUN order.
    """
    codes = np.asarray(codes)
    if len(codes) == 0:
        return np.empty(0, dtype=np.int64)
    _uniq, first = np.unique(codes, return_index=True)
    return np.sort(first).astype(np.int64)


def grouped_sum(values, codes, n_groups):
    """Per-group sum over dense group codes via argsort + ``reduceat``.

    Exact for integer dtypes (no float round-trip).  Every group in
    ``0..n_groups-1`` must be non-empty — which holds for codes coming
    from :func:`factorize` — because ``np.add.reduceat`` returns the
    *element* (not 0) at a repeated boundary.
    """
    values = np.asarray(values)
    if n_groups == 0:
        return np.zeros(0, dtype=values.dtype)
    codes = np.asarray(codes, dtype=np.int64)
    order = np.argsort(codes, kind="stable")
    starts = np.searchsorted(codes[order],
                             np.arange(n_groups, dtype=np.int64),
                             side="left")
    return np.add.reduceat(values[order], starts)
