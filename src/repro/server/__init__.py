"""Concurrent query service over the shared mmap catalog.

The paper positions the flattened BAT algebra as the high-throughput
kernel behind multi-user front-ends; this package is that serving
layer.  A :class:`QueryServer` accepts Moa and MIL queries from many
concurrent clients over a length-prefixed JSON socket protocol
(:mod:`repro.server.protocol`) and executes them through a
:class:`QueryService`: per-generation warm worker pools (workers
``MonetKernel.open`` the catalog once and stay resident), an LRU plan
cache keyed by query text + catalog generation, an optional result
cache, admission control (max in-flight, bounded queue, per-query
timeout), and a stats endpoint exposing latency percentiles, cache hit
rates, and merged buffer-manager fault accounting.

Quickstart::

    python -m repro.server --db-dir /path/to/db --port 7777

    from repro.server import QueryClient
    with QueryClient("127.0.0.1", 7777) as client:
        reply = client.moa('count(Item)')
        print(reply.value, reply.generation, reply.plan_cached)

Every result ships with a sha1 checksum over the same canonical form
the multi-process dispatcher uses (:func:`repro.monet.multiproc.
result_checksum`), and :class:`QueryClient` re-verifies it after
decoding — a served result is byte-contract-identical to serial
execution.
"""

from .cache import CacheStats, LRUCache
from .client import ClientReply, QueryClient
from .protocol import (decode_program, decode_value, encode_program,
                       encode_value, recv_frame, send_frame)
from .server import QueryServer
from .service import QueryService, Session

__all__ = [
    "CacheStats", "LRUCache",
    "ClientReply", "QueryClient",
    "QueryServer", "QueryService", "Session",
    "decode_program", "decode_value", "encode_program", "encode_value",
    "recv_frame", "send_frame",
]
