"""Concurrent query service over the shared mmap catalog.

The paper positions the flattened BAT algebra as the high-throughput
kernel behind multi-user front-ends; this package is that serving
layer.  A :class:`QueryServer` accepts Moa and MIL queries from many
concurrent clients over a length-prefixed socket protocol
(:mod:`repro.server.protocol`) — JSON frames by default, with a
negotiated **binary columnar wire** that ships result columns as raw
little-endian buffers (and, for local clients, as mmap'd spool
files) — and executes them through a :class:`QueryService`:
per-generation warm worker pools (workers ``MonetKernel.open`` the
catalog once and stay resident), an LRU plan cache keyed by query
text + catalog generation, an optional byte-weighted result cache
with TTL and content-hash buffer dedup, admission control (max
in-flight, bounded queue, per-query timeout), and a stats endpoint
exposing latency percentiles, cache hit rates, and merged
buffer-manager fault accounting.

Quickstart::

    python -m repro.server --db-dir /path/to/db --port 7777

    from repro.server import QueryClient
    with QueryClient("127.0.0.1", 7777) as client:
        reply = client.moa('count(Item)')
        print(reply.value, reply.generation, reply.plan_cached)

Every result ships with a sha1 checksum over the same canonical form
the multi-process dispatcher uses (:func:`repro.monet.multiproc.
result_checksum`), and :class:`QueryClient` re-verifies it after
decoding — a served result is byte-contract-identical to serial
execution.

The serving path is hardened end to end (see the README's
"Operations & failure modes"): :class:`QueryClient` retries
idempotent reads over lost connections and shed load
(``retries=N``, exponential backoff + jitter, per-request ids);
:class:`QueryServer` supports shared-secret auth, per-connection
request quotas, typed error frames for oversized requests, and
graceful SIGTERM draining; :class:`QueryService` transparently
resubmits requests whose worker crashed mid-query before degrading
to a typed ``ServerOverloadedError``.  Every failure mode is
injectable through :mod:`repro.faults` and swept by the
``tests/chaos`` suite.
"""

from .cache import CacheStats, LRUCache, ResultCache
from .client import ClientReply, QueryClient
from .protocol import (MAX_FRAME_BYTES, WIRE_BINARY, WIRE_FORMATS,
                       WIRE_JSON, decode_binary_message,
                       decode_program, decode_value,
                       encode_binary_message, encode_program,
                       encode_value, payload_nbytes,
                       read_spooled_payload, recv_frame,
                       send_binary_frame, send_frame,
                       write_spooled_payload)
from .server import PROTOCOL_VERSION, QueryServer
from .service import QueryService, Session

__all__ = [
    "CacheStats", "LRUCache", "ResultCache",
    "ClientReply", "QueryClient",
    "MAX_FRAME_BYTES", "PROTOCOL_VERSION",
    "WIRE_BINARY", "WIRE_FORMATS", "WIRE_JSON",
    "QueryServer", "QueryService", "Session",
    "decode_binary_message", "decode_program", "decode_value",
    "encode_binary_message", "encode_program", "encode_value",
    "payload_nbytes", "read_spooled_payload", "recv_frame",
    "send_binary_frame", "send_frame", "write_spooled_payload",
]
