"""``python -m repro.server``: serve a saved catalog over a socket.

Example::

    python -m repro.server --db-dir /data/tpcd --port 7777 --procs 4

``--port 0`` binds an ephemeral port; the bound address is printed on
stdout (and written to ``--port-file`` when given, which is how the
CI smoke job discovers it).  The process serves until interrupted:
``SIGTERM`` drains gracefully (stop accepting, finish in-flight work
up to ``--drain-timeout`` seconds, answer stragglers with typed
``ServerDrainingError`` frames), ``SIGINT`` stops immediately.
"""

import argparse
import os
import signal
import sys
import threading

from ..analysis.verify import PlanBudget
from .server import QueryServer
from .service import QueryService


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="concurrent Moa/MIL query server over a shared "
                    "mmap catalog")
    parser.add_argument("--db-dir", required=True,
                        help="saved database directory (see "
                             "repro.monet.storage); every worker "
                             "mmap-reopens it at its session's pinned "
                             "generation")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7777,
                        help="TCP port (0 = ephemeral, printed on "
                             "stdout)")
    parser.add_argument("--procs", type=int, default=2,
                        help="worker processes per generation pool")
    parser.add_argument("--plan-cache", type=int, default=64,
                        metavar="N",
                        help="per-worker LRU plan-cache capacity "
                             "(0 disables)")
    parser.add_argument("--result-cache-bytes", type=int, default=0,
                        metavar="BYTES",
                        help="parent-side byte-weighted result-cache "
                             "budget (0 = off); identical column "
                             "buffers are deduplicated by content "
                             "hash")
    parser.add_argument("--result-cache-ttl", type=float, default=None,
                        metavar="S",
                        help="seconds a cached result stays servable "
                             "(default: no expiry)")
    parser.add_argument("--spool-dir", default=None,
                        help="directory for the local-client result "
                             "fast path: spool-negotiated replies "
                             "past the threshold ship as mmap'd "
                             "binary files (default: off)")
    parser.add_argument("--spool-threshold", type=int, default=None,
                        metavar="BYTES",
                        help="default payload size above which "
                             "spool-enabled connections receive "
                             "files (clients may negotiate their "
                             "own)")
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument("--max-queue", type=int, default=32)
    parser.add_argument("--timeout", type=float, default=None,
                        help="default per-query timeout in seconds "
                             "(overdue workers are killed and "
                             "respawned)")
    parser.add_argument("--drain-timeout", type=float, default=5.0,
                        metavar="S",
                        help="seconds SIGTERM waits for in-flight "
                             "requests before forcing shutdown")
    parser.add_argument("--auth-token", default=None,
                        help="require this shared secret on every "
                             "connection (default: open; also "
                             "settable via REPRO_AUTH_TOKEN)")
    parser.add_argument("--quota-rps", type=float, default=0.0,
                        help="per-connection executable requests per "
                             "second (0 = unlimited)")
    parser.add_argument("--quota-burst", type=float, default=None,
                        help="per-connection burst allowance "
                             "(default: max(1, quota-rps))")
    parser.add_argument("--port-file", default=None,
                        help="write 'host port' here once bound")
    parser.add_argument("--max-plan-rows", type=int, default=None,
                        help="admission budget: reject plans whose "
                             "largest static intermediate exceeds "
                             "this many BUNs")
    parser.add_argument("--max-plan-bytes", type=int, default=None,
                        help="admission budget: reject plans whose "
                             "total static byte bound exceeds this")
    parser.add_argument("--max-plan-pages", type=int, default=None,
                        help="admission budget: reject plans whose "
                             "static page-fault bound exceeds this")
    args = parser.parse_args(argv)
    auth_token = args.auth_token \
        if args.auth_token is not None \
        else os.environ.get("REPRO_AUTH_TOKEN") or None
    plan_budget = None
    if args.max_plan_rows is not None \
            or args.max_plan_bytes is not None \
            or args.max_plan_pages is not None:
        plan_budget = PlanBudget(max_rows=args.max_plan_rows,
                                 max_bytes=args.max_plan_bytes,
                                 max_pages=args.max_plan_pages)

    service = QueryService(
        args.db_dir, procs=args.procs,
        plan_cache_size=args.plan_cache,
        result_cache_bytes=args.result_cache_bytes,
        result_cache_ttl=args.result_cache_ttl,
        max_inflight=args.max_inflight, max_queue=args.max_queue,
        default_timeout=args.timeout, plan_budget=plan_budget)
    server = QueryServer(service, host=args.host, port=args.port,
                         auth_token=auth_token,
                         quota_rps=args.quota_rps,
                         quota_burst=args.quota_burst,
                         spool_dir=args.spool_dir,
                         spool_threshold=args.spool_threshold)
    server.start()
    host, port = server.address
    print("repro.server: serving %s on %s:%d (procs=%d, "
          "plan_cache=%d, result_cache_bytes=%d, max_inflight=%d%s)"
          % (args.db_dir, host, port, args.procs, args.plan_cache,
             args.result_cache_bytes, args.max_inflight,
             ", spool=%s" % args.spool_dir if args.spool_dir else ""),
          flush=True)
    if args.port_file:
        # write-then-rename: pollers that see the file see its content
        with open(args.port_file + ".tmp", "w") as handle:
            handle.write("%s %d\n" % (host, port))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(args.port_file + ".tmp", args.port_file)

    stop = threading.Event()
    graceful = threading.Event()

    def _interrupt(_signum, _frame):
        stop.set()

    def _terminate(_signum, _frame):
        graceful.set()
        stop.set()

    signal.signal(signal.SIGINT, _interrupt)
    signal.signal(signal.SIGTERM, _terminate)
    stop.wait()
    if graceful.is_set():
        print("repro.server: draining (timeout %.1fs)"
              % args.drain_timeout, flush=True)
        drained = server.drain(args.drain_timeout)
        print("repro.server: %s" % ("drained cleanly" if drained
                                    else "drain timed out"),
              flush=True)
    else:
        print("repro.server: shutting down", flush=True)
        server.stop()
    service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
