"""Server-side caches: an LRU (plan cache) and a byte-weighted
result cache with TTL, generation invalidation, and buffer dedup.

Two cache shapes run inside the query service.  The **plan cache**
(:class:`LRUCache`, one per worker process) maps query text + catalog
generation to a compiled MIL plan — entry-counted, because compiled
plans are small and uniform.  The parent-side **result cache**
(:class:`ResultCache`) holds finished canonical result values, which
are anything but uniform: a scalar aggregate and a million-row column
differ by six orders of magnitude, so the cache is **byte-weighted**
against a configurable budget, expires entries past a TTL, drops a
retired generation's entries wholesale, and — because replicated
results often replicate their column buffers bit-for-bit —
deduplicates identical ndarray buffers by content hash, so replicas
share bytes instead of multiplying resident weight.

Both expose their counters through the server's ``stats`` request,
which is how cache effectiveness (and the byte budget) is observed
from the outside.
"""

import hashlib
import threading
import time
from collections import OrderedDict

import numpy as np


class CacheStats:
    """Cumulative counters of one cache instance.

    ``evictions`` counts every entry dropped for any reason (capacity,
    TTL expiry, or invalidation); ``invalidations`` and
    ``expirations`` break out the drops by cause, so a generation
    bump's sweep is visible in the server stats rather than folded
    silently into capacity pressure.
    """

    __slots__ = ("hits", "misses", "evictions", "invalidations",
                 "expirations")

    def __init__(self, hits=0, misses=0, evictions=0,
                 invalidations=0, expirations=0):
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.invalidations = invalidations
        self.expirations = expirations

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        lookups = self.lookups
        return (self.hits / lookups) if lookups else 0.0

    def as_dict(self):
        return {"hits": int(self.hits), "misses": int(self.misses),
                "evictions": int(self.evictions),
                "invalidations": int(self.invalidations),
                "expirations": int(self.expirations),
                "hit_rate": round(self.hit_rate, 4)}

    def __repr__(self):
        return ("CacheStats(hits=%d, misses=%d, evictions=%d, "
                "invalidations=%d, expirations=%d)"
                % (self.hits, self.misses, self.evictions,
                   self.invalidations, self.expirations))


class LRUCache:
    """Bounded mapping with least-recently-*used* eviction.

    ``capacity <= 0`` disables the cache entirely: every lookup
    misses, nothing is stored — callers need no special-casing for
    the "cache turned off" configuration.
    """

    def __init__(self, capacity):
        self.capacity = int(capacity)
        self._items = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key, default=None):
        """The cached value (refreshing recency), or ``default``."""
        with self._lock:
            try:
                value = self._items[key]
            except KeyError:
                self.stats.misses += 1
                return default
            self._items.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key, value):
        """Insert/replace; evicts the LRU entry beyond capacity."""
        if self.capacity <= 0:
            return
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            while len(self._items) > self.capacity:
                self._items.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, predicate=None):
        """Drop entries (all, or those whose *key* matches).

        The generation-bump path: ``invalidate(lambda key:
        key[-1] < new_generation)`` drops plans/results of superseded
        snapshots while newer entries survive.  Dropped entries count
        as evictions *and* invalidations, so a sweep is visible in the
        stats instead of silently shrinking ``size``.
        """
        with self._lock:
            if predicate is None:
                dropped = len(self._items)
                self._items.clear()
            else:
                doomed = [key for key in self._items if predicate(key)]
                for key in doomed:
                    del self._items[key]
                dropped = len(doomed)
            self.stats.evictions += dropped
            self.stats.invalidations += dropped
            return dropped

    def __len__(self):
        with self._lock:
            return len(self._items)

    def __contains__(self, key):
        with self._lock:
            return key in self._items

    def snapshot(self):
        """``{"size": ..., "capacity": ..., hits/misses/...}``.

        The stats read happens under ``_lock`` too: counters bump
        under the lock, so reading them outside it could tear a
        snapshot across a concurrent put's hit/eviction updates.
        """
        with self._lock:
            entry = {"size": len(self._items),
                     "capacity": self.capacity}
            entry.update(self.stats.as_dict())
        return entry


# ----------------------------------------------------------------------
# the byte-weighted result cache
# ----------------------------------------------------------------------
#: Charged per structural node (dict/list/Row/scalar) of an interned
#: value — the non-buffer overhead a cached entry keeps resident.
NODE_OVERHEAD = 64


def _freeze_array(array):
    """A contiguous read-only array sharing no memory with a writable
    ``array``.

    Already-frozen contiguous arrays (a zero-copy wire decode, or a
    previously interned buffer) are shared as-is; anything writable is
    copied, so no caller holds a handle that could mutate cached
    bytes after the fact."""
    data = np.ascontiguousarray(array)
    if data.flags.writeable:
        data = data.copy()
        data.setflags(write=False)
    return data


def _buffer_key(data):
    """Content-hash identity of an array's bytes + dtype + shape."""
    digest = hashlib.sha1()
    digest.update(data.dtype.str.encode("ascii"))
    digest.update(str(data.shape).encode("ascii"))
    if data.nbytes:
        digest.update(memoryview(data).cast("B"))
    return digest.digest()


def materialize(value):
    """A structurally fresh copy of an interned value.

    Containers (dicts, lists, tuples, Rows) are rebuilt so no caller
    can mutate the cached entry through a served response; read-only
    ndarrays, strings, bytes, and Refs are shared — they are immutable
    (or frozen by interning), and sharing them is the entire point of
    the buffer dedup.
    """
    if isinstance(value, dict):
        return {key: materialize(item) for key, item in value.items()}
    if isinstance(value, list):
        return [materialize(item) for item in value]
    if isinstance(value, tuple):
        return tuple(materialize(item) for item in value)
    if isinstance(value, np.ndarray):
        return value
    if hasattr(value, "names") and hasattr(value, "values"):
        return type(value)([(name, materialize(item))
                            for name, item in zip(value.names,
                                                  value.values)])
    return value


class _Tally:
    """Byte accounting accumulated across one interning walk."""

    __slots__ = ("buffer_bytes", "overhead")

    def __init__(self):
        self.buffer_bytes = 0       # bytes newly added to the pool
        self.overhead = 0           # structural (non-buffer) estimate


class _Entry:
    __slots__ = ("key", "checksum", "value", "meta", "overhead",
                 "buffer_keys", "stamp")

    def __init__(self, key, checksum, value, meta, overhead,
                 buffer_keys, stamp):
        self.key = key
        self.checksum = checksum
        self.value = value          # interned: frozen arrays, pooled
        self.meta = meta            # extra response fields (JSON-y)
        self.overhead = overhead    # non-buffer resident bytes charged
        self.buffer_keys = buffer_keys
        self.stamp = stamp

    def response(self):
        """A fresh response dict for one hit (or the initial miss).

        The containers are rebuilt per call (:func:`materialize`), so
        mutating a served response can never corrupt the cached entry
        or any other response built from it.
        """
        response = {"type": "result", "checksum": self.checksum,
                    "payload": materialize(self.value)}
        response.update(self.meta)
        return response


class ResultCache:
    """Byte-weighted LRU over canonical result values.

    Parameters
    ----------
    budget_bytes:
        Total resident bytes the cache may hold — unique (deduped)
        array-buffer bytes plus :data:`NODE_OVERHEAD`-estimated
        structure.  ``<= 0`` disables the cache (every ``get``
        misses, ``put`` stores nothing).  A single value larger than
        the whole budget is not admitted at all; the budget is a hard
        ceiling, never exceeded even transiently between put and
        eviction.
    ttl_s:
        Seconds an entry stays servable after insertion (``None`` =
        no expiry).  Expiry is lazy-on-get plus a sweep on every put,
        so expired entries do not squat on the byte budget.
    clock:
        Injectable monotonic clock (tests).

    Entries are interned on ``put``: containers are rebuilt, arrays
    frozen read-only and deduplicated through a content-hash buffer
    pool shared by all entries — two cached results carrying
    bit-identical columns charge those bytes once.  ``get`` returns
    the :class:`_Entry`; callers build responses via
    :meth:`_Entry.response`, which deep-copies the structure, so a
    cached entry is immutable from the outside.
    """

    def __init__(self, budget_bytes, ttl_s=None, clock=time.monotonic):
        self.budget_bytes = int(budget_bytes)
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self._clock = clock
        self._items = OrderedDict()         # key -> _Entry, LRU order
        self._pool = {}                     # buffer key -> [array, rc]
        self._bytes = 0
        self._peak_bytes = 0
        self._dedup_hits = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # -- interning ------------------------------------------------------
    def _intern(self, value, buffer_keys, tally):
        """Rebuild ``value`` with pooled read-only arrays.

        ``tally`` accumulates ``buffer_bytes`` (bytes this entry adds
        to the pool — buffers already resident are free) and
        ``overhead`` (the structural-node estimate the entry itself
        keeps resident).
        """
        if isinstance(value, np.ndarray) and value.dtype != object:
            data = _freeze_array(value)
            key = _buffer_key(data)
            slot = self._pool.get(key)
            if slot is None:
                self._pool[key] = [data, 1]
                tally.buffer_bytes += data.nbytes
            else:
                slot[1] += 1
                data = slot[0]
                self._dedup_hits += 1
            buffer_keys.append(key)
            return data
        tally.overhead += NODE_OVERHEAD
        if isinstance(value, np.ndarray):       # object dtype
            array = np.empty(len(value), dtype=object)
            for index, item in enumerate(value.tolist()):
                array[index] = self._intern(item, buffer_keys, tally)
            array.setflags(write=False)
            return array
        if isinstance(value, dict):
            return {key: self._intern(item, buffer_keys, tally)
                    for key, item in value.items()}
        if isinstance(value, list):
            return [self._intern(item, buffer_keys, tally)
                    for item in value]
        if isinstance(value, tuple):
            return tuple(self._intern(item, buffer_keys, tally)
                         for item in value)
        if hasattr(value, "names") and hasattr(value, "values"):
            return type(value)([
                (name, self._intern(item, buffer_keys, tally))
                for name, item in zip(value.names, value.values)])
        if isinstance(value, (bytes, str)):
            tally.overhead += len(value)
        return value

    def _release(self, entry):
        """Return an evicted entry's bytes to the budget."""
        freed = entry.overhead
        for key in entry.buffer_keys:
            slot = self._pool[key]
            slot[1] -= 1
            if slot[1] == 0:
                freed += slot[0].nbytes
                del self._pool[key]
        self._bytes -= freed

    def _drop(self, key):
        self._release(self._items.pop(key))

    def _expired(self, entry, now):
        return self.ttl_s is not None \
            and (now - entry.stamp) > self.ttl_s

    def _sweep_expired(self, now):
        for key in [key for key, entry in self._items.items()
                    if self._expired(entry, now)]:
            self._drop(key)
            self.stats.evictions += 1
            self.stats.expirations += 1

    # -- the mapping ----------------------------------------------------
    def get(self, key):
        """The live :class:`_Entry` for ``key`` (recency refreshed),
        or ``None`` on a miss / an expired entry."""
        with self._lock:
            entry = self._items.get(key)
            if entry is not None and self._expired(entry,
                                                   self._clock()):
                self._drop(key)
                self.stats.evictions += 1
                self.stats.expirations += 1
                entry = None
            if entry is None:
                self.stats.misses += 1
                return None
            self._items.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key, checksum, value, meta):
        """Intern and admit one result; returns its entry (or ``None``
        when the cache is off or the value exceeds the whole budget).
        """
        if self.budget_bytes <= 0:
            return None
        with self._lock:
            now = self._clock()
            self._sweep_expired(now)
            if key in self._items:
                self._drop(key)         # replace: release the old form
            buffer_keys = []
            tally = _Tally()
            interned = self._intern(value, buffer_keys, tally)
            entry = _Entry(key, checksum, interned, dict(meta),
                           tally.overhead, buffer_keys, now)
            self._items[key] = entry    # appended = most recent
            self._bytes += tally.buffer_bytes + tally.overhead
            while self._bytes > self.budget_bytes:
                lru_key = next(iter(self._items))
                if lru_key == key:
                    # the new value alone busts the whole budget:
                    # everything else is already gone — do not admit
                    self._drop(key)
                    return None
                self._drop(lru_key)
                self.stats.evictions += 1
            self._peak_bytes = max(self._peak_bytes, self._bytes)
            return entry

    def invalidate(self, predicate=None):
        """Drop entries (all, or those whose *key* matches); counted
        as evictions and invalidations, like :meth:`LRUCache
        .invalidate`."""
        with self._lock:
            doomed = list(self._items) if predicate is None \
                else [key for key in self._items if predicate(key)]
            for key in doomed:
                self._drop(key)
            self.stats.evictions += len(doomed)
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def __len__(self):
        with self._lock:
            return len(self._items)

    @property
    def bytes(self):
        with self._lock:
            return self._bytes

    def snapshot(self):
        """Size, byte accounting, dedup effect, and hit/miss counters
        — read atomically under the lock."""
        with self._lock:
            entry = {
                "size": len(self._items),
                "bytes": int(self._bytes),
                "peak_bytes": int(self._peak_bytes),
                "budget_bytes": int(self.budget_bytes),
                "ttl_s": self.ttl_s,
                "unique_buffers": len(self._pool),
                "dedup_hits": int(self._dedup_hits),
            }
            entry.update(self.stats.as_dict())
        return entry
