"""A thread-safe LRU cache with hit/miss/eviction statistics.

Two instances run inside the query service: the **plan cache** (query
text + catalog generation -> compiled MIL plan, one per worker
process) and the optional parent-side **result cache** (canonical
request + generation -> finished response).  Both expose their
counters through the server's ``stats`` request, which is how cache
effectiveness is observed from the outside.
"""

import threading
from collections import OrderedDict


class CacheStats:
    """Cumulative counters of one :class:`LRUCache`."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self, hits=0, misses=0, evictions=0):
        self.hits = hits
        self.misses = misses
        self.evictions = evictions

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        lookups = self.lookups
        return (self.hits / lookups) if lookups else 0.0

    def as_dict(self):
        return {"hits": int(self.hits), "misses": int(self.misses),
                "evictions": int(self.evictions),
                "hit_rate": round(self.hit_rate, 4)}

    def __repr__(self):
        return ("CacheStats(hits=%d, misses=%d, evictions=%d)"
                % (self.hits, self.misses, self.evictions))


class LRUCache:
    """Bounded mapping with least-recently-*used* eviction.

    ``capacity <= 0`` disables the cache entirely: every lookup
    misses, nothing is stored — callers need no special-casing for
    the "cache turned off" configuration.
    """

    def __init__(self, capacity):
        self.capacity = int(capacity)
        self._items = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key, default=None):
        """The cached value (refreshing recency), or ``default``."""
        with self._lock:
            try:
                value = self._items[key]
            except KeyError:
                self.stats.misses += 1
                return default
            self._items.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key, value):
        """Insert/replace; evicts the LRU entry beyond capacity."""
        if self.capacity <= 0:
            return
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            while len(self._items) > self.capacity:
                self._items.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, predicate=None):
        """Drop entries (all, or those whose *key* matches).

        The generation-bump path: ``invalidate(lambda key:
        key[-1] < new_generation)`` drops plans/results of superseded
        snapshots while newer entries survive.
        """
        with self._lock:
            if predicate is None:
                dropped = len(self._items)
                self._items.clear()
                return dropped
            doomed = [key for key in self._items if predicate(key)]
            for key in doomed:
                del self._items[key]
            return len(doomed)

    def __len__(self):
        with self._lock:
            return len(self._items)

    def __contains__(self, key):
        with self._lock:
            return key in self._items

    def snapshot(self):
        """``{"size": ..., "capacity": ..., hits/misses/...}``."""
        with self._lock:
            entry = {"size": len(self._items),
                     "capacity": self.capacity}
        entry.update(self.stats.as_dict())
        return entry
