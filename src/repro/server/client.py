"""QueryClient: the library side of the wire protocol.

Connects, reads the ``hello`` (exposing the session's pinned catalog
generation), then issues synchronous requests.  Every ``result``
frame is decoded back to the canonical value form and **re-checksummed
locally** against the worker's shipped sha1 — a checksum mismatch
raises :class:`~repro.errors.ProtocolError`, so a client never
silently consumes a corrupted or mis-encoded result.  ``error``
frames re-raise as the matching typed exception from
:mod:`repro.errors` (:class:`~repro.errors.ServerOverloadedError`,
:class:`~repro.errors.QueryTimeoutError`, ...).
"""

import socket

from .. import errors as _errors
from ..errors import ProtocolError, ServerError
from ..monet.multiproc import result_checksum
from .protocol import (decode_value, encode_program, recv_frame,
                       send_frame)


class ClientReply:
    """One decoded result: the value plus its serving metadata."""

    __slots__ = ("value", "canonical", "checksum", "elapsed_ms",
                 "service_ms", "generation", "pid", "plan_cached",
                 "result_cached", "faults")

    def __init__(self, canonical, response):
        #: the canonical shipped form ({"kind": ...}-style)
        self.canonical = canonical
        #: the bare result (rows list, scalar, or {name: value} env)
        self.value = _bare_value(canonical)
        self.checksum = response["checksum"]
        self.elapsed_ms = response.get("elapsed_ms")
        self.service_ms = response.get("service_ms")
        self.generation = response.get("generation")
        self.pid = response.get("pid")
        #: True when the worker served a cached MIL plan (moa only)
        self.plan_cached = response.get("plan_cached")
        #: True when the parent-side result cache answered
        self.result_cached = response.get("result_cached", False)
        self.faults = response.get("faults")

    def __repr__(self):
        return ("ClientReply(sha1=%s, gen=%s, %sms%s%s)"
                % (self.checksum[:10], self.generation,
                   self.service_ms,
                   ", plan_cached" if self.plan_cached else "",
                   ", result_cached" if self.result_cached else ""))


def _bare_value(canonical):
    if isinstance(canonical, dict):
        kind = canonical.get("kind")
        if kind == "value":
            return canonical["value"]
        if kind == "bat":
            return canonical
        # a MIL fetch env: {name: canonical}
        return {name: _bare_value(item)
                for name, item in canonical.items()}
    return canonical


class QueryClient:
    """A synchronous client for one server connection (= session).

    The catalog generation pinned at connect time is
    :attr:`generation`; every reply carries the generation it was
    served from, which for this connection never changes — reconnect
    to observe a writer's bump.
    """

    def __init__(self, host, port, connect_timeout=10.0,
                 verify=True):
        self.verify = verify
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP,
                              socket.TCP_NODELAY, 1)
        hello = recv_frame(self._sock)
        if not isinstance(hello, dict):
            raise ProtocolError("no hello from server")
        if hello.get("type") == "error":
            self._sock.close()
            raise _error_for(hello)
        if hello.get("type") != "hello":
            raise ProtocolError("unexpected first frame %r"
                                % (hello,))
        #: wire protocol version the server speaks
        self.protocol = hello.get("protocol")
        #: catalog generation this session is pinned to
        self.generation = hello.get("generation")

    # ------------------------------------------------------------------
    def _request(self, request):
        send_frame(self._sock, request)
        response = recv_frame(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        if response.get("type") == "error":
            raise _error_for(response)
        return response

    def _result(self, request):
        response = self._request(request)
        if response.get("type") != "result":
            raise ProtocolError("expected a result frame, got %r"
                                % (response.get("type"),))
        canonical = decode_value(response["payload"])
        if self.verify and \
                result_checksum(canonical) != response["checksum"]:
            raise ProtocolError(
                "shipped payload does not match its sha1 checksum "
                "(%s)" % response["checksum"])
        return ClientReply(canonical, response)

    # ------------------------------------------------------------------
    # request types
    # ------------------------------------------------------------------
    def moa(self, query_text, timeout=None):
        """Execute a textual MOA query; returns a :class:`ClientReply`."""
        request = {"type": "moa", "query": query_text}
        if timeout is not None:
            request["timeout"] = timeout
        return self._result(request)

    def tpcd(self, number, params=None, timeout=None):
        """Run TPC-D query ``number`` (optional param overrides)."""
        request = {"type": "tpcd", "number": int(number)}
        if params:
            request["params"] = dict(params)
        if timeout is not None:
            request["timeout"] = timeout
        return self._result(request)

    def mil(self, program, fetch, timeout=None):
        """Execute a :class:`~repro.monet.mil.MILProgram`; the reply
        value maps each name in ``fetch`` to its result."""
        request = {"type": "mil", "program": encode_program(program),
                   "fetch": list(fetch)}
        if timeout is not None:
            request["timeout"] = timeout
        return self._result(request)

    def stats(self):
        """The server's aggregate stats dict."""
        response = self._request({"type": "stats"})
        if response.get("type") != "stats":
            raise ProtocolError("expected a stats frame")
        return response["stats"]

    def ping(self):
        """Liveness check; returns the session's pinned generation."""
        response = self._request({"type": "ping"})
        if response.get("type") != "pong":
            raise ProtocolError("expected a pong frame")
        return response["generation"]

    # ------------------------------------------------------------------
    def close(self):
        try:
            send_frame(self._sock, {"type": "close"})
        except OSError:
            pass
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        self.close()


def _error_for(response):
    """The typed exception for an ``error`` frame."""
    name = response.get("error", "ServerError")
    message = response.get("message", "")
    cls = getattr(_errors, str(name), None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = ServerError
    return cls("%s (from server)" % message)
