"""QueryClient: the library side of the wire protocol.

Connects, reads the ``hello`` (exposing the session's pinned catalog
generation, and answering an auth challenge when the server demands
one), then issues synchronous requests.  Every ``result`` frame is
decoded back to the canonical value form and **re-checksummed
locally** against the worker's shipped sha1 — a checksum mismatch
raises :class:`~repro.errors.ProtocolError`, so a client never
silently consumes a corrupted or mis-encoded result.  ``error``
frames re-raise as the matching typed exception from
:mod:`repro.errors` (:class:`~repro.errors.ServerOverloadedError`,
:class:`~repro.errors.QueryTimeoutError`, ...).

By default the client negotiates the **binary columnar wire** right
after the hello (``wire="binary"``): result payloads then arrive as
raw little-endian column buffers decoded zero-copy into read-only
ndarrays, instead of base64 inside JSON.  Against a server that does
not advertise (or refuses) the format, the connection silently stays
on the legacy JSON wire, and the checksum verification is identical
either way.  ``spool=True`` additionally opts into the local-client
fast path — large results ship as mmap'd files (see
:func:`~repro.server.protocol.read_spooled_payload`).

Resilience (opt-in via ``retries``)
-----------------------------------

Every request this protocol can express is an idempotent read
against a pinned catalog generation, so a lost reply is safe to ask
for again.  With ``retries=N`` the client transparently retries a
request up to N times when

* the transport dies (EOF, reset, torn frame, socket timeout) —
  surfaced as :class:`~repro.errors.ConnectionLostError`; the client
  reconnects (running the hello/auth handshake again; note the new
  session may pin a **newer generation**) and resends; or
* the server sheds load — :class:`~repro.errors.ServerOverloadedError`
  or its quota subclass; the client backs off (exponential + jitter)
  and resends on the same connection.

Each attempt carries a fresh unique request ``id`` which the server
echoes; a stale ``result`` frame from an abandoned attempt is
discarded instead of being mistaken for the current reply.  When the
budget runs out, :class:`~repro.errors.RetriesExhaustedError` chains
the final failure.  :class:`~repro.errors.ServerDrainingError` and
:class:`~repro.errors.AuthError` are deliberate refusals and are
never retried.
"""

import itertools
import random
import socket
import time

from .. import errors as _errors
from ..errors import (AuthError, ConnectionLostError, ProtocolError,
                      RetriesExhaustedError, ServerDrainingError,
                      ServerError, ServerOverloadedError, SpoolError)
from ..monet.multiproc import result_checksum
from .protocol import (WIRE_JSON, decode_value, encode_program,
                       read_spooled_payload, recv_frame, send_frame)


class ClientReply:
    """One decoded result: the value plus its serving metadata."""

    __slots__ = ("value", "canonical", "checksum", "elapsed_ms",
                 "service_ms", "generation", "pid", "plan_cached",
                 "result_cached", "faults", "payload_bytes", "spooled")

    def __init__(self, canonical, response, spooled=False):
        #: the canonical shipped form ({"kind": ...}-style)
        self.canonical = canonical
        #: the bare result (rows list, scalar, or {name: value} env)
        self.value = _bare_value(canonical)
        self.checksum = response["checksum"]
        self.elapsed_ms = response.get("elapsed_ms")
        self.service_ms = response.get("service_ms")
        self.generation = response.get("generation")
        self.pid = response.get("pid")
        #: True when the worker served a cached MIL plan (moa only)
        self.plan_cached = response.get("plan_cached")
        #: True when the parent-side result cache answered
        self.result_cached = response.get("result_cached", False)
        self.faults = response.get("faults")
        #: canonical byte weight of the payload, as the server sees it
        self.payload_bytes = response.get("payload_bytes")
        #: True when the payload arrived as an mmap'd spool file
        self.spooled = spooled

    def __repr__(self):
        return ("ClientReply(sha1=%s, gen=%s, %sms%s%s)"
                % (self.checksum[:10], self.generation,
                   self.service_ms,
                   ", plan_cached" if self.plan_cached else "",
                   ", result_cached" if self.result_cached else ""))


def _bare_value(canonical):
    if isinstance(canonical, dict):
        kind = canonical.get("kind")
        if kind == "value":
            return canonical["value"]
        if kind == "bat":
            return canonical
        # a MIL fetch env: {name: canonical}
        return {name: _bare_value(item)
                for name, item in canonical.items()}
    return canonical


class QueryClient:
    """A synchronous client for one server connection (= session).

    The catalog generation pinned at connect time is
    :attr:`generation`; every reply carries the generation it was
    served from, which for this connection never changes — reconnect
    (explicitly, or implicitly through a retry after a lost
    connection) to observe a writer's bump.

    Parameters
    ----------
    connect_timeout:
        Seconds to establish the TCP connection (and, per frame, to
        complete the hello/auth handshake).
    verify:
        Re-checksum every decoded result against the shipped sha1.
    auth_token:
        Shared secret presented when the server's hello demands auth.
    retries:
        Retry budget per request for lost connections and shed load
        (``0`` — the default — surfaces the first failure typed).
    backoff_base / backoff_max:
        Exponential backoff schedule between retries: attempt ``k``
        sleeps ``min(backoff_max, backoff_base * 2**(k-1))`` scaled
        by a uniform jitter in [0.5, 1.0].
    request_timeout:
        Socket timeout while awaiting a reply (``None`` = wait
        forever); an expiry counts as a lost connection, which a
        retry budget turns into reconnect-and-resend.
    wire:
        Preferred reply encoding: ``"binary"`` (the default) asks the
        server for raw-column-buffer frames; ``"json"`` keeps the
        legacy base64-in-JSON wire.  A server that does not advertise
        the preference in its hello (or refuses it) silently leaves
        the connection on JSON — :attr:`wire` reports what was
        actually negotiated.
    spool / spool_threshold:
        Opt into the local-client fast path: results whose canonical
        weight is at least ``spool_threshold`` bytes (server default
        when ``None``) arrive as an mmap'd binary file instead of
        inline frame bytes.  Only meaningful when client and server
        share a filesystem; takes effect only when the server has a
        spool directory configured.
    """

    def __init__(self, host, port, connect_timeout=10.0,
                 verify=True, auth_token=None, retries=0,
                 backoff_base=0.05, backoff_max=2.0,
                 request_timeout=None, wire="binary", spool=False,
                 spool_threshold=None):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.verify = verify
        self.auth_token = auth_token
        self.retries = max(0, int(retries))
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.request_timeout = request_timeout
        self.wire_preference = wire
        self.spool_preference = bool(spool)
        self.spool_threshold = spool_threshold
        #: times the transport was re-established by the retry layer
        self.reconnects = 0
        #: retry attempts spent across all requests
        self.retries_used = 0
        #: cumulative frame bytes read off the socket (all replies)
        self.bytes_received = 0
        #: cumulative payload bytes that arrived via spool files
        self.spool_bytes = 0
        self._rng = random.Random()
        self._ids = itertools.count(1)
        self._id_prefix = "c%08x" % self._rng.getrandbits(32)
        self._sock = None
        self._connect()

    def _connect(self):
        """(Re-)establish the transport: TCP + hello/auth."""
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP,
                            socket.TCP_NODELAY, 1)
            hello = recv_frame(sock)
            if not isinstance(hello, dict):
                raise ProtocolError("no hello from server")
            if hello.get("type") == "error":
                raise _error_for(hello)
            if hello.get("type") != "hello":
                raise ProtocolError("unexpected first frame %r"
                                    % (hello,))
            if hello.get("auth_required"):
                if self.auth_token is None:
                    raise AuthError(
                        "server requires an auth token and none was "
                        "configured")
                send_frame(sock, {"type": "auth",
                                  "token": self.auth_token})
                hello = recv_frame(sock)
                if not isinstance(hello, dict):
                    raise ProtocolError("no hello after auth")
                if hello.get("type") == "error":
                    raise _error_for(hello)
                if hello.get("type") != "hello":
                    raise ProtocolError(
                        "unexpected post-auth frame %r" % (hello,))
            wire, spooling = self._negotiate_wire(sock, hello)
        except BaseException:
            sock.close()
            raise
        sock.settimeout(self.request_timeout)
        self._sock = sock
        #: wire protocol version the server speaks
        self.protocol = hello.get("protocol")
        #: catalog generation this session is pinned to
        self.generation = hello.get("generation")
        #: reply encoding actually negotiated for this connection
        self.wire = wire
        #: True when the server accepted the spool fast path
        self.spooling = spooling

    def _negotiate_wire(self, sock, hello):
        """Ask for the preferred reply encoding; (format, spooling).

        Skipped entirely when the client wants the legacy JSON wire
        with no spooling, and degraded silently to JSON against a
        server whose hello does not advertise the preference — old
        client against new server, and new client against old server,
        both keep working.
        """
        wanted = self.wire_preference
        formats = hello.get("wire_formats") or [WIRE_JSON]
        if wanted not in formats:
            wanted = WIRE_JSON
        spool = self.spool_preference and bool(hello.get("spool"))
        if wanted == WIRE_JSON and not spool:
            return WIRE_JSON, False
        request = {"type": "wire", "format": wanted, "spool": spool}
        if self.spool_threshold is not None:
            request["spool_threshold"] = int(self.spool_threshold)
        send_frame(sock, request)
        reply = recv_frame(sock, meter=self._meter)
        if reply is None:
            raise ConnectionLostError(
                "server closed the connection during wire "
                "negotiation")
        if isinstance(reply, dict) and reply.get("type") == "error":
            raise _error_for(reply)
        if not isinstance(reply, dict) \
                or reply.get("type") != "wire_ok":
            raise ProtocolError(
                "unexpected wire-negotiation reply %r" % (reply,))
        return reply.get("format", WIRE_JSON), \
            bool(reply.get("spool"))

    def _meter(self, nbytes):
        self.bytes_received += nbytes

    # ------------------------------------------------------------------
    def _next_id(self):
        return "%s-%d" % (self._id_prefix, next(self._ids))

    def _recv_matching(self, rid):
        """The reply for request ``rid``.

        Transport failures (EOF, reset, torn frame, timeout) raise
        :class:`~repro.errors.ConnectionLostError`.  ``error`` frames
        raise typed regardless of id — an id-less error (e.g. the
        server's final drain frame) answers whatever is pending.
        Stale ``result`` frames from an abandoned earlier attempt on
        this connection are discarded.
        """
        while True:
            try:
                response = recv_frame(self._sock, meter=self._meter)
            except socket.timeout as exc:
                raise ConnectionLostError(
                    "timed out after %.3gs awaiting the reply"
                    % self.request_timeout) from exc
            except OSError as exc:
                raise ConnectionLostError(
                    "transport failed awaiting the reply: %s"
                    % exc) from exc
            except ProtocolError as exc:
                raise ConnectionLostError(
                    "reply could not be read: %s" % exc) from exc
            if response is None:
                raise ConnectionLostError(
                    "server closed the connection")
            if response.get("type") == "error":
                raise _error_for(response)
            if "id" in response and response["id"] != rid:
                continue            # stale reply of an abandoned try
            return response

    def _request_once(self, request):
        rid = self._next_id()
        stamped = dict(request)
        stamped["id"] = rid
        try:
            send_frame(self._sock, stamped)
        except OSError as exc:
            raise ConnectionLostError(
                "transport failed sending the request: %s"
                % exc) from exc
        return self._recv_matching(rid)

    def _backoff(self, attempt):
        pause = min(self.backoff_max,
                    self.backoff_base * (2.0 ** (attempt - 1)))
        if pause > 0.0:
            time.sleep(pause * (0.5 + 0.5 * self._rng.random()))

    def _request(self, request):
        attempts = 0
        while True:
            try:
                return self._request_once(request)
            except (ConnectionLostError,
                    ServerOverloadedError) as exc:
                # never retry a deliberate refusal to serve
                if isinstance(exc, ServerDrainingError):
                    raise
                if attempts >= self.retries:
                    if self.retries > 0:
                        raise RetriesExhaustedError(
                            "request failed after %d attempts: %s"
                            % (attempts + 1, exc),
                            attempts=attempts + 1) from exc
                    raise
                attempts += 1
                self.retries_used += 1
                self._backoff(attempts)
                if isinstance(exc, ConnectionLostError):
                    try:
                        self._sock.close()
                    except OSError:
                        pass
                    # the fresh session may pin a newer generation
                    self._connect()
                    self.reconnects += 1

    def _result(self, request):
        attempts = 0
        while True:
            response = self._request(request)
            if response.get("type") != "result":
                raise ProtocolError("expected a result frame, got %r"
                                    % (response.get("type"),))
            spool = response.get("payload_spool")
            try:
                if spool is not None:
                    payload = read_spooled_payload(
                        spool["path"],
                        expected_bytes=spool.get("bytes"))
                    self.spool_bytes += int(spool.get("bytes") or 0)
                else:
                    payload = response["payload"]
                break
            except SpoolError:
                # the spool file vanished or tore under us; a resend
                # re-ships the payload through a fresh file (or
                # inline), so spend the retry budget on it
                if attempts >= self.retries:
                    raise
                attempts += 1
                self.retries_used += 1
                self._backoff(attempts)
        canonical = decode_value(payload)
        if self.verify and \
                result_checksum(canonical) != response["checksum"]:
            raise ProtocolError(
                "shipped payload does not match its sha1 checksum "
                "(%s)" % response["checksum"])
        return ClientReply(canonical, response,
                           spooled=spool is not None)

    # ------------------------------------------------------------------
    # request types
    # ------------------------------------------------------------------
    def moa(self, query_text, timeout=None):
        """Execute a textual MOA query; returns a :class:`ClientReply`."""
        request = {"type": "moa", "query": query_text}
        if timeout is not None:
            request["timeout"] = timeout
        return self._result(request)

    def sql(self, query_text, timeout=None):
        """Execute SQL text through the server's SQL front-end
        (parse -> bind -> lower to the same MIL pipeline as ``moa``);
        returns a :class:`ClientReply`.  Malformed text answers a
        typed :class:`~repro.errors.SqlParseError`, an unsupported
        construct a :class:`~repro.errors.SqlUnsupportedError` —
        neither is retryable, and the connection survives both."""
        request = {"type": "sql", "query": query_text}
        if timeout is not None:
            request["timeout"] = timeout
        return self._result(request)

    def tpcd(self, number, params=None, timeout=None):
        """Run TPC-D query ``number`` (optional param overrides)."""
        request = {"type": "tpcd", "number": int(number)}
        if params:
            request["params"] = dict(params)
        if timeout is not None:
            request["timeout"] = timeout
        return self._result(request)

    def mil(self, program, fetch, timeout=None):
        """Execute a :class:`~repro.monet.mil.MILProgram`; the reply
        value maps each name in ``fetch`` to its result."""
        request = {"type": "mil", "program": encode_program(program),
                   "fetch": list(fetch)}
        if timeout is not None:
            request["timeout"] = timeout
        return self._result(request)

    def stats(self):
        """The server's aggregate stats dict."""
        response = self._request({"type": "stats"})
        if response.get("type") != "stats":
            raise ProtocolError("expected a stats frame")
        return response["stats"]

    def ping(self):
        """Liveness check; returns the session's pinned generation."""
        response = self._request({"type": "ping"})
        if response.get("type") != "pong":
            raise ProtocolError("expected a pong frame")
        return response["generation"]

    # ------------------------------------------------------------------
    def close(self):
        try:
            send_frame(self._sock, {"type": "close"})
        except OSError:
            pass
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        self.close()


def _error_for(response):
    """The typed exception for an ``error`` frame."""
    name = response.get("error", "ServerError")
    message = response.get("message", "")
    cls = getattr(_errors, str(name), None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = ServerError
    return cls("%s (from server)" % message)
