"""Wire protocol: length-prefixed frames + a value codec.

Framing
-------

Every message is one **frame**: a 4-byte big-endian length word
followed by that many payload bytes.  With the top bit of the length
word clear the payload is UTF-8 JSON; with it set the payload is a
**binary columnar frame** (below).  Frames above
:data:`MAX_FRAME_BYTES` are refused with a typed
:class:`~repro.errors.ProtocolError` before any allocation, so a
corrupt length prefix cannot balloon memory (the cap is below 2**31,
so the flag bit can never be mistaken for length).  ``recv_frame``
returns ``None`` on a clean EOF at a frame boundary (peer closed) and
raises on a mid-frame truncation.

Binary columnar frames
----------------------

The base64-in-JSON array encoding taxes exactly the thing the flat
BAT representation makes cheap — moving columns.  The binary frame
(Arrow-IPC-shaped: one JSON header describing column buffers, then
the raw buffers) ships every fixed-dtype ndarray as its raw
little-endian bytes instead::

    u32 BE  0x80000000 | payload_length
    payload:
        u32 BE  header_length
        header  UTF-8 JSON {"msg": <message>, "buffers": [len, ...]}
        pad to 8-byte alignment, then each buffer 8-aligned in order

In the header's ``msg`` tree an array leaf is a ``{"__ndbuf__": i,
"dtype": ..., "shape": ...}`` marker naming buffer ``i``; buffer
offsets are implicit (sequential, 8-aligned), so the header does not
depend on its own length.  Identical buffer bytes are deduplicated by
content hash — two columns with equal bytes ship once and both
markers name the same buffer.  Decoding resolves markers to read-only
ndarray **views** over the received bytes (or over an ``mmap`` of a
spooled payload file): zero copies on the reply path.  Whether a
session speaks binary is negotiated per connection off the server's
``hello`` frame (see :mod:`repro.server.server`); JSON-only clients
never see a flagged frame.

The same payload body, minus the outer length word, is what the
server writes to a **spool file** for the local-client fast path
(:func:`write_spooled_payload` / :func:`read_spooled_payload`) — the
same shape :class:`~repro.monet.multiproc.MultiprocExecutor` uses to
ship per-worker result files, lifted to the serving layer.

Value codec
-----------

Query results travel in the same canonical form the multi-process
dispatcher ships (:func:`repro.monet.multiproc.ship_value`), which is
not JSON-native: numpy arrays, ``Row``/``Ref`` values, bytes.
:func:`encode_value`/:func:`decode_value` are exact inverses **with
respect to the sha1 result checksum**: fixed-dtype arrays travel as
base64 of their raw little-endian bytes (bit-exact), object arrays
element-wise, tuples degrade to lists (checksum-equivalent by design),
and numpy scalars degrade to Python numbers (likewise).  The client
re-checksums the decoded payload against the worker's shipped digest,
so any codec asymmetry is caught per response, not trusted.

Non-finite floats ride on Python's JSON ``NaN``/``Infinity`` literals
(both ends of this protocol are this package).
"""

import base64
import hashlib
import json
import mmap
import os
import struct

import numpy as np

from .. import faults
from ..errors import FrameTooLargeError, ProtocolError, SpoolError
from ..monet.mil import MILProgram, MILStmt, Var

#: Refuse frames above this many payload bytes (2**28 = 256 MiB).
MAX_FRAME_BYTES = 1 << 28

#: Wire formats a connection can negotiate (hello-frame handshake).
WIRE_JSON = "json"
WIRE_BINARY = "binary"
WIRE_FORMATS = (WIRE_JSON, WIRE_BINARY)

_LENGTH = struct.Struct(">I")

#: Top bit of the length word: the payload is a binary columnar frame.
_BINARY_FLAG = 0x80000000

_HEADER_LEN = struct.Struct(">I")

#: Column buffers start (and stay) 8-byte aligned within the payload.
_BUFFER_ALIGN = 8

#: Chaos injection points of the wire (see :mod:`repro.faults`):
#: ``send.reset`` raises/crashes before any bytes go out (connection
#: reset), ``send.torn`` (``tear`` action) writes the length prefix
#: plus a fraction of the body and then concludes (a frame torn
#: mid-send), ``recv.delay`` stalls the receive path (slow-loris).
faults.declare("protocol.send.reset", "protocol.send.torn",
               "protocol.recv.delay")

#: Marker keys reserved by the codec; a plain dict containing any of
#: them (or non-string keys) is encoded in the explicit pair-list form.
_MARKERS = frozenset(("__nd__", "__ndo__", "__ndbuf__", "__row__",
                      "__ref__", "__bytes__", "__tuple__", "__dict__",
                      "__var__"))


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def _send_body(sock, body, flag=0):
    """One frame on the wire, through the chaos injection points."""
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError("refusing to send %d-byte frame (max %d)"
                            % (len(body), MAX_FRAME_BYTES))
    faults.fire("protocol.send.reset")
    spec = faults.fire("protocol.send.torn")
    if spec is not None:
        sock.sendall(_LENGTH.pack(flag | len(body))
                     + body[:int(len(body) * spec.fraction)])
        spec.conclude()
    sock.sendall(_LENGTH.pack(flag | len(body)) + body)


def send_frame(sock, obj):
    """Serialise ``obj`` as JSON and write one frame."""
    body = json.dumps(obj, allow_nan=True,
                      separators=(",", ":")).encode("utf-8")
    _send_body(sock, body)


def send_binary_frame(sock, obj):
    """Write ``obj`` as one binary columnar frame.

    Same chaos injection points (``protocol.send.reset`` /
    ``protocol.send.torn``) and the same size cap as the JSON path —
    the framing hardening does not fork per wire format.
    """
    _send_body(sock, encode_binary_message(obj), flag=_BINARY_FLAG)


def _recv_exact(sock, nbytes):
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock, meter=None):
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Handles both wire formats: a flagged length word parses the
    payload as a binary columnar frame (array leaves come back as
    read-only ndarray views over the received bytes), otherwise as
    JSON.  An announced length above :data:`MAX_FRAME_BYTES` raises
    the typed :class:`~repro.errors.FrameTooLargeError` (a
    ProtocolError subclass) before any allocation; the server answers
    it with an error frame before hanging up instead of silently
    dropping the connection.  ``meter``, when given, is called with
    the frame's total on-wire byte count (length word included).
    """
    faults.fire("protocol.recv.delay")
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (word,) = _LENGTH.unpack(header)
    binary = bool(word & _BINARY_FLAG)
    length = word & ~_BINARY_FLAG
    if length > MAX_FRAME_BYTES:
        raise FrameTooLargeError("refusing %d-byte frame (max %d)"
                                 % (length, MAX_FRAME_BYTES))
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame "
                            "(%d bytes expected)" % length)
    if meter is not None:
        meter(_LENGTH.size + length)
    if binary:
        return decode_binary_message(body)
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc) from exc


# ----------------------------------------------------------------------
# value codec
# ----------------------------------------------------------------------
class BufferSink:
    """Collects the column buffers of one binary message.

    ``add`` registers an array's raw little-endian bytes and returns
    its ``__ndbuf__`` marker.  Buffers are deduplicated by content
    hash — identical bytes (whatever their dtype or shape, which live
    in the marker) are stored once and shared by every marker naming
    them, the wire-side twin of the result cache's replica detection.
    """

    __slots__ = ("buffers", "nbytes", "dedup_hits", "_by_hash")

    def __init__(self):
        self.buffers = []               # memoryviews, in buffer order
        self.nbytes = 0                 # unique buffer bytes collected
        self.dedup_hits = 0             # markers that reused a buffer
        self._by_hash = {}

    def add(self, array):
        data = np.ascontiguousarray(array)
        if data.dtype.byteorder == ">":
            data = np.ascontiguousarray(
                data.astype(data.dtype.newbyteorder("<")))
        view = memoryview(data).cast("B") if data.nbytes \
            else memoryview(b"")
        key = hashlib.sha1(view).digest()
        index = self._by_hash.get(key)
        if index is None:
            index = len(self.buffers)
            self._by_hash[key] = index
            self.buffers.append(view)
            self.nbytes += data.nbytes
        else:
            self.dedup_hits += 1
        return {"__ndbuf__": index, "dtype": data.dtype.str,
                "shape": list(data.shape)}


def encode_value(value, sink=None):
    """Canonical shipped value -> JSON-safe structure.

    With a :class:`BufferSink`, fixed-dtype ndarrays leave the tree as
    ``__ndbuf__`` markers (their bytes go to the sink, for a binary
    frame or a spool file); without one they ride inline as base64.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        # checksum canon treats numpy scalars and Python numbers
        # identically, so the degrade is digest-preserving
        return value.item()
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return {"__ndo__": [encode_value(item, sink)
                                for item in value.tolist()]}
        if sink is not None:
            return sink.add(value)
        data = np.ascontiguousarray(value)
        return {"__nd__": data.dtype.str,
                "shape": list(data.shape),
                "b64": base64.b64encode(data.tobytes()).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item, sink)
                              for item in value]}
    if isinstance(value, list):
        return [encode_value(item, sink) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) \
                and not (_MARKERS & set(value)):
            return {key: encode_value(item, sink)
                    for key, item in value.items()}
        return {"__dict__": [[encode_value(key, sink),
                              encode_value(item, sink)]
                             for key, item in value.items()]}
    if hasattr(value, "names") and hasattr(value, "values"):
        # repro.moa.values.Row (duck-typed, like the checksum canon)
        return {"__row__": [[name, encode_value(item, sink)]
                            for name, item in zip(value.names,
                                                  value.values)]}
    if hasattr(value, "class_name") and hasattr(value, "oid"):
        # repro.moa.values.Ref
        return {"__ref__": [value.class_name, int(value.oid)]}
    raise ProtocolError("cannot encode value of type %s"
                        % type(value).__name__)


def decode_value(obj):
    """JSON structure -> canonical value (inverse of encode_value).

    Actual ndarrays pass through untouched: a binary frame resolves
    its ``__ndbuf__`` markers to array views at receive time, so the
    tree reaching this decoder mixes JSON structure with live arrays.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj
    if isinstance(obj, list):
        return [decode_value(item) for item in obj]
    if isinstance(obj, dict):
        if "__ndbuf__" in obj:
            # only ever valid inside a binary frame, where the marker
            # is resolved to its array before this decoder runs
            raise ProtocolError("unresolved column-buffer marker "
                                "outside a binary frame")
        if "__bytes__" in obj:
            return base64.b64decode(obj["__bytes__"])
        if "__nd__" in obj:
            array = np.frombuffer(
                base64.b64decode(obj["b64"]),
                dtype=np.dtype(obj["__nd__"]))
            return array.reshape(obj["shape"]).copy()
        if "__ndo__" in obj:
            array = np.empty(len(obj["__ndo__"]), dtype=object)
            for index, item in enumerate(obj["__ndo__"]):
                array[index] = decode_value(item)
            return array
        if "__tuple__" in obj:
            return tuple(decode_value(item)
                         for item in obj["__tuple__"])
        if "__dict__" in obj:
            return {_hashable(decode_value(key)): decode_value(item)
                    for key, item in obj["__dict__"]}
        if "__row__" in obj:
            from ..moa.values import Row
            return Row([(name, decode_value(item))
                        for name, item in obj["__row__"]])
        if "__ref__" in obj:
            from ..moa.values import Ref
            class_name, oid = obj["__ref__"]
            return Ref(class_name, oid)
        return {key: decode_value(item) for key, item in obj.items()}
    raise ProtocolError("cannot decode wire value %r" % (obj,))


def _hashable(key):
    return tuple(key) if isinstance(key, list) else key


# ----------------------------------------------------------------------
# binary columnar messages (frames + spool files)
# ----------------------------------------------------------------------
def _align(offset):
    return (offset + _BUFFER_ALIGN - 1) & ~(_BUFFER_ALIGN - 1)


def encode_binary_message(obj) -> bytes:
    """``obj`` as a binary payload body (no outer length word)."""
    sink = BufferSink()
    header = json.dumps(
        {"msg": encode_value(obj, sink=sink),
         "buffers": [len(view) for view in sink.buffers]},
        allow_nan=True, separators=(",", ":")).encode("utf-8")
    parts = [_HEADER_LEN.pack(len(header)), header]
    cursor = _HEADER_LEN.size + len(header)
    for view in sink.buffers:
        aligned = _align(cursor)
        if aligned != cursor:
            parts.append(b"\x00" * (aligned - cursor))
        parts.append(view)
        cursor = aligned + len(view)
    return b"".join(parts)


def _resolve_buffers(obj, buffers):
    """Replace ``__ndbuf__`` markers with (read-only) array views."""
    if isinstance(obj, dict):
        if "__ndbuf__" in obj:
            try:
                view = buffers[obj["__ndbuf__"]]
                dtype = np.dtype(obj["dtype"])
                shape = tuple(obj["shape"])
            except (IndexError, KeyError, TypeError, ValueError) as exc:
                raise ProtocolError("malformed column-buffer marker "
                                    "%r" % (obj,)) from exc
            array = np.frombuffer(view, dtype=dtype)
            return array.reshape(shape)
        return {key: _resolve_buffers(item, buffers)
                for key, item in obj.items()}
    if isinstance(obj, list):
        return [_resolve_buffers(item, buffers) for item in obj]
    return obj


def decode_binary_message(payload):
    """Inverse of :func:`encode_binary_message`.

    ``payload`` may be ``bytes``, a ``memoryview``, or an ``mmap`` —
    the resolved arrays are zero-copy read-only views into it, so the
    caller's buffer must outlive them (numpy keeps a reference).
    """
    payload = memoryview(payload)
    try:
        if len(payload) < _HEADER_LEN.size:
            raise ProtocolError("binary payload shorter than its "
                                "header length word")
        (header_len,) = _HEADER_LEN.unpack_from(payload, 0)
        header_end = _HEADER_LEN.size + header_len
        if header_end > len(payload):
            raise ProtocolError("binary header (%d bytes) overruns "
                                "the %d-byte payload"
                                % (header_len, len(payload)))
        header = json.loads(bytes(payload[_HEADER_LEN.size:header_end])
                            .decode("utf-8"))
        if not isinstance(header, dict) or "msg" not in header:
            raise ProtocolError("malformed binary header")
        lengths = header.get("buffers", [])
        buffers = []
        cursor = header_end
        for nbytes in lengths:
            start = _align(cursor)
            cursor = start + int(nbytes)
            if cursor > len(payload):
                raise ProtocolError(
                    "column buffer overruns the payload "
                    "(%d bytes announced past offset %d, %d total)"
                    % (nbytes, start, len(payload)))
            buffers.append(payload[start:cursor])
        return _resolve_buffers(header["msg"], buffers)
    except (UnicodeDecodeError, ValueError, struct.error) as exc:
        raise ProtocolError("undecodable binary frame: %s"
                            % exc) from exc


def payload_nbytes(value):
    """Approximate resident bytes of a canonical value.

    Exact for the dominant term (fixed-dtype array buffers); strings,
    bytes, and structure count their obvious sizes.  Used for spool
    thresholds, result-cache weighting, and the served-bytes counter —
    all places where "how big is this column data" matters and a few
    bytes of slack per node do not.
    """
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return sum(payload_nbytes(item)
                       for item in value.tolist()) + 8 * value.size
        return int(value.nbytes)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value)
    if isinstance(value, dict):
        return sum(payload_nbytes(key) + payload_nbytes(item)
                   for key, item in value.items()) + 8
    if isinstance(value, (list, tuple)):
        return sum(payload_nbytes(item) for item in value) + 8
    if hasattr(value, "names") and hasattr(value, "values"):
        return sum(payload_nbytes(name) + payload_nbytes(item)
                   for name, item in zip(value.names, value.values))
    return 8


# ----------------------------------------------------------------------
# spooled payloads (the local-client mmap fast path)
# ----------------------------------------------------------------------
def write_spooled_payload(path, value):
    """Write ``value`` as a binary payload file; returns its size.

    The file's bytes are exactly :func:`encode_binary_message` of the
    value.  No staging rename: the path is only announced to the
    client *after* this returns, and the file is transient (results,
    not durable state), so a crash mid-write strands at worst an
    unannounced partial file in the spool directory.
    """
    body = encode_binary_message(value)
    with open(path, "wb") as handle:
        handle.write(body)
    return len(body)


def read_spooled_payload(path, expected_bytes=None, unlink=True):
    """mmap a spooled payload file back to its canonical value.

    Array leaves are zero-copy views into the mapping (numpy keeps the
    mmap alive).  ``unlink`` removes the file after a successful read
    — on POSIX the mapping survives the unlink, so this is how the
    transient file's lifetime is bounded to its one reader.  Any
    failure (missing file, truncation, a length that contradicts
    ``expected_bytes``) raises the retryable typed
    :class:`~repro.errors.SpoolError`: resending the request re-ships
    the payload through a fresh file.
    """
    try:
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0,
                               access=mmap.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise SpoolError("cannot map spooled payload %s: %s"
                         % (path, exc)) from exc
    if expected_bytes is not None and len(mapped) != expected_bytes:
        raise SpoolError("spooled payload %s is %d bytes, %d announced"
                         % (path, len(mapped), expected_bytes))
    try:
        value = decode_binary_message(mapped)
    except ProtocolError as exc:
        raise SpoolError("spooled payload %s is corrupt: %s"
                         % (path, exc)) from exc
    if unlink:
        try:
            os.unlink(path)
        except OSError:
            pass                  # best-effort: the server may sweep
    return value


# ----------------------------------------------------------------------
# MIL program codec
# ----------------------------------------------------------------------
def encode_program(program):
    """A :class:`~repro.monet.mil.MILProgram` as a JSON structure.

    Statement arguments distinguish variable/catalog references
    (``{"__var__": name}``) from literal scalars (encoded values).
    """
    stmts = []
    for stmt in program:
        stmts.append({
            "target": stmt.target,
            "op": stmt.op,
            "args": [{"__var__": arg.name} if isinstance(arg, Var)
                     else encode_value(arg) for arg in stmt.args],
            "fn": stmt.fn,
        })
    return {"stmts": stmts}


def decode_program(obj):
    """Inverse of :func:`encode_program`."""
    if not isinstance(obj, dict) or "stmts" not in obj:
        raise ProtocolError("malformed MIL program on the wire")
    program = MILProgram()
    for stmt in obj["stmts"]:
        try:
            args = [Var(arg["__var__"])
                    if isinstance(arg, dict) and "__var__" in arg
                    else decode_value(arg) for arg in stmt["args"]]
            program.stmts.append(MILStmt(stmt["target"], stmt["op"],
                                         args, fn=stmt.get("fn")))
        except (KeyError, TypeError) as exc:
            raise ProtocolError("malformed MIL statement: %r"
                                % (stmt,)) from exc
    return program
