"""Wire protocol: length-prefixed JSON frames + a value codec.

Framing
-------

Every message is one **frame**: a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON.  Frames above
:data:`MAX_FRAME_BYTES` are refused with a typed
:class:`~repro.errors.ProtocolError` before any allocation, so a
corrupt length prefix cannot balloon memory.  ``recv_frame`` returns
``None`` on a clean EOF at a frame boundary (peer closed) and raises
on a mid-frame truncation.

Value codec
-----------

Query results travel in the same canonical form the multi-process
dispatcher ships (:func:`repro.monet.multiproc.ship_value`), which is
not JSON-native: numpy arrays, ``Row``/``Ref`` values, bytes.
:func:`encode_value`/:func:`decode_value` are exact inverses **with
respect to the sha1 result checksum**: fixed-dtype arrays travel as
base64 of their raw little-endian bytes (bit-exact), object arrays
element-wise, tuples degrade to lists (checksum-equivalent by design),
and numpy scalars degrade to Python numbers (likewise).  The client
re-checksums the decoded payload against the worker's shipped digest,
so any codec asymmetry is caught per response, not trusted.

Non-finite floats ride on Python's JSON ``NaN``/``Infinity`` literals
(both ends of this protocol are this package).
"""

import base64
import json
import struct

import numpy as np

from .. import faults
from ..errors import FrameTooLargeError, ProtocolError
from ..monet.mil import MILProgram, MILStmt, Var

#: Refuse frames above this many payload bytes (2**28 = 256 MiB).
MAX_FRAME_BYTES = 1 << 28

_LENGTH = struct.Struct(">I")

#: Chaos injection points of the wire (see :mod:`repro.faults`):
#: ``send.reset`` raises/crashes before any bytes go out (connection
#: reset), ``send.torn`` (``tear`` action) writes the length prefix
#: plus a fraction of the body and then concludes (a frame torn
#: mid-send), ``recv.delay`` stalls the receive path (slow-loris).
faults.declare("protocol.send.reset", "protocol.send.torn",
               "protocol.recv.delay")

#: Marker keys reserved by the codec; a plain dict containing any of
#: them (or non-string keys) is encoded in the explicit pair-list form.
_MARKERS = frozenset(("__nd__", "__ndo__", "__row__", "__ref__",
                      "__bytes__", "__tuple__", "__dict__", "__var__"))


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def send_frame(sock, obj):
    """Serialise ``obj`` as JSON and write one frame."""
    body = json.dumps(obj, allow_nan=True,
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError("refusing to send %d-byte frame (max %d)"
                            % (len(body), MAX_FRAME_BYTES))
    faults.fire("protocol.send.reset")
    spec = faults.fire("protocol.send.torn")
    if spec is not None:
        sock.sendall(_LENGTH.pack(len(body))
                     + body[:int(len(body) * spec.fraction)])
        spec.conclude()
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock, nbytes):
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock):
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    An announced length above :data:`MAX_FRAME_BYTES` raises the typed
    :class:`~repro.errors.FrameTooLargeError` (a ProtocolError
    subclass) before any allocation; the server answers it with an
    error frame before hanging up instead of silently dropping the
    connection.
    """
    faults.fire("protocol.recv.delay")
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLargeError("refusing %d-byte frame (max %d)"
                                 % (length, MAX_FRAME_BYTES))
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame "
                            "(%d bytes expected)" % length)
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc) from exc


# ----------------------------------------------------------------------
# value codec
# ----------------------------------------------------------------------
def encode_value(value):
    """Canonical shipped value -> JSON-safe structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        # checksum canon treats numpy scalars and Python numbers
        # identically, so the degrade is digest-preserving
        return value.item()
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return {"__ndo__": [encode_value(item)
                                for item in value.tolist()]}
        data = np.ascontiguousarray(value)
        return {"__nd__": data.dtype.str,
                "shape": list(data.shape),
                "b64": base64.b64encode(data.tobytes()).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) \
                and not (_MARKERS & set(value)):
            return {key: encode_value(item)
                    for key, item in value.items()}
        return {"__dict__": [[encode_value(key), encode_value(item)]
                             for key, item in value.items()]}
    if hasattr(value, "names") and hasattr(value, "values"):
        # repro.moa.values.Row (duck-typed, like the checksum canon)
        return {"__row__": [[name, encode_value(item)]
                            for name, item in zip(value.names,
                                                  value.values)]}
    if hasattr(value, "class_name") and hasattr(value, "oid"):
        # repro.moa.values.Ref
        return {"__ref__": [value.class_name, int(value.oid)]}
    raise ProtocolError("cannot encode value of type %s"
                        % type(value).__name__)


def decode_value(obj):
    """JSON structure -> canonical value (inverse of encode_value)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode_value(item) for item in obj]
    if isinstance(obj, dict):
        if "__bytes__" in obj:
            return base64.b64decode(obj["__bytes__"])
        if "__nd__" in obj:
            array = np.frombuffer(
                base64.b64decode(obj["b64"]),
                dtype=np.dtype(obj["__nd__"]))
            return array.reshape(obj["shape"]).copy()
        if "__ndo__" in obj:
            array = np.empty(len(obj["__ndo__"]), dtype=object)
            for index, item in enumerate(obj["__ndo__"]):
                array[index] = decode_value(item)
            return array
        if "__tuple__" in obj:
            return tuple(decode_value(item)
                         for item in obj["__tuple__"])
        if "__dict__" in obj:
            return {_hashable(decode_value(key)): decode_value(item)
                    for key, item in obj["__dict__"]}
        if "__row__" in obj:
            from ..moa.values import Row
            return Row([(name, decode_value(item))
                        for name, item in obj["__row__"]])
        if "__ref__" in obj:
            from ..moa.values import Ref
            class_name, oid = obj["__ref__"]
            return Ref(class_name, oid)
        return {key: decode_value(item) for key, item in obj.items()}
    raise ProtocolError("cannot decode wire value %r" % (obj,))


def _hashable(key):
    return tuple(key) if isinstance(key, list) else key


# ----------------------------------------------------------------------
# MIL program codec
# ----------------------------------------------------------------------
def encode_program(program):
    """A :class:`~repro.monet.mil.MILProgram` as a JSON structure.

    Statement arguments distinguish variable/catalog references
    (``{"__var__": name}``) from literal scalars (encoded values).
    """
    stmts = []
    for stmt in program:
        stmts.append({
            "target": stmt.target,
            "op": stmt.op,
            "args": [{"__var__": arg.name} if isinstance(arg, Var)
                     else encode_value(arg) for arg in stmt.args],
            "fn": stmt.fn,
        })
    return {"stmts": stmts}


def decode_program(obj):
    """Inverse of :func:`encode_program`."""
    if not isinstance(obj, dict) or "stmts" not in obj:
        raise ProtocolError("malformed MIL program on the wire")
    program = MILProgram()
    for stmt in obj["stmts"]:
        try:
            args = [Var(arg["__var__"])
                    if isinstance(arg, dict) and "__var__" in arg
                    else decode_value(arg) for arg in stmt["args"]]
            program.stmts.append(MILStmt(stmt["target"], stmt["op"],
                                         args, fn=stmt.get("fn")))
        except (KeyError, TypeError) as exc:
            raise ProtocolError("malformed MIL statement: %r"
                                % (stmt,)) from exc
    return program
