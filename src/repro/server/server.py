"""The socket front-end: one listener, one thread per connection.

Each accepted connection becomes a :class:`~repro.server.service.
Session` (pinning the catalog generation current at accept time) and
receives a ``hello`` frame carrying that generation.  The connection
then speaks a strict request/response protocol — one frame in, one
frame out — over :mod:`repro.server.protocol` framing:

================  ====================================================
request type       response
================  ====================================================
``moa``            ``result`` (rows/scalar + sha1 checksum)
``tpcd``           ``result`` for the numbered TPC-D query
``mil``            ``result`` ``{name: value}`` for the fetch list
``stats``          ``stats`` (latency percentiles, cache hit rates...)
``ping``           ``pong`` (generation echo, liveness)
``close``          connection shut down cleanly
================  ====================================================

Failures never tear the connection: any :class:`~repro.errors.
ReproError` becomes an ``error`` frame ``{"error": <class name>,
"message": ...}`` the client re-raises as the matching typed
exception.  Only protocol-level corruption (undecodable frame) closes
the socket.
"""

import socket
import threading

from ..errors import ProtocolError, ReproError
from .protocol import recv_frame, send_frame

#: Bump when the frame/request shape changes incompatibly.
PROTOCOL_VERSION = 1


class QueryServer:
    """Serves a :class:`~repro.server.service.QueryService` over TCP.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  The server owns only sockets and threads — the
    service (pools, caches, admission) is injected and may outlive it.
    """

    def __init__(self, service, host="127.0.0.1", port=0, backlog=64):
        self.service = service
        self.host = host
        self.port = port
        self.backlog = backlog
        self._sock = None
        self._accept_thread = None
        self._conns = []             # [(thread, socket)] still live
        self._conn_lock = threading.Lock()
        self._running = False

    # ------------------------------------------------------------------
    @property
    def address(self):
        """``(host, port)`` actually bound (after :meth:`start`)."""
        return self._sock.getsockname()[:2]

    def start(self):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((self.host, self.port))
        self._sock.listen(self.backlog)
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True)
        self._accept_thread.start()
        return self

    def _accept_loop(self):
        while self._running:
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                break                       # listener closed: stopping
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="serve-conn", daemon=True)
            with self._conn_lock:
                self._conns = [(t, c) for t, c in self._conns
                               if t.is_alive()]
                self._conns.append((thread, conn))
            thread.start()

    def _serve_connection(self, conn):
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            session = self.service.session()
        except ReproError as exc:
            try:
                send_frame(conn, {"type": "error",
                                  "error": type(exc).__name__,
                                  "message": str(exc)})
            except OSError:
                pass
            conn.close()
            return
        try:
            send_frame(conn, {"type": "hello",
                              "protocol": PROTOCOL_VERSION,
                              "generation": session.generation,
                              "procs": self.service.procs})
            while self._running:
                try:
                    request = recv_frame(conn)
                except ProtocolError:
                    break                    # corrupt frame: hang up
                if request is None or not isinstance(request, dict):
                    break
                rtype = request.get("type")
                if rtype == "close":
                    break
                response = self._handle(session, request)
                if "id" in request:
                    response["id"] = request["id"]
                try:
                    send_frame(conn, response)
                except ProtocolError as exc:
                    # an unshippable (oversized) result still answers
                    # with a typed error frame — never a torn socket
                    error = {"type": "error",
                             "error": type(exc).__name__,
                             "message": str(exc)}
                    if "id" in request:
                        error["id"] = request["id"]
                    send_frame(conn, error)
        except OSError:
            pass                             # peer vanished mid-frame
        finally:
            session.close()
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    def _handle(self, session, request):
        rtype = request.get("type")
        if rtype == "ping":
            return {"type": "pong", "generation": session.generation}
        if rtype == "stats":
            return {"type": "stats", "stats": self.service.stats()}
        try:
            return session.execute(request)
        except Exception as exc:        # noqa: BLE001 — error frame
            # a failing request must answer, never tear the
            # connection: ReproErrors keep their class name (the
            # client re-raises the matching type), anything else
            # degrades to a generic ServerError on the client side
            self.service.count_error(exc)
            return {"type": "error", "error": type(exc).__name__,
                    "message": str(exc)}

    # ------------------------------------------------------------------
    def stop(self):
        """Stop accepting, close every connection, join the threads."""
        self._running = False
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._conn_lock:
            conns = list(self._conns)
        for _thread, conn in conns:
            # unblock handlers parked in recv_frame: their recv
            # returns EOF/EBADF and the session closes cleanly
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread, _conn in conns:
            thread.join(timeout=5.0)

    def __enter__(self):
        return self.start()

    def __exit__(self, _exc_type, _exc, _tb):
        self.stop()
