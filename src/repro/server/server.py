"""The socket front-end: one listener, one thread per connection.

Each accepted connection becomes a :class:`~repro.server.service.
Session` (pinning the catalog generation current at accept time) and
receives a ``hello`` frame carrying that generation.  The connection
then speaks a strict request/response protocol — one frame in, one
frame out — over :mod:`repro.server.protocol` framing:

================  ====================================================
request type       response
================  ====================================================
``moa``            ``result`` (rows/scalar + sha1 checksum)
``sql``            ``result`` for SQL text (parse -> bind -> lower)
``tpcd``           ``result`` for the numbered TPC-D query
``mil``            ``result`` ``{name: value}`` for the fetch list
``stats``          ``stats`` (latency percentiles, cache hit rates...)
``ping``           ``pong`` (generation echo, liveness)
``wire``           ``wire_ok`` (reply-encoding / spool negotiation)
``close``          connection shut down cleanly
================  ====================================================

The hello frame advertises ``wire_formats`` (``json`` and ``binary``)
and whether a spool directory is configured; a ``wire`` request then
switches the connection's *reply* encoding — requests stay JSON
frames either way, and a client that never negotiates keeps the
legacy all-JSON protocol byte-for-byte.  On the binary wire, result
payloads ship as raw little-endian column buffers after a JSON
header (see :mod:`repro.server.protocol`); with spooling negotiated,
replies past the client's threshold ship as mmap'd files instead —
the local-client fast path.

Failures never tear the connection: any :class:`~repro.errors.
ReproError` becomes an ``error`` frame ``{"error": <class name>,
"message": ..., "retryable": bool}`` the client re-raises as the
matching typed exception (the ``retryable`` bit is the server-side
:data:`~repro.errors.RETRYABLE` verdict, for clients that do not
know the class).  Only protocol-level corruption (undecodable frame) closes
the socket — and even an oversized frame is answered with a typed
:class:`~repro.errors.FrameTooLargeError` frame before the hang-up.

Hardening knobs (all off by default):

* ``auth_token`` — the hello announces ``auth_required`` and the
  first client frame must be ``{"type": "auth", "token": ...}``;
  a wrong or missing token earns an :class:`~repro.errors.AuthError`
  frame and a closed socket, before any session (or worker pool)
  is allocated;
* ``quota_rps``/``quota_burst`` — a per-connection token bucket over
  executable requests; an exhausted bucket answers
  :class:`~repro.errors.QuotaExceededError` but keeps the connection;
* :meth:`QueryServer.drain` — graceful shutdown: stop accepting,
  finish in-flight requests up to a deadline, answer anything newly
  submitted (and any straggler still running at the deadline) with a
  typed :class:`~repro.errors.ServerDrainingError` frame.
"""

import hmac
import itertools
import os
import socket
import threading
import time
import weakref

from .. import faults
from ..errors import (AuthError, FrameTooLargeError, InjectedFaultError,
                      ProtocolError, QuotaExceededError, ReproError,
                      ServerDrainingError, WireFormatError, is_retryable)
from .protocol import (WIRE_BINARY, WIRE_FORMATS, WIRE_JSON,
                       encode_value, recv_frame, send_binary_frame,
                       send_frame, write_spooled_payload)

#: Payload bytes above which a spool-enabled connection receives its
#: result as an mmap'd file instead of inline frame bytes (the client
#: may negotiate its own threshold).
DEFAULT_SPOOL_THRESHOLD = 64 * 1024


def _error_frame(exc):
    """The typed ``error`` frame for ``exc``.

    Carries the exception class name (the client re-raises the
    matching type) and the server's retryability verdict from the
    :data:`~repro.errors.RETRYABLE` taxonomy, so even a client that
    does not know the class can still decide whether resubmitting the
    identical request can ever succeed.
    """
    return {"type": "error", "error": type(exc).__name__,
            "message": str(exc), "retryable": is_retryable(exc)}

#: Bump when the frame/request shape changes incompatibly.
PROTOCOL_VERSION = 1

#: Seconds an unauthenticated connection gets to present its token
#: (bounds the slow-loris surface of the auth handshake).
AUTH_TIMEOUT = 10.0

#: Chaos injection points of the serving loop (see :mod:`repro.
#: faults`): ``handle.delay`` stalls a request before execution
#: (drives drain/straggler and client-timeout paths), ``reply.drop``
#: swallows one reply (the connection stays up, the client never
#: hears back), ``reply.reset`` hangs up instead of replying.
faults.declare("server.handle.delay", "server.reply.drop",
               "server.reply.reset")

#: Request types that execute work (and are subject to quotas and
#: draining); ``ping``/``stats``/``close`` stay exempt so liveness
#: checks keep answering under load and during drain.
EXECUTABLE_TYPES = frozenset(("moa", "sql", "tpcd", "mil"))


class _TokenBucket:
    """Per-connection request-rate limiter (quota_rps > 0)."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate, burst):
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._stamp = time.monotonic()

    def take(self):
        now = time.monotonic()
        self._tokens = min(
            self.burst,
            self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens < 1.0:
            return False
        self._tokens -= 1.0
        return True


class QueryServer:
    """Serves a :class:`~repro.server.service.QueryService` over TCP.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  The server owns only sockets and threads — the
    service (pools, caches, admission) is injected and may outlive it.
    """

    def __init__(self, service, host="127.0.0.1", port=0, backlog=64,
                 auth_token=None, quota_rps=0.0, quota_burst=None,
                 spool_dir=None, spool_threshold=None):
        self.service = service
        self.host = host
        self.port = port
        self.backlog = backlog
        #: shared secret every connection must present (None = open)
        self.auth_token = auth_token
        #: directory for the local-client result fast path: replies
        #: past the threshold ship as mmap'd binary files instead of
        #: inline frame bytes (None = spooling off; clients must still
        #: opt in through the ``wire`` negotiation)
        self.spool_dir = spool_dir
        self.spool_threshold = DEFAULT_SPOOL_THRESHOLD \
            if spool_threshold is None else int(spool_threshold)
        self._spool_seq = itertools.count()
        #: sustained executable requests/second per connection
        #: (0 = unlimited); burst defaults to max(1, quota_rps)
        self.quota_rps = float(quota_rps or 0.0)
        self.quota_burst = quota_burst
        self._sock = None
        self._address = None
        self._fork_hook_registered = False
        self._accept_thread = None
        self._conns = []             # [(thread, socket)] still live
        self._conn_lock = threading.Lock()
        self._running = False
        self._draining = False
        #: executable requests currently inside _handle (drain waits
        #: on this falling to zero)
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # ------------------------------------------------------------------
    @property
    def address(self):
        """``(host, port)`` actually bound (after :meth:`start`);
        stays readable after the listener closes (stop/drain)."""
        return self._address

    def start(self):
        if self.spool_dir is not None:
            os.makedirs(self.spool_dir, exist_ok=True)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((self.host, self.port))
        self._address = self._sock.getsockname()[:2]
        self._sock.listen(self.backlog)
        # fork-based worker pools inherit the listening fd; without
        # this, the kernel keeps completing handshakes on the port
        # after stop()/drain() for as long as any worker lives (the
        # new connections just never get accepted).  Close the
        # inherited copy in every forked child.
        if not self._fork_hook_registered:
            self._fork_hook_registered = True
            ref = weakref.ref(self)

            def _close_inherited_listener():
                server = ref()
                if server is not None and server._sock is not None:
                    try:
                        server._sock.close()
                    except OSError:
                        pass

            os.register_at_fork(after_in_child=_close_inherited_listener)
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True)
        self._accept_thread.start()
        return self

    def _accept_loop(self):
        while self._running:
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                break                       # listener closed: stopping
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="serve-conn", daemon=True)
            with self._conn_lock:
                self._conns = [(t, c) for t, c in self._conns
                               if t.is_alive()]
                self._conns.append((thread, conn))
            thread.start()

    def _send_error(self, conn, exc, request=None):
        """Best-effort typed ``error`` frame for ``exc``."""
        error = _error_frame(exc)
        if request is not None and "id" in request:
            error["id"] = request["id"]
        try:
            send_frame(conn, error)
        except OSError:
            pass

    def _authenticate(self, conn):
        """Run the shared-secret handshake; True when authenticated.

        Runs *before* any session (hence worker pool) is allocated,
        so unauthenticated peers cannot spend server resources, and
        under a socket deadline so they cannot park the thread.
        """
        try:
            conn.settimeout(AUTH_TIMEOUT)
            send_frame(conn, {"type": "hello",
                              "protocol": PROTOCOL_VERSION,
                              "auth_required": True})
            frame = recv_frame(conn)
        except (OSError, ProtocolError):
            conn.close()
            return False
        token = frame.get("token") if isinstance(frame, dict) else None
        if not (isinstance(frame, dict) and frame.get("type") == "auth"
                and isinstance(token, str)
                and hmac.compare_digest(token, self.auth_token)):
            self.service.count("auth_failures")
            self._send_error(conn, AuthError("bad or missing token"))
            conn.close()
            return False
        conn.settimeout(None)
        return True

    def _serve_connection(self, conn):
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.auth_token is not None and not self._authenticate(conn):
            return
        try:
            session = self.service.session()
        except ReproError as exc:
            self._send_error(conn, exc)
            conn.close()
            return
        bucket = None
        if self.quota_rps > 0.0:
            burst = self.quota_burst
            if burst is None:
                burst = max(1.0, self.quota_rps)
            bucket = _TokenBucket(self.quota_rps, burst)
        #: per-connection wire state, rewritten by ``wire`` requests;
        #: every connection starts on the JSON wire, so clients that
        #: never negotiate keep the legacy protocol byte-for-byte
        wire = {"format": WIRE_JSON, "spool": False,
                "spool_threshold": self.spool_threshold}
        try:
            send_frame(conn, {"type": "hello",
                              "protocol": PROTOCOL_VERSION,
                              "generation": session.generation,
                              "procs": self.service.procs,
                              "wire_formats": sorted(WIRE_FORMATS),
                              "spool": self.spool_dir is not None})
            while self._running:
                try:
                    request = recv_frame(conn)
                except FrameTooLargeError as exc:
                    # answer oversize with a typed frame, then hang
                    # up: the offending frame's bytes are unread, so
                    # the stream cannot be resynchronised
                    self._send_error(conn, exc)
                    break
                except ProtocolError:
                    break                    # corrupt frame: hang up
                if request is None or not isinstance(request, dict):
                    break
                rtype = request.get("type")
                if rtype == "close":
                    break
                if rtype == "wire":
                    # negotiation is handshake, not request/reply: it
                    # answers before the reply fault points, like the
                    # hello frame
                    response = self._negotiate_wire(wire, request)
                    if "id" in request:
                        response["id"] = request["id"]
                    try:
                        self._send_response(conn, response, wire)
                    except ProtocolError as exc:
                        self._send_error(conn, exc, request)
                    continue
                response = self._respond(session, request, rtype,
                                         bucket)
                if "id" in request:
                    response["id"] = request["id"]
                try:
                    faults.fire("server.reply.drop")
                except InjectedFaultError:
                    continue          # reply swallowed: client retries
                try:
                    faults.fire("server.reply.reset")
                except InjectedFaultError:
                    break             # connection reset before reply
                try:
                    self._send_response(conn, response, wire)
                except ProtocolError as exc:
                    # an unshippable (oversized) result still answers
                    # with a typed error frame — never a torn socket
                    self._send_error(conn, exc, request)
        except OSError:
            pass                             # peer vanished mid-frame
        finally:
            session.close()
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    def _negotiate_wire(self, wire, request):
        """Handle a ``wire`` control request.

        Switches the connection's reply encoding (``json`` stays the
        default for clients that never send one) and opts into the
        spooled-result fast path when the server has a spool
        directory.  A format the server does not speak answers a
        typed :class:`~repro.errors.WireFormatError` frame and leaves
        the connection (and its current wire state) intact.
        """
        fmt = request.get("format", WIRE_BINARY)
        if fmt not in WIRE_FORMATS:
            return _error_frame(WireFormatError(
                "unknown wire format %r (this server speaks %s)"
                % (fmt, sorted(WIRE_FORMATS))))
        threshold = request.get("spool_threshold")
        if threshold is not None and (not isinstance(threshold, int)
                                      or isinstance(threshold, bool)
                                      or threshold < 0):
            return _error_frame(WireFormatError(
                "spool_threshold must be a non-negative integer, "
                "got %r" % (threshold,)))
        wire["format"] = fmt
        wire["spool"] = bool(request.get("spool")) \
            and self.spool_dir is not None
        if threshold is not None:
            wire["spool_threshold"] = threshold
        return {"type": "wire_ok", "format": fmt,
                "spool": wire["spool"],
                "spool_threshold": wire["spool_threshold"]}

    def _send_response(self, conn, response, wire):
        """Ship one response in the connection's negotiated encoding.

        ``result`` responses carry their payload as canonical values
        (real ndarrays) straight from the service; this is the single
        point where they meet the wire — base64-in-JSON for legacy
        connections, raw column buffers for the binary wire, or an
        mmap'd spool file for local clients past their threshold.
        Everything else (errors, stats, pongs) is plain JSON data and
        ships as a frame of the negotiated format.
        """
        payload_present = response.get("type") == "result" \
            and "payload" in response
        if payload_present and wire["spool"] \
                and response.get("payload_bytes", 0) \
                >= wire["spool_threshold"]:
            spooled = dict(response)
            payload = spooled.pop("payload")
            path = os.path.join(
                self.spool_dir, "reply-%d-%d.bin"
                % (os.getpid(), next(self._spool_seq)))
            try:
                nbytes = write_spooled_payload(path, payload)
            except OSError:
                pass    # spool dir gone/full: fall through to inline
            else:
                spooled["payload_spool"] = {"path": path,
                                            "bytes": nbytes}
                send_frame(conn, spooled)
                return
        if wire["format"] == WIRE_BINARY:
            send_binary_frame(conn, response)
            return
        if payload_present:
            response = dict(response)
            response["payload"] = encode_value(response["payload"])
        send_frame(conn, response)

    def _respond(self, session, request, rtype, bucket):
        """Policy wrapper around :meth:`_handle`: drain + quota."""
        if rtype in EXECUTABLE_TYPES:
            if self._draining:
                exc = ServerDrainingError(
                    "server is draining; not accepting new work")
                self.service.count("drain_rejections")
                return _error_frame(exc)
            if bucket is not None and not bucket.take():
                exc = QuotaExceededError(
                    "per-connection quota of %.3g requests/s exceeded"
                    % self.quota_rps)
                self.service.count("quota_rejections")
                return _error_frame(exc)
            with self._inflight_cv:
                self._inflight += 1
            try:
                return self._handle(session, request)
            finally:
                with self._inflight_cv:
                    self._inflight -= 1
                    self._inflight_cv.notify_all()
        return self._handle(session, request)

    def _handle(self, session, request):
        rtype = request.get("type")
        if rtype == "ping":
            return {"type": "pong", "generation": session.generation}
        if rtype == "stats":
            return {"type": "stats", "stats": self.service.stats()}
        try:
            faults.fire("server.handle.delay")
            return session.execute(request)
        except Exception as exc:        # noqa: BLE001 — error frame
            # a failing request must answer, never tear the
            # connection: ReproErrors keep their class name (the
            # client re-raises the matching type), anything else
            # degrades to a generic ServerError on the client side
            self.service.count_error(exc)
            return _error_frame(exc)

    # ------------------------------------------------------------------
    def drain(self, timeout=5.0):
        """Graceful shutdown: finish in-flight work, then stop.

        Closes the listener (no new connections), answers newly
        submitted executable requests with typed
        :class:`~repro.errors.ServerDrainingError` frames, waits up
        to ``timeout`` seconds for requests already executing to
        finish, then sends a best-effort id-less drain-error frame to
        every connection still open (a client parked on a reply sees
        the typed error, not a silent hang-up) and calls
        :meth:`stop`.  Returns True when the server drained fully
        within the deadline.
        """
        self._draining = True
        self._close_listener()
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cv.wait(remaining)
            drained = self._inflight == 0
        with self._conn_lock:
            conns = [conn for thread, conn in self._conns
                     if thread.is_alive()]
        exc = ServerDrainingError("server shut down while draining")
        for conn in conns:
            # stragglers (and idle clients) get a final typed frame;
            # id-less, so a pending request treats it as its answer
            self._send_error(conn, exc)
        self.stop()
        return drained

    def _close_listener(self):
        """Tear the listener down immediately.

        ``close()`` alone is not enough: the accept thread is blocked
        inside ``accept()``, and on Linux that in-flight syscall keeps
        the socket alive — the port stays in LISTEN and the *next*
        connect still succeeds.  ``shutdown()`` first wakes the
        blocked ``accept()`` and removes the LISTEN state at once.
        """
        if self._sock is not None:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    def stop(self):
        """Stop accepting, close every connection, join the threads."""
        self._running = False
        self._close_listener()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._conn_lock:
            conns = list(self._conns)
        for _thread, conn in conns:
            # unblock handlers parked in recv_frame: their recv
            # returns EOF/EBADF and the session closes cleanly
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread, _conn in conns:
            thread.join(timeout=5.0)

    def __enter__(self):
        return self.start()

    def __exit__(self, _exc_type, _exc, _tb):
        self.stop()
