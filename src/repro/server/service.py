"""The query service: warm pools, admission control, caches, stats.

A :class:`QueryService` owns everything between the wire protocol and
the multi-process dispatcher:

* **per-generation warm worker pools** — each
  :class:`~repro.monet.multiproc.MultiprocExecutor` is created pinned
  to one catalog generation and kept resident; a session acquires the
  pool matching the generation on disk *when the session starts*, so
  a writer bumping the catalog mid-session never changes what an open
  session sees (new sessions get a new pool at the new generation,
  old pools retire once their last pinned session ends);
* **admission control** — at most ``max_inflight`` requests execute
  at once, at most ``max_queue`` wait; beyond that (or when the queue
  wait exceeds the request's timeout budget) the request is refused
  with a typed :class:`~repro.errors.ServerOverloadedError`; when a
  ``plan_budget`` is configured, ``mil`` plans are additionally
  **statically verified and budget-checked** before admission (and
  ``moa`` plans after worker-side compilation), so a malformed or
  over-budget plan answers a typed error without executing anything;
* **per-query timeout** — forwarded to the dispatcher, which kills
  and respawns the worker running an overdue query
  (:class:`~repro.errors.QueryTimeoutError`);
* **caches** — the workers' plan caches (see
  :mod:`repro.server.tasks`) report their counters through every
  outcome, and an optional parent-side **result cache** short-circuits
  repeated identical requests against the same generation;
* **stats** — :meth:`QueryService.stats` aggregates request counters,
  latency percentiles over a sliding window, cache hit rates, merged
  :class:`~repro.monet.buffer.BufferStats`, and per-pool health
  (sessions, pids, respawns/crashes/timeouts).

The service is transport-agnostic: :mod:`repro.server.server` drives
it from sockets, the benchmark harness drives it in-process.
"""

import json
import threading
import time
from collections import deque

from ..analysis.verify import catalog_stats_from_manifest, check_program
from ..bench.harness import percentiles
from ..errors import (ProtocolError, ServerOverloadedError,
                      WorkerCrashedError)
from ..monet.buffer import BufferStats
from ..monet.multiproc import MultiprocExecutor
from ..monet.storage import as_backend, catalog_generation
from .cache import ResultCache
from .protocol import decode_program, payload_nbytes

#: Sliding-window size for latency percentiles.
LATENCY_WINDOW = 4096

#: Admission-stats cache entries kept (generations seen recently).
ADMISSION_STATS_CACHE = 4


def _budget_options(budget):
    """The picklable ``worker_options`` form of a ``PlanBudget``."""
    if budget is None:
        return None
    return {"max_rows": budget.max_rows, "max_bytes": budget.max_bytes,
            "max_pages": budget.max_pages}


class _PoolEntry:
    __slots__ = ("executor", "sessions")

    def __init__(self, executor):
        self.executor = executor
        self.sessions = 0


class QueryService:
    """Executes wire requests against per-generation warm pools.

    Parameters
    ----------
    db_dir:
        The shared mmap catalog directory every worker reopens.
    procs:
        Worker processes per pool (per pinned generation).
    plan_cache_size:
        Per-worker LRU plan-cache capacity (``0`` disables).
    result_cache_bytes:
        Parent-side **byte-weighted** result-cache budget (``0`` —
        the default — disables it; entries are keyed by canonical
        request **and** generation, so a bump can never serve stale
        rows, and a retired generation's entries are dropped wholesale
        when its last pinned session ends).  Identical column buffers
        across cached results are deduplicated by content hash, so
        replicated results share bytes instead of multiplying resident
        weight.
    result_cache_ttl:
        Seconds a cached result stays servable (``None`` = no expiry).
    max_inflight / max_queue:
        Admission control: concurrent executing requests / bounded
        wait queue beyond them.
    default_timeout:
        Per-query timeout in seconds applied when a request carries
        none (``None`` = unbounded).
    crash_retries:
        How many times a request whose worker crashed mid-query is
        transparently resubmitted (to a freshly respawned worker)
        before the service degrades it to a typed
        :class:`~repro.errors.ServerOverloadedError`.
    fault_plan:
        A :class:`~repro.faults.FaultPlan` shipped to every worker
        pool (chaos testing only; ``None`` = off).
    plan_budget:
        A :class:`~repro.analysis.verify.PlanBudget` enforced at
        admission (``None`` = unlimited).  ``mil`` plans are verified
        and budget-checked parent-side — before the admission queue,
        before any worker sees them — against stats derived from the
        catalog manifest alone; ``moa`` plans are budget-checked in
        the worker right after compilation, before execution.  Either
        way an over-budget plan answers a typed
        :class:`~repro.errors.PlanBudgetExceededError` (and a
        malformed ``mil`` plan a
        :class:`~repro.errors.PlanVerificationError`) without ever
        executing a statement.
    """

    def __init__(self, db_dir, procs=2, plan_cache_size=64,
                 result_cache_bytes=0, result_cache_ttl=None,
                 max_inflight=8, max_queue=32,
                 default_timeout=None, lock_timeout=None,
                 start_method=None, page_size=4096, crash_retries=1,
                 fault_plan=None, plan_budget=None):
        self.db_dir = db_dir
        self.procs = max(1, int(procs))
        self.plan_cache_size = int(plan_cache_size)
        self.max_inflight = max(1, int(max_inflight))
        self.max_queue = max(0, int(max_queue))
        self.default_timeout = default_timeout
        self.crash_retries = max(0, int(crash_retries))
        self._lock_timeout = lock_timeout
        self._start_method = start_method
        self._page_size = page_size
        self._fault_plan = fault_plan
        self.plan_budget = plan_budget
        #: generation -> manifest-derived admission stats (bounded)
        self._admission_stats = {}
        self.result_cache = ResultCache(result_cache_bytes,
                                        ttl_s=result_cache_ttl)

        self._pool_lock = threading.Lock()
        #: serialises executor construction only — never held while
        #: answering stats/release, and pool spin-up (forking procs
        #: workers) happens under it *without* _pool_lock, so existing
        #: sessions stay fully responsive while a new generation warms
        self._create_lock = threading.Lock()
        self._pools = {}                    # generation -> _PoolEntry
        self._closed = False

        self._adm = threading.Condition()
        self._inflight = 0
        self._queued = 0

        self._stats_lock = threading.Lock()
        self._counters = {"requests": 0, "results": 0, "errors": 0,
                          "timeouts": 0, "overloads": 0,
                          "result_cache_hits": 0, "crash_retries": 0,
                          "quota_rejections": 0, "auth_failures": 0,
                          "drain_rejections": 0, "plan_rejections": 0,
                          "result_bytes": 0}
        self._latencies = deque(maxlen=LATENCY_WINDOW)
        self._buffer = BufferStats()
        #: (generation, pid) -> latest cumulative plan-cache snapshot
        self._plan_stats = {}
        #: rollup of snapshots whose worker died or whose pool retired
        #: (keeps totals cumulative while _plan_stats stays bounded to
        #: live workers)
        self._plan_retired = {"hits": 0, "misses": 0, "evictions": 0,
                              "invalidations": 0, "expirations": 0}
        self._seq = 0
        self._started = time.time()

    # ------------------------------------------------------------------
    # pools + sessions
    # ------------------------------------------------------------------
    def _make_executor(self, generation):
        return MultiprocExecutor(
            self.db_dir, procs=self.procs,
            expected_generation=generation,
            start_method=self._start_method,
            page_size=self._page_size,
            lock_timeout=self._lock_timeout,
            task_modules=("repro.server.tasks",),
            worker_options={"plan_cache_size": self.plan_cache_size,
                            "plan_budget":
                                _budget_options(self.plan_budget)},
            fault_plan=self._fault_plan)

    def session(self):
        """Open a :class:`Session` pinned to the generation on disk."""
        generation = catalog_generation(self.db_dir)
        with self._pool_lock:
            if self._closed:
                raise ProtocolError("service is shut down")
            entry = self._pools.get(generation)
            if entry is not None:
                entry.sessions += 1
                return Session(self, generation, entry)
        with self._create_lock:
            # re-check under the creation lock: a concurrent connect
            # may have built this generation's pool already
            with self._pool_lock:
                if self._closed:
                    raise ProtocolError("service is shut down")
                entry = self._pools.get(generation)
                if entry is not None:
                    entry.sessions += 1
                    return Session(self, generation, entry)
            executor = self._make_executor(generation)   # slow: forks
            with self._pool_lock:
                if self._closed:
                    closed = True
                else:
                    closed = False
                    entry = _PoolEntry(executor)
                    entry.sessions = 1
                    self._pools[generation] = entry
        if closed:
            executor.close()
            raise ProtocolError("service is shut down")
        return Session(self, generation, entry)

    def _release(self, generation, entry):
        doomed = None
        with self._pool_lock:
            entry.sessions -= 1
            if entry.sessions <= 0 and not self._closed:
                try:
                    current = catalog_generation(self.db_dir)
                except Exception:
                    current = None              # unreadable: retire
                if current != generation:
                    doomed = self._pools.pop(generation, None)
        if doomed is not None:
            doomed.executor.close()
            # no session pins this generation any more and new sessions
            # open at the current one: its cached results can never be
            # requested again — return their bytes to the budget now
            self.result_cache.invalidate(
                lambda key: key[0] == generation)

    def pool_generations(self):
        with self._pool_lock:
            return sorted(self._pools)

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _admit(self, timeout):
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._adm:
            if self._inflight >= self.max_inflight:
                if self._queued >= self.max_queue:
                    self._count("overloads")
                    raise ServerOverloadedError(
                        "at %d in-flight and %d queued requests"
                        % (self._inflight, self._queued))
                self._queued += 1
                try:
                    while self._inflight >= self.max_inflight:
                        remaining = None if deadline is None \
                            else deadline - time.monotonic()
                        if remaining is not None and remaining <= 0:
                            self._count("overloads")
                            raise ServerOverloadedError(
                                "queued past the %.3fs timeout budget"
                                % timeout)
                        self._adm.wait(remaining)
                finally:
                    self._queued -= 1
            self._inflight += 1

    def _leave(self):
        with self._adm:
            self._inflight -= 1
            self._adm.notify()

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------
    def _task_for(self, request):
        """(task tuple, cache-key string) for an executable request."""
        rtype = request.get("type")
        with self._stats_lock:
            self._seq += 1
            key = "s%d" % self._seq
        if rtype == "moa":
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                raise ProtocolError("moa request needs a 'query' text")
            return ("moa", key, text), json.dumps(
                ["moa", text], sort_keys=True)
        if rtype == "sql":
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                raise ProtocolError("sql request needs a 'query' text")
            return ("sql", key, text), json.dumps(
                ["sql", text], sort_keys=True)
        if rtype == "tpcd":
            from ..tpcd.queries import QUERIES
            number = request.get("number")
            if not isinstance(number, int):
                raise ProtocolError(
                    "tpcd request needs an integer 'number'")
            if number not in QUERIES:
                raise ProtocolError("no TPC-D query %d (have %s)"
                                    % (number, sorted(QUERIES)))
            params = request.get("params")
            if params is not None and not isinstance(params, dict):
                raise ProtocolError("tpcd 'params' must be an object")
            return ("query", key, number, params), json.dumps(
                ["tpcd", number, params], sort_keys=True)
        if rtype == "mil":
            program = decode_program(request.get("program"))
            fetch = request.get("fetch")
            if not isinstance(fetch, list) \
                    or not all(isinstance(name, str) for name in fetch):
                raise ProtocolError(
                    "mil request needs a 'fetch' list of names")
            return ("mil", key, program, list(fetch)), json.dumps(
                ["mil", request["program"], fetch], sort_keys=True)
        raise ProtocolError("unknown request type %r" % (rtype,))

    def _admission_stats_for(self, generation):
        """Manifest-derived catalog stats for the verifier, cached.

        Reads only the manifest (no column data is mapped in the
        parent).  The manifest on disk may be newer than ``generation``
        when a writer bumped the catalog under an open session; the
        freshest readable stats are still the right conservative basis
        for admission, so they are used and cached under the
        generation they describe.
        """
        stats = self._admission_stats.get(generation)
        if stats is not None:
            return stats
        manifest = as_backend(self.db_dir).read_manifest()
        stats = catalog_stats_from_manifest(manifest)
        if len(self._admission_stats) >= ADMISSION_STATS_CACHE:
            self._admission_stats.clear()
        self._admission_stats[manifest.get("generation", 0)] = stats
        return stats

    def _verify_admission(self, session, task):
        """Statically verify a ``mil`` plan before admitting it.

        Raises :class:`~repro.errors.PlanVerificationError` (malformed)
        or :class:`~repro.errors.PlanBudgetExceededError` (over the
        configured :attr:`plan_budget`) — either way the plan never
        reaches the admission queue, let alone a worker.
        """
        _kind, _key, program, fetch = task
        try:
            check_program(program,
                          catalog=self._admission_stats_for(
                              session.generation),
                          budget=self.plan_budget, roots=set(fetch))
        except Exception:
            self._count("plan_rejections")
            raise

    def execute(self, session, request):
        """One executable request -> one result response dict."""
        started = time.monotonic()
        self._count("requests")
        timeout = request.get("timeout", self.default_timeout)
        task, cache_key = self._task_for(request)
        if task[0] == "mil":
            self._verify_admission(session, task)
        full_key = (session.generation, cache_key)
        cached = self.result_cache.get(full_key)
        if cached is not None:
            self._count("result_cache_hits")
            # a fresh structural copy per hit: mutating one served
            # response can never leak into the cached entry or into
            # any other response built from it
            response = cached.response()
            response["result_cached"] = True
            response["service_ms"] = round(
                (time.monotonic() - started) * 1000.0, 4)
            # a hit is a served result too: requests stays the sum of
            # results + refusals + errors whether or not the cache ran
            self._count("results")
            self._count("result_bytes",
                        response.get("payload_bytes", 0))
            self._record_latency(started)
            return response
        self._admit(timeout)
        try:
            outcome = self._submit_with_retry(session, task, timeout)
        finally:
            self._leave()
        extra = outcome.extra or {}
        with self._stats_lock:
            self._buffer.merge(outcome.stats)
            if "plan_cache" in extra:
                self._plan_stats[(outcome.generation, outcome.pid)] = \
                    extra["plan_cache"]
        # the payload stays canonical (real ndarrays) here; the wire
        # layer encodes it per connection — base64-in-JSON for legacy
        # clients, raw column buffers for the binary wire
        payload = outcome.value()
        meta = {
            "elapsed_ms": round(outcome.elapsed_ms, 4),
            "generation": outcome.generation,
            "pid": outcome.pid,
            "plan_cached": extra.get("plan_cached"),
            "result_cached": False,
            "faults": int(outcome.stats.faults),
            "payload_bytes": extra.get("result_bytes",
                                       payload_nbytes(payload)),
        }
        entry = self.result_cache.put(full_key, outcome.checksum,
                                      payload, meta)
        if entry is not None:
            # serve the interned form: the same isolation guarantee as
            # a hit, and the reply shares the deduplicated buffers
            response = entry.response()
        else:
            response = {"type": "result",
                        "checksum": outcome.checksum,
                        "payload": payload}
            response.update(meta)
        response["service_ms"] = round(
            (time.monotonic() - started) * 1000.0, 4)
        self._count("results")
        self._count("result_bytes", meta["payload_bytes"])
        self._record_latency(started)
        return response

    def _submit_with_retry(self, session, task, timeout):
        """Submit, transparently resubmitting over worker crashes.

        Every request here is an idempotent read against a pinned
        generation, so resubmitting a crashed one (the executor has
        already respawned the worker) is safe.  Once the retry budget
        is spent the request degrades to a typed
        :class:`~repro.errors.ServerOverloadedError` — the pool is
        respawning faster than it can serve.
        """
        attempts = 0
        while True:
            try:
                return session.entry.executor.submit(
                    task, timeout=timeout).result()
            except WorkerCrashedError as exc:
                if attempts >= self.crash_retries:
                    if self.crash_retries == 0:
                        raise
                    self._count("overloads")
                    raise ServerOverloadedError(
                        "worker pool is respawning after repeated "
                        "crashes (%d resubmits): %s"
                        % (attempts, exc)) from exc
                attempts += 1
                self._count("crash_retries")

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _count(self, name, delta=1):
        with self._stats_lock:
            self._counters[name] = \
                self._counters.get(name, 0) + delta

    def count(self, name, delta=1):
        """Bump a named counter (the server's policy layer uses this
        for quota/auth/drain rejections)."""
        self._count(name, delta)

    def count_error(self, exc):
        """Classify a failed request for the counters."""
        from ..errors import QueryTimeoutError
        if isinstance(exc, QueryTimeoutError):
            self._count("timeouts")
        elif not isinstance(exc, ServerOverloadedError):
            self._count("errors")       # overloads counted at refusal

    def _record_latency(self, started):
        elapsed_ms = (time.monotonic() - started) * 1000.0
        with self._stats_lock:
            self._latencies.append(elapsed_ms)

    def stats(self):
        """The aggregate state the ``stats`` request exposes."""
        pools = {}
        live_workers = set()
        with self._pool_lock:
            for generation, entry in self._pools.items():
                executor = entry.executor
                pids = executor.worker_pids()
                live_workers.update((generation, pid) for pid in pids)
                pools[str(generation)] = {
                    "procs": executor.procs,
                    "sessions": entry.sessions,
                    "pids": pids,
                    "respawns": executor.respawns,
                    "crashes": executor.crashes,
                    "timeouts": executor.timeouts,
                }
        with self._stats_lock:
            counters = dict(self._counters)
            latencies = list(self._latencies)
            buffer_stats = self._buffer.as_dict()
            # prune snapshots of killed workers / retired pools into
            # the rollup: totals stay cumulative, the dict stays
            # bounded by the live fleet
            for key in [key for key in self._plan_stats
                        if key not in live_workers]:
                snapshot = self._plan_stats.pop(key)
                for name in self._plan_retired:
                    self._plan_retired[name] += snapshot.get(name, 0)
            plan = dict(self._plan_retired)
            plan["workers"] = len(self._plan_stats)
            for snapshot in self._plan_stats.values():
                for name in ("hits", "misses", "evictions",
                             "invalidations", "expirations"):
                    plan[name] += snapshot.get(name, 0)
        lookups = plan["hits"] + plan["misses"]
        plan["hit_rate"] = round(plan["hits"] / lookups, 4) \
            if lookups else 0.0
        with self._adm:
            inflight, queued = self._inflight, self._queued
        latency = percentiles(latencies)
        latency["count"] = len(latencies)
        return {
            "counters": counters,
            "inflight": inflight,
            "queued": queued,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "latency_ms": latency,
            "plan_cache": plan,
            "result_cache": self.result_cache.snapshot(),
            "buffer": buffer_stats,
            "pools": pools,
            "uptime_s": round(time.time() - self._started, 3),
        }

    # ------------------------------------------------------------------
    def close(self):
        """Shut down every pool (graceful: queued tasks finish)."""
        with self._pool_lock:
            self._closed = True
            entries = list(self._pools.values())
            self._pools.clear()
        for entry in entries:
            entry.executor.close()

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        self.close()


class Session:
    """One client's pinned view of the catalog.

    Created by :meth:`QueryService.session` at connection time; holds
    the generation observed then and a reference to that generation's
    pool.  Writers bumping the catalog afterwards are invisible to
    this session — exactly the shared-catalog reader protocol of
    :mod:`repro.monet.storage`, lifted to the serving layer.
    """

    __slots__ = ("service", "generation", "entry", "_released")

    def __init__(self, service, generation, entry):
        self.service = service
        self.generation = generation
        self.entry = entry
        self._released = False

    def execute(self, request):
        return self.service.execute(self, request)

    def close(self):
        if not self._released:
            self._released = True
            self.service._release(self.generation, self.entry)

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        self.close()
