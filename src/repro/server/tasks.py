"""Worker-side task kinds of the query service.

This module is imported *inside every worker process* of the service's
warm pools (via ``MultiprocExecutor(task_modules=
("repro.server.tasks",))``), registering the ``moa`` and ``sql``
task kinds with the dispatcher's registry.  Keeping it out of
:mod:`repro.monet.multiproc` preserves the layering: the monet layer
never imports the moa/server layers at module scope.

``moa`` tasks — ``("moa", key, query_text)`` — execute a textual MOA
query against the worker's pinned-generation TPC-D catalog through a
per-worker **LRU plan cache**: query text + catalog generation ->
compiled :class:`~repro.moa.rewriter.RewriteResult` (flattened MIL
program + result rep).  A hit skips parse/typecheck/rewrite entirely
and re-executes the cached MIL plan
(:meth:`~repro.moa.session.MOADatabase.run_compiled`).  The key
carries the generation the worker is pinned to, so a pool serving a
newer snapshot can never resurrect a stale plan — invalidation on
generation bump falls out of the keying (new generation = new pool =
cold cache, and any shared cache keyed this way misses).

Each outcome ships ``extra = {"plan_cached": bool, "plan_cache":
{hits, misses, evictions, size, capacity}, "result_bytes": int}`` —
the cumulative counters of *this worker's* cache plus the canonical
byte weight of the result (what the wire/result-cache layers charge
for it) — which the parent-side service aggregates into the
``stats`` response.
"""

from ..analysis.verify import (PlanBudget, catalog_stats_from_kernel,
                               check_program)
from ..monet.multiproc import register_task_kind, ship_value
from .cache import LRUCache
from .protocol import payload_nbytes

#: Default per-worker plan-cache capacity (overridable through the
#: executor's ``worker_options={"plan_cache_size": N}``).
DEFAULT_PLAN_CACHE_SIZE = 64


def _plan_cache(ctx):
    cache = ctx.state.get("plan_cache")
    if cache is None:
        size = ctx.options.get("plan_cache_size",
                               DEFAULT_PLAN_CACHE_SIZE)
        cache = ctx.state["plan_cache"] = LRUCache(size)
    return cache


def _plan_budget(ctx):
    """The service's admission budget, shipped as a plain dict."""
    options = ctx.options.get("plan_budget")
    if not options:
        return None
    return PlanBudget(max_rows=options.get("max_rows"),
                      max_bytes=options.get("max_bytes"),
                      max_pages=options.get("max_pages"))


def _moa_warmup(ctx, task):
    ctx.db()


def _run_sql(ctx, task):
    """``sql`` tasks — ``("sql", key, sql_text)`` — run SQL text
    through the front-end (parse -> bind -> lower -> the same
    resolve/rewrite/verify/execute pipeline as ``moa``).  The worker's
    plan cache holds the :class:`~repro.sql.runtime.PreparedSql`
    (hole-free phases pre-compiled and budget-checked) under
    ``("sql", text, generation)``, so the key space is disjoint from
    the ``moa`` entries while sharing the same LRU capacity and
    counters."""
    _kind, _key, text = task
    db = ctx.db()
    cache = _plan_cache(ctx)
    key = ("sql", text, ctx.generation)
    prepared = cache.get(key)
    hit = prepared is not None
    if not hit:
        from ..sql.runtime import prepare_sql
        budget = _plan_budget(ctx)
        catalog = catalog_stats_from_kernel(db.kernel) \
            if budget is not None else None
        # an over-budget or malformed query raises here, before the
        # put: a rejected SQL plan never enters the cache either
        prepared = prepare_sql(db, text, budget=budget,
                               catalog=catalog)
        cache.put(key, prepared)
    value = prepared.run()
    extra = {"plan_cached": hit, "plan_cache": cache.snapshot(),
             "result_bytes": payload_nbytes(value)}
    return ship_value(value), extra


def _run_moa(ctx, task):
    _kind, _key, text = task
    db = ctx.db()
    cache = _plan_cache(ctx)
    key = (text, ctx.generation)
    compiled = cache.get(key)
    hit = compiled is not None
    if not hit:
        _resolved, compiled = db.compile(text)
        # budget check between compile and execute: the rewriter has
        # already type-verified the plan, this enforces the service's
        # static admission budget before a single statement runs.  A
        # rejected plan never enters the cache, so every resubmission
        # is re-checked (and re-rejected) the same way.
        budget = _plan_budget(ctx)
        if budget is not None:
            check_program(compiled.program,
                          catalog=catalog_stats_from_kernel(db.kernel),
                          budget=budget)
        cache.put(key, compiled)
    value = db.run_compiled(compiled)
    extra = {"plan_cached": hit, "plan_cache": cache.snapshot(),
             "result_bytes": payload_nbytes(value)}
    return ship_value(value), extra


register_task_kind("moa", _run_moa, warmup=_moa_warmup)
register_task_kind("sql", _run_sql, warmup=_moa_warmup)
