"""SQL front-end: parse -> bind -> lower to Moa/MIL.

The pipeline is ``parse_sql`` (text -> SQL AST), binding/type
inference against the TPC-D catalog, ``lower_sql`` (SQL AST ->
:class:`LoweredQuery` of MOA phases) and :class:`PreparedSql` /
``execute_sql`` (the existing resolve -> rewrite -> verify -> MIL
pipeline, phase by phase).  Correctness is differential: every
supported query is checked row-for-row against an in-memory sqlite3
oracle (:mod:`repro.sql.oracle`) over the same generated data.
"""

from .ast import NODE_CLASSES
from .lower import lower_sql
from .parser import parse_sql
from .runtime import (Hole, LoweredQuery, MoaPhase, PhaseRef,
                      PreparedSql, PyPhase, execute_sql, prepare_sql)

__all__ = [
    "NODE_CLASSES", "parse_sql", "lower_sql", "prepare_sql",
    "execute_sql", "PreparedSql", "LoweredQuery", "MoaPhase", "PyPhase",
    "PhaseRef", "Hole",
]
