"""``python -m repro.sql`` — the SQL front-end's command line.

Three modes, sharing the dataset knobs (``--sf``/``--seed``):

``--suite`` (the default when no QUERY is given)
    Run the differential suite: every SQL formulation of the
    reproduced TPC-D queries, plus the ``EXTRAS`` constructs, executed
    through the Moa/MIL pipeline *and* through an in-memory sqlite3
    oracle over the same generated rows, asserting row-set equality.
    Non-zero exit on any mismatch.
``--plan``
    Print the lowered phases (the MOA trees and py-phase arithmetic)
    for QUERY (a SQL file, ``-`` for stdin, or a suite name like
    ``q3`` / ``in_list``) without executing anything.
``QUERY``
    Execute QUERY against a freshly generated TPC-D database and
    print the rows (and, with ``--oracle``, check it against sqlite
    first).

Exit status: 0 = clean, 1 = mismatch/typed SQL error.
"""

import argparse
import sys

from ..errors import SqlError


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.sql",
        description="SQL front-end: parse -> bind -> lower to "
                    "Moa/MIL, with a sqlite differential oracle")
    parser.add_argument("query", nargs="?", default=None,
                        help="SQL file ('-' = stdin) or a suite name "
                             "(q1..q15, or an EXTRAS name)")
    parser.add_argument("--suite", action="store_true",
                        help="run the full differential suite")
    parser.add_argument("--plan", action="store_true",
                        help="print the lowered phases, do not run")
    parser.add_argument("--oracle", action="store_true",
                        help="check the query against sqlite too")
    parser.add_argument("--sf", type=float, default=0.003,
                        help="TPC-D scale factor (default 0.003)")
    parser.add_argument("--seed", type=int, default=11,
                        help="dbgen seed (default 11)")
    return parser


def _query_text(name):
    """SQL text for a suite name, a file path, or stdin (``-``)."""
    from .suite import EXTRAS, sql_text
    lowered = name.lower()
    if lowered.startswith("q") and lowered[1:].isdigit():
        return sql_text(int(lowered[1:]))
    if lowered in EXTRAS:
        return EXTRAS[lowered]
    if name == "-":
        return sys.stdin.read()
    with open(name, "r", encoding="utf-8") as handle:
        return handle.read()


def _print_plan(text):
    from .lower import lower_sql
    from .parser import parse_sql
    lowered = lower_sql(parse_sql(text))
    print(lowered.render())


def _dataset(args):
    from ..tpcd.dbgen import generate
    from ..tpcd.loader import load_tpcd
    dataset = generate(scale=args.sf, seed=args.seed)
    db, _report = load_tpcd(dataset)
    return dataset, db


def _run_suite(args):
    from .oracle import check_query, load_oracle
    from .suite import EXTRAS, sql_queries
    dataset, db = _dataset(args)
    conn = load_oracle(dataset)
    queries = [("q%d" % n, text)
               for n, text in sorted(sql_queries().items())]
    queries += sorted(EXTRAS.items())
    failures = 0
    for name, text in queries:
        try:
            rows = check_query(db, conn, text)
            print("%-16s ok (%d rows)" % (name, rows))
        except (AssertionError, SqlError) as exc:
            failures += 1
            print("%-16s FAIL %s: %s"
                  % (name, type(exc).__name__, exc))
    print("suite: %d queries, %d failure(s)"
          % (len(queries), failures))
    return 1 if failures else 0


def _run_query(args, text):
    from .runtime import execute_sql
    if args.oracle:
        from .oracle import check_query, load_oracle
        dataset, db = _dataset(args)
        conn = load_oracle(dataset)
        check_query(db, conn, text)
        print("oracle: ok")
    else:
        _dataset_, db = _dataset(args)
    result = execute_sql(db, text)
    if isinstance(result, list):
        for row in result:
            print(row)
        print("(%d rows)" % len(result))
    else:
        print(result)
    return 0


def main(argv=None):
    args = _parser().parse_args(argv)
    try:
        if args.suite or args.query is None:
            return _run_suite(args)
        text = _query_text(args.query)
        if args.plan:
            _print_plan(text)
            return 0
        return _run_query(args, text)
    except SqlError as exc:
        print("%s: %s" % (type(exc).__name__, exc), file=sys.stderr)
        return 1
    except AssertionError as exc:
        print("oracle mismatch: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
