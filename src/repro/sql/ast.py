"""AST of the SQL front-end (the TPC-H subset we lower to Moa).

The shape mirrors :mod:`repro.moa.ast`: plain nodes, each rendering
back to canonical (lower-case, fully parenthesised) SQL text via
:meth:`Node.render`.  The parser's round-trip property is render
*idempotence*: ``render(parse(render(parse(t)))) == render(parse(t))``
for every accepted ``t`` — the first parse canonicalises (folds date
arithmetic, desugars BETWEEN and explicit JOIN ... ON), later laps are
stable.

``NODE_CLASSES`` names every concrete node; the lowering pass in
:mod:`repro.sql.lower` must handle each of them, an invariant asserted
both at import time (like ``mil._OPS``) and statically by
``analysis/selfcheck.py``.
"""


class Node:
    """Abstract SQL syntax node."""

    def render(self):
        raise NotImplementedError

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.render())

    def children(self):
        return ()


# ----------------------------------------------------------------------
# query structure
# ----------------------------------------------------------------------
class SelectStmt(Node):
    """One SELECT statement (set operations are not in the subset)."""

    __slots__ = ("items", "from_items", "where", "group_by", "having",
                 "order_by", "limit")

    def __init__(self, items, from_items, where=None, group_by=(),
                 having=None, order_by=(), limit=None):
        self.items = list(items)            # [SelectItem] or [Star()]
        self.from_items = list(from_items)  # [TableRef | DerivedTable]
        self.where = where                  # expr or None
        self.group_by = list(group_by)      # [expr]
        self.having = having                # expr or None
        self.order_by = list(order_by)      # [(expr, descending: bool)]
        self.limit = limit                  # int or None

    def render(self):
        parts = ["select %s" % ", ".join(i.render() for i in self.items)]
        parts.append("from %s" % ", ".join(f.render()
                                           for f in self.from_items))
        if self.where is not None:
            parts.append("where %s" % self.where.render())
        if self.group_by:
            parts.append("group by %s" % ", ".join(
                e.render() for e in self.group_by))
        if self.having is not None:
            parts.append("having %s" % self.having.render())
        if self.order_by:
            parts.append("order by %s" % ", ".join(
                "%s %s" % (e.render(), "desc" if d else "asc")
                for e, d in self.order_by))
        if self.limit is not None:
            parts.append("limit %d" % self.limit)
        return " ".join(parts)

    def children(self):
        out = list(self.items) + list(self.from_items)
        if self.where is not None:
            out.append(self.where)
        out += self.group_by
        if self.having is not None:
            out.append(self.having)
        out += [e for e, _d in self.order_by]
        return tuple(out)


class SelectItem(Node):
    """One output column: ``expr [as alias]``."""

    __slots__ = ("expr", "alias")

    def __init__(self, expr, alias=None):
        self.expr = expr
        self.alias = alias

    def render(self):
        if self.alias is None:
            return self.expr.render()
        return "%s as %s" % (self.expr.render(), self.alias)

    def children(self):
        return (self.expr,)


class Star(Node):
    """``*`` — as the whole select list, or as ``count(*)``'s arg."""

    __slots__ = ()

    def render(self):
        return "*"


class TableRef(Node):
    """A base-table FROM item: ``lineitem`` or ``nation n1``."""

    __slots__ = ("name", "alias")

    def __init__(self, name, alias=None):
        self.name = name
        self.alias = alias or name

    def render(self):
        if self.alias == self.name:
            return self.name
        return "%s %s" % (self.name, self.alias)


class DerivedTable(Node):
    """A subquery FROM item: ``(select ...) alias``."""

    __slots__ = ("select", "alias")

    def __init__(self, select, alias):
        self.select = select
        self.alias = alias

    def render(self):
        return "(%s) %s" % (self.select.render(), self.alias)

    def children(self):
        return (self.select,)


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class ColumnRef(Node):
    """``l_shipdate`` or ``n1.n_name``."""

    __slots__ = ("table", "column")

    def __init__(self, table, column):
        self.table = table          # alias or None (unqualified)
        self.column = column

    def render(self):
        if self.table is None:
            return self.column
        return "%s.%s" % (self.table, self.column)


class NumberLit(Node):
    """Integer or float literal."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def render(self):
        return repr(self.value)


class StringLit(Node):
    """``'BUILDING'`` (doubled-quote escaping)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def render(self):
        return "'%s'" % self.value.replace("'", "''")


class DateLit(Node):
    """``date '1994-01-01'``, stored as epoch days (the ``instant``
    atom's representation).  Date +/- INTERVAL arithmetic is folded
    into this node at parse time."""

    __slots__ = ("days",)

    def __init__(self, days):
        self.days = int(days)

    def render(self):
        from ..monet.atoms import days_to_date
        return "date '%s'" % days_to_date(self.days).isoformat()


class BinExpr(Node):
    """Infix binary expression."""

    __slots__ = ("op", "left", "right")

    OPS = ("or", "and", "=", "<>", "<", "<=", ">", ">=",
           "+", "-", "*", "/")

    def __init__(self, op, left, right):
        assert op in self.OPS, op
        self.op = op
        self.left = left
        self.right = right

    def render(self):
        return "(%s %s %s)" % (self.left.render(), self.op,
                               self.right.render())

    def children(self):
        return (self.left, self.right)


class UnExpr(Node):
    """``not e`` or unary ``- e``."""

    __slots__ = ("op", "operand")

    OPS = ("not", "-")

    def __init__(self, op, operand):
        assert op in self.OPS, op
        self.op = op
        self.operand = operand

    def render(self):
        return "(%s %s)" % (self.op, self.operand.render())

    def children(self):
        return (self.operand,)


class FuncCall(Node):
    """``sum(e)``, ``count(*)`` — the aggregate functions.  Anything
    else is rejected by the lowering with a typed error."""

    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = list(args)

    def render(self):
        return "%s(%s)" % (self.name,
                           ", ".join(a.render() for a in self.args))

    def children(self):
        return tuple(self.args)


class Extract(Node):
    """``extract(year from e)`` (the only supported field)."""

    __slots__ = ("field", "expr")

    def __init__(self, field, expr):
        self.field = field
        self.expr = expr

    def render(self):
        return "extract(%s from %s)" % (self.field, self.expr.render())

    def children(self):
        return (self.expr,)


class CaseExpr(Node):
    """Searched case: ``case when c then v ... else e end``."""

    __slots__ = ("whens", "else_")

    def __init__(self, whens, else_=None):
        self.whens = list(whens)    # [(cond, value)]
        self.else_ = else_

    def render(self):
        body = " ".join("when %s then %s" % (c.render(), v.render())
                        for c, v in self.whens)
        tail = "" if self.else_ is None \
            else " else %s" % self.else_.render()
        return "case %s%s end" % (body, tail)

    def children(self):
        out = []
        for cond, value in self.whens:
            out += [cond, value]
        if self.else_ is not None:
            out.append(self.else_)
        return tuple(out)


class LikeExpr(Node):
    """``e [not] like 'pattern'`` — patterns restricted to prefix /
    suffix / containment shapes at lowering time."""

    __slots__ = ("expr", "pattern", "negated")

    def __init__(self, expr, pattern, negated=False):
        self.expr = expr
        self.pattern = pattern
        self.negated = negated

    def render(self):
        return "(%s %slike '%s')" % (
            self.expr.render(), "not " if self.negated else "",
            self.pattern.replace("'", "''"))

    def children(self):
        return (self.expr,)


class InList(Node):
    """``e [not] in (lit, lit, ...)``."""

    __slots__ = ("expr", "values", "negated")

    def __init__(self, expr, values, negated=False):
        self.expr = expr
        self.values = list(values)  # literal nodes
        self.negated = negated

    def render(self):
        return "(%s %sin (%s))" % (
            self.expr.render(), "not " if self.negated else "",
            ", ".join(v.render() for v in self.values))

    def children(self):
        return (self.expr, *self.values)


class InSelect(Node):
    """``e [not] in (select ...)`` — lowered to a (anti)semijoin."""

    __slots__ = ("expr", "select", "negated")

    def __init__(self, expr, select, negated=False):
        self.expr = expr
        self.select = select
        self.negated = negated

    def render(self):
        return "(%s %sin (%s))" % (
            self.expr.render(), "not " if self.negated else "",
            self.select.render())

    def children(self):
        return (self.expr, self.select)


class Exists(Node):
    """``[not] exists (select ...)`` — lowered to a (anti)semijoin."""

    __slots__ = ("select", "negated")

    def __init__(self, select, negated=False):
        self.select = select
        self.negated = negated

    def render(self):
        return "(%sexists (%s))" % ("not " if self.negated else "",
                                    self.select.render())

    def children(self):
        return (self.select,)


class ScalarSelect(Node):
    """A parenthesised subquery in expression position."""

    __slots__ = ("select",)

    def __init__(self, select):
        self.select = select

    def render(self):
        return "(%s)" % self.select.render()

    def children(self):
        return (self.select,)


#: Every concrete node class; the lowering pass must handle each one
#: (asserted at import by repro.sql.lower and statically by the
#: analysis selfcheck's SQL-totality lint).
NODE_CLASSES = (SelectStmt, SelectItem, Star, TableRef, DerivedTable,
                ColumnRef, NumberLit, StringLit, DateLit, BinExpr,
                UnExpr, FuncCall, Extract, CaseExpr, LikeExpr, InList,
                InSelect, Exists, ScalarSelect)


def walk(node):
    """Depth-first iterator over a subtree."""
    yield node
    for child in node.children():
        yield from walk(child)
