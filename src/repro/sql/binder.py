"""Name resolution + type inference over the SQL AST.

A :class:`Scope` maps FROM-clause aliases to catalog tables (or the
pseudo-tables of derived subqueries) and chains to the enclosing
query's scope, so correlated subqueries resolve outer columns the SQL
way.  Everything that binds wrong — unknown table, unknown column,
ambiguous unqualified name — is a :class:`~repro.errors.
SqlUnsupportedError`: the text is syntactically fine but cannot mean
anything against the TPC-D catalog, and resubmitting it cannot help.

``kind_of`` infers the atom kind of an expression (``int`` / ``double``
/ ``string`` / ``char`` / ``instant`` / ``bool`` / ``ref:<Class>``),
which the lowering uses for literal typing (e.g. coercing a one-char
string literal to the ``char`` atom when compared against a ``char``
column) and for rejecting ill-typed comparisons before they reach the
MOA type checker as an inscrutable error.
"""

from ..errors import SqlUnsupportedError
from . import ast
from .catalog import TABLES, Column


class Binding:
    """A resolved column: which FROM alias, which catalog column, and
    whether it came from an enclosing (correlated) scope."""

    __slots__ = ("alias", "column", "outer")

    def __init__(self, alias, column, outer):
        self.alias = alias
        self.column = column
        self.outer = outer


class Scope:
    """Alias → table mapping for one SELECT, chained to its parent."""

    def __init__(self, parent=None):
        self.parent = parent
        self.tables = {}        # alias -> Table (catalog or pseudo)

    def add(self, alias, table):
        if alias in self.tables:
            raise SqlUnsupportedError(
                "duplicate table alias %r in FROM" % alias)
        self.tables[alias] = table

    def add_table_ref(self, ref):
        table = TABLES.get(ref.name)
        if table is None:
            raise SqlUnsupportedError(
                "unknown table %r (TPC-D catalog has: %s)"
                % (ref.name, ", ".join(sorted(TABLES))))
        self.add(ref.alias, table)
        return table

    # ------------------------------------------------------------------
    def resolve(self, column_ref):
        """Resolve a :class:`~repro.sql.ast.ColumnRef` to a Binding."""
        scope, outer = self, False
        while scope is not None:
            binding = scope._resolve_local(column_ref, outer)
            if binding is not None:
                return binding
            scope, outer = scope.parent, True
        if column_ref.table is not None:
            raise SqlUnsupportedError(
                "unknown table alias %r" % column_ref.table)
        raise SqlUnsupportedError(
            "unknown column %r" % column_ref.column)

    def _resolve_local(self, column_ref, outer):
        if column_ref.table is not None:
            table = self.tables.get(column_ref.table)
            if table is None:
                return None
            column = table.columns.get(column_ref.column)
            if column is None:
                raise SqlUnsupportedError(
                    "table %r has no column %r"
                    % (column_ref.table, column_ref.column))
            return Binding(column_ref.table, column, outer)
        hits = [(alias, table.columns[column_ref.column])
                for alias, table in self.tables.items()
                if column_ref.column in table.columns]
        if len(hits) > 1:
            raise SqlUnsupportedError(
                "ambiguous column %r (in %s)"
                % (column_ref.column,
                   " and ".join(sorted(a for a, _c in hits))))
        if hits:
            alias, column = hits[0]
            return Binding(alias, column, outer)
        return None


def derived_table(select, scope):
    """Pseudo-table for ``(select ...) alias``: one column per output
    item, kind inferred in the subquery's own scope."""
    inner = scope_for(select, parent=scope.parent)
    columns = []
    for item in select.items:
        if isinstance(item, ast.Star):
            raise SqlUnsupportedError(
                "derived tables need explicit output columns, not *")
        name = output_name(item)
        columns.append((name, (name,), kind_of(item.expr, inner)))
    table = object.__new__(_PseudoTable)
    table.columns = {n: Column(n, p, k) for n, p, k in columns}
    return table


class _PseudoTable:
    """Column map of a derived table; has no base extent of its own."""

    __slots__ = ("columns",)
    is_pure_extent = False
    extent_class = None
    unnest_attr = None


def output_name(item):
    """The output-column name of a select item (alias, or the column
    name for a bare column reference)."""
    if item.alias is not None:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.column
    raise SqlUnsupportedError(
        "select item %r needs an alias" % item.expr.render())


def scope_for(select, parent=None):
    """Build the scope of one SELECT from its FROM list."""
    scope = Scope(parent)
    for from_item in select.from_items:
        if isinstance(from_item, ast.TableRef):
            scope.add_table_ref(from_item)
        else:
            scope.add(from_item.alias,
                      derived_table(from_item.select, scope))
    return scope


# ----------------------------------------------------------------------
# type inference
# ----------------------------------------------------------------------
_NUMERIC = ("int", "double")


def kind_of(expr, scope):
    """Atom kind of an expression under a scope (see module doc)."""
    if isinstance(expr, ast.ColumnRef):
        return scope.resolve(expr).column.kind
    if isinstance(expr, ast.NumberLit):
        return "int" if isinstance(expr.value, int) else "double"
    if isinstance(expr, ast.StringLit):
        return "string"
    if isinstance(expr, ast.DateLit):
        return "instant"
    if isinstance(expr, ast.BinExpr):
        if expr.op in ("and", "or") or expr.op in (
                "=", "<>", "<", "<=", ">", ">="):
            return "bool"
        left = kind_of(expr.left, scope)
        right = kind_of(expr.right, scope)
        if expr.op == "/" or "double" in (left, right):
            return "double"
        return "int"
    if isinstance(expr, ast.UnExpr):
        return "bool" if expr.op == "not" else kind_of(expr.operand,
                                                       scope)
    if isinstance(expr, ast.FuncCall):
        name = expr.name
        if name == "count":
            return "int"
        if name == "avg":
            return "double"
        if name in ("sum", "min", "max"):
            if len(expr.args) != 1 or isinstance(expr.args[0], ast.Star):
                raise SqlUnsupportedError(
                    "%s() takes exactly one expression" % name)
            return kind_of(expr.args[0], scope)
        raise SqlUnsupportedError("unknown function %r" % name)
    if isinstance(expr, ast.Extract):
        return "int"
    if isinstance(expr, ast.CaseExpr):
        return kind_of(expr.whens[0][1], scope)
    if isinstance(expr, (ast.LikeExpr, ast.InList, ast.InSelect,
                         ast.Exists)):
        return "bool"
    if isinstance(expr, ast.ScalarSelect):
        select = expr.select
        if len(select.items) != 1 \
                or isinstance(select.items[0], ast.Star):
            raise SqlUnsupportedError(
                "scalar subquery must produce exactly one column")
        inner = scope_for(select, parent=scope)
        return kind_of(select.items[0].expr, inner)
    raise SqlUnsupportedError(
        "cannot type expression %r" % expr.render())


def check_comparable(op, left_kind, right_kind, context):
    """Comparison type check, with the char/string coercion rule."""
    pair = {left_kind, right_kind}
    if pair <= {"int", "double"}:
        return
    if left_kind == right_kind:
        return
    if pair == {"char", "string"}:
        return                      # lowering coerces the literal
    if pair <= {"int", "instant"}:
        return                      # epoch-day arithmetic results
    raise SqlUnsupportedError(
        "type mismatch in %s: %s %s %s"
        % (context, left_kind, op, right_kind))
