"""The relational face of the TPC-D object schema.

The binder resolves SQL table/column names against this catalog; the
lowering pass turns each column into a navigation *path* over the MOA
schema of :mod:`repro.tpcd.schema` (Figure 1 of the paper).

A path is a tuple of steps applied to the extent element: a ``str``
step is an ``Attr`` navigation, an ``int`` step is a 1-based ``Pos``
tuple access.  The empty path is the element itself — that is how the
relational *keys* appear: ``o_orderkey`` IS the Order object, so its
kind is ``ref:Order`` with path ``()``, and foreign keys like
``l_orderkey`` are the ``order`` attribute with kind ``ref:Order``.
This makes foreign-key joins (``l_orderkey = o_orderkey``) collapse
into pointer navigation instead of value joins, which is exactly the
flattening the paper sells.

PARTSUPP has no extent of its own: the object schema nests it as
``Supplier.supplies`` (a set of ``<part, cost, available>`` tuples),
so its base set is ``unnest[supplies](Supplier)`` whose element is the
pair ``<Supplier, <part, cost, available>>``.

Column kinds: ``int`` / ``double`` / ``string`` / ``char`` /
``instant`` / ``ref:<Class>``.
"""

from ..moa import ast as moa_ast


class Column:
    __slots__ = ("name", "path", "kind")

    def __init__(self, name, path, kind):
        self.name = name
        self.path = tuple(path)
        self.kind = kind

    @property
    def is_ref(self):
        return self.kind.startswith("ref:")

    @property
    def ref_class(self):
        return self.kind[4:] if self.is_ref else None


class Table:
    """One relational table: a base MOA set expression plus a column
    name → navigation-path map."""

    __slots__ = ("name", "extent_class", "unnest_attr", "columns")

    def __init__(self, name, extent_class, columns, unnest_attr=None):
        self.name = name
        self.extent_class = extent_class
        self.unnest_attr = unnest_attr
        self.columns = {}
        for col_name, path, kind in columns:
            self.columns[col_name] = Column(col_name, path, kind)

    def base_set(self):
        """A fresh MOA set expression producing this table."""
        extent = moa_ast.Extent(self.extent_class)
        if self.unnest_attr is None:
            return extent
        return moa_ast.Unnest(extent, self.unnest_attr)

    @property
    def is_pure_extent(self):
        return self.unnest_attr is None


def _table(name, extent_class, columns, unnest_attr=None):
    return Table(name, extent_class, columns, unnest_attr)


TABLES = {
    "region": _table("region", "Region", [
        ("r_regionkey", (), "ref:Region"),
        ("r_name", ("name",), "string"),
        ("r_comment", ("comment",), "string"),
    ]),
    "nation": _table("nation", "Nation", [
        ("n_nationkey", (), "ref:Nation"),
        ("n_name", ("name",), "string"),
        ("n_regionkey", ("region",), "ref:Region"),
    ]),
    "part": _table("part", "Part", [
        ("p_partkey", (), "ref:Part"),
        ("p_name", ("name",), "string"),
        ("p_mfgr", ("manufacturer",), "string"),
        ("p_brand", ("brand",), "string"),
        ("p_type", ("type",), "string"),
        ("p_size", ("size",), "int"),
        ("p_container", ("container",), "string"),
        ("p_retailprice", ("retailPrice",), "double"),
    ]),
    "supplier": _table("supplier", "Supplier", [
        ("s_suppkey", (), "ref:Supplier"),
        ("s_name", ("name",), "string"),
        ("s_address", ("address",), "string"),
        ("s_phone", ("phone",), "string"),
        ("s_acctbal", ("acctbal",), "double"),
        ("s_nationkey", ("nation",), "ref:Nation"),
    ]),
    "partsupp": _table("partsupp", "Supplier", [
        ("ps_suppkey", (1,), "ref:Supplier"),
        ("ps_partkey", (2, "part"), "ref:Part"),
        ("ps_supplycost", (2, "cost"), "double"),
        ("ps_availqty", (2, "available"), "int"),
    ], unnest_attr="supplies"),
    "customer": _table("customer", "Customer", [
        ("c_custkey", (), "ref:Customer"),
        ("c_name", ("name",), "string"),
        ("c_address", ("address",), "string"),
        ("c_phone", ("phone",), "string"),
        ("c_acctbal", ("acctbal",), "double"),
        ("c_nationkey", ("nation",), "ref:Nation"),
        ("c_mktsegment", ("mktsegment",), "string"),
    ]),
    "orders": _table("orders", "Order", [
        ("o_orderkey", (), "ref:Order"),
        ("o_custkey", ("cust",), "ref:Customer"),
        ("o_orderstatus", ("status",), "char"),
        ("o_totalprice", ("totalprice",), "double"),
        ("o_orderdate", ("orderdate",), "instant"),
        ("o_orderpriority", ("orderpriority",), "string"),
        ("o_clerk", ("clerk",), "string"),
        ("o_shippriority", ("shippriority",), "string"),
    ]),
    "lineitem": _table("lineitem", "Item", [
        ("l_orderkey", ("order",), "ref:Order"),
        ("l_partkey", ("part",), "ref:Part"),
        ("l_suppkey", ("supplier",), "ref:Supplier"),
        ("l_quantity", ("quantity",), "int"),
        ("l_extendedprice", ("extendedprice",), "double"),
        ("l_discount", ("discount",), "double"),
        ("l_tax", ("tax",), "double"),
        ("l_returnflag", ("returnflag",), "char"),
        ("l_linestatus", ("linestatus",), "char"),
        ("l_shipdate", ("shipdate",), "instant"),
        ("l_commitdate", ("commitdate",), "instant"),
        ("l_receiptdate", ("receiptdate",), "instant"),
        ("l_shipinstruct", ("shipinstruct",), "string"),
        ("l_shipmode", ("shipmode",), "string"),
    ]),
}

#: class name -> table whose rows are that class's extent (partsupp is
#: not root of any class — its base is an unnest)
EXTENT_TABLES = {t.extent_class: t for t in TABLES.values()
                 if t.is_pure_extent}
