"""Lowering: SQL AST -> MOA trees (phases) -> the existing pipeline.

The strategy mirrors how the hand-written Moa formulations in
:mod:`repro.tpcd.queries` express the TPC-D queries, so the emitted
plans produce bit-identical results to the Moa path (the bench gate
asserts checksum equality):

* Each FROM item starts as a *frame* (a MOA set expression + an
  anchor path per alias).  Foreign-key equi-conjuncts against a pure
  class extent dissolve that extent into the referencing frame —
  ``l_orderkey = o_orderkey`` becomes pointer navigation
  (``order.…``), the paper's whole point — iterated to fixpoint.
* Remaining single-frame predicates become one ``select[p1, …, pk]``
  per frame; cross-frame equi-conjuncts become real ``join``s (Q9);
  ``IN (select …)`` / ``EXISTS`` become semijoins (antijoins when
  negated), exactly the Moa Q3/Q4 shape.
* Uncorrelated scalar subqueries become earlier *phases* whose value
  is substituted as a typed literal (a :class:`~.runtime.Hole`) —
  the Q11/Q14/Q15 two-phase driver pattern.  Correlated aggregate
  subqueries on equality decorrelate into a group-by + join, the Moa
  Q2 ``join[<%2.part, %2.cost>, <part, mincost>]`` shape.
* GROUP BY lowers to ``nest`` + a projection whose aggregate items
  run over the nested group (``sum(project[…](%group))``); HAVING
  becomes a select over the projected aggregates (Q11), falling back
  to a pre-projection select over the nest when it references an
  unprojected aggregate.

``_LOWERS`` at the bottom declares, node class by node class, which
handler owns each SQL AST node — asserted total against
``ast.NODE_CLASSES`` at import time (like ``mil._OPS``) and statically
by the analysis selfcheck.
"""

from ..errors import SqlUnsupportedError
from ..moa import ast as moa
from . import ast
from .binder import (Scope, check_comparable, derived_table, kind_of,
                     output_name)
from .catalog import TABLES
from .runtime import Hole, LoweredQuery, MoaPhase, PhaseRef, PyPhase

_AGGS = ("sum", "count", "avg", "min", "max")

_OP_MAP = {"=": "=", "<>": "!=", "<": "<", "<=": "<=", ">": ">",
           ">=": ">=", "+": "+", "-": "-", "*": "*", "/": "/",
           "and": "and", "or": "or"}


def _flatten_and(expr, out):
    if isinstance(expr, ast.BinExpr) and expr.op == "and":
        _flatten_and(expr.left, out)
        _flatten_and(expr.right, out)
    else:
        out.append(expr)
    return out


def _path_expr(path):
    """Element-rooted navigation for an anchor+column path."""
    node = moa.Element()
    for step in path:
        node = moa.Pos(node, step) if isinstance(step, int) \
            else moa.Attr(node, step)
    return node


def _has_agg(expr):
    """Does the expression contain an aggregate call (not descending
    into subqueries, whose aggregates are their own)?"""
    if isinstance(expr, ast.FuncCall) and expr.name in _AGGS:
        return True
    if isinstance(expr, (ast.InSelect, ast.Exists, ast.ScalarSelect)):
        return False
    return any(_has_agg(c) for c in expr.children()
               if not isinstance(c, ast.SelectStmt))


class _Frame:
    """One connected piece of the FROM clause during lowering."""

    __slots__ = ("set", "anchors", "pure_class", "order", "pending")

    def __init__(self, set_expr, anchors, pure_class, order):
        self.set = set_expr
        self.anchors = dict(anchors)    # alias -> path prefix
        self.pure_class = pure_class    # class name while still Extent
        self.order = order              # min FROM position
        self.pending = []               # single-frame SQL predicates

    def prefix(self, step):
        """Re-anchor every alias after this frame became one side of a
        pair-producing operator (join)."""
        self.anchors = {alias: (step,) + path
                        for alias, path in self.anchors.items()}


class _Inspection:
    __slots__ = ("aliases", "has_outer", "has_subquery")

    def __init__(self):
        self.aliases = set()
        self.has_outer = False
        self.has_subquery = False


class _Lowering:
    """Lowers one SELECT statement (top level, derived table, or
    subquery) against a shared phase list."""

    def __init__(self, stmt, phases, parent=None):
        self.stmt = stmt
        self.phases = phases
        self.parent = parent            # enclosing _Lowering or None
        parent_scope = parent.scope if parent is not None else None
        self.scope = Scope(parent_scope)
        for item in stmt.from_items:
            if isinstance(item, ast.TableRef):
                self.scope.add_table_ref(item)
            else:
                self.scope.add(item.alias,
                               derived_table(item.select, self.scope))
        self.frames = []
        self.corr = []                  # (outer_sql_expr, inner_sql_expr)
        self.sub_preds = []
        self.join_edges = []
        self.leftover = []

    # ==================================================================
    # frames and conjunct classification
    # ==================================================================
    def _make_frames(self):
        for order, item in enumerate(self.stmt.from_items):
            if isinstance(item, ast.TableRef):
                table = TABLES[item.name]
                self.frames.append(_Frame(
                    table.base_set(), {item.alias: ()},
                    table.extent_class if table.is_pure_extent else None,
                    order))
            else:
                inner = _Lowering(item.select, self.phases, parent=None)
                self.frames.append(_Frame(
                    inner.lower_set(), {item.alias: ()}, None, order))

    def _frame_of_alias(self, alias):
        for frame in self.frames:
            if alias in frame.anchors:
                return frame
        raise SqlUnsupportedError("unknown table alias %r" % alias)

    def _inspect(self, expr, out=None):
        out = out if out is not None else _Inspection()
        if isinstance(expr, ast.ColumnRef):
            binding = self.scope.resolve(expr)
            if binding.outer:
                out.has_outer = True
            else:
                out.aliases.add(binding.alias)
            return out
        if isinstance(expr, (ast.InSelect, ast.Exists,
                             ast.ScalarSelect)):
            out.has_subquery = True
            if isinstance(expr, ast.InSelect):
                self._inspect(expr.expr, out)
            return out
        for child in expr.children():
            if not isinstance(child, ast.SelectStmt):
                self._inspect(child, out)
        return out

    def _frames_of(self, expr):
        info = self._inspect(expr)
        return {id(self._frame_of_alias(a)): self._frame_of_alias(a)
                for a in info.aliases}

    def build_frame(self):
        """The whole FROM/WHERE pipeline; returns the single merged
        frame (select/semijoin/join applied, nothing projected)."""
        self._make_frames()
        conjuncts = []
        if self.stmt.where is not None:
            _flatten_and(self.stmt.where, conjuncts)
        conjuncts = self._dissolve_foreign_keys(conjuncts)
        self._classify(conjuncts)
        self._apply_selects()
        self._apply_joins()
        self._apply_leftover()
        self._apply_sub_preds()
        if len(self.frames) > 1:
            raise SqlUnsupportedError(
                "cross join between %s (no join condition connects "
                "them)" % " and ".join(
                    sorted(a for f in self.frames for a in f.anchors)))
        return self.frames[0]

    # -- foreign-key dissolution ---------------------------------------
    def _dissolve_foreign_keys(self, conjuncts):
        remaining = list(conjuncts)
        changed = True
        while changed:
            changed = False
            for conjunct in list(remaining):
                if not (isinstance(conjunct, ast.BinExpr)
                        and conjunct.op == "="
                        and isinstance(conjunct.left, ast.ColumnRef)
                        and isinstance(conjunct.right, ast.ColumnRef)):
                    continue
                left = self.scope.resolve(conjunct.left)
                right = self.scope.resolve(conjunct.right)
                if left.outer or right.outer:
                    continue
                if self._try_dissolve(left, right) \
                        or self._try_dissolve(right, left):
                    remaining.remove(conjunct)
                    changed = True
        return remaining

    def _try_dissolve(self, fk, pk):
        """Dissolve pk's frame into fk's frame when pk IS the root key
        of a still-pure extent of the class fk references."""
        if not (fk.column.is_ref and pk.column.is_ref
                and fk.column.ref_class == pk.column.ref_class
                and pk.column.path == ()):
            return False
        pk_frame = self._frame_of_alias(pk.alias)
        fk_frame = self._frame_of_alias(fk.alias)
        if pk_frame is fk_frame:
            return False                # same frame: a plain predicate
        if pk_frame.pure_class != pk.column.ref_class:
            return False
        prefix = fk_frame.anchors[fk.alias] + fk.column.path
        for alias, path in pk_frame.anchors.items():
            fk_frame.anchors[alias] = prefix + path
        fk_frame.order = min(fk_frame.order, pk_frame.order)
        self.frames.remove(pk_frame)
        return True

    # -- classification ------------------------------------------------
    def _classify(self, conjuncts):
        for conjunct in conjuncts:
            info = self._inspect(conjunct)
            if info.has_outer:
                self._classify_correlation(conjunct)
                continue
            if info.has_subquery:
                self.sub_preds.append(conjunct)
                continue
            frames = {id(self._frame_of_alias(a)) for a in info.aliases}
            if len(frames) <= 1:
                frame = (self._frame_of_alias(next(iter(info.aliases)))
                         if info.aliases else self.frames[0])
                frame.pending.append(conjunct)
                continue
            if isinstance(conjunct, ast.BinExpr) and conjunct.op == "=":
                sides = [self._frames_of(conjunct.left),
                         self._frames_of(conjunct.right)]
                if all(len(s) == 1 for s in sides):
                    self.join_edges.append(conjunct)
                    continue
            self.leftover.append(conjunct)

    def _classify_correlation(self, conjunct):
        if self.parent is None:
            raise SqlUnsupportedError(
                "outer column reference outside a subquery: %s"
                % conjunct.render())
        if not (isinstance(conjunct, ast.BinExpr)
                and conjunct.op == "="):
            raise SqlUnsupportedError(
                "unsupported correlation shape %s (only equality "
                "conjuncts)" % conjunct.render())
        left_info = self._inspect(conjunct.left)
        right_info = self._inspect(conjunct.right)
        if left_info.has_outer and not left_info.aliases \
                and not right_info.has_outer:
            self.corr.append((conjunct.left, conjunct.right))
        elif right_info.has_outer and not right_info.aliases \
                and not left_info.has_outer:
            self.corr.append((conjunct.right, conjunct.left))
        else:
            raise SqlUnsupportedError(
                "unsupported correlation shape %s (each side must be "
                "wholly inner or wholly outer)" % conjunct.render())

    # -- per-frame selects, joins, leftovers ---------------------------
    def _apply_selects(self):
        for frame in self.frames:
            if not frame.pending:
                continue
            predicates = [self.lower_expr(p, frame)
                          for p in frame.pending]
            frame.set = moa.Select(frame.set, predicates)
            frame.pure_class = None
            frame.pending = []

    def _apply_joins(self):
        while self.join_edges:
            first = self.join_edges[0]
            frame_a = self._edge_frame(first.left)
            frame_b = self._edge_frame(first.right)
            left, right = (frame_a, frame_b) \
                if frame_a.order <= frame_b.order else (frame_b, frame_a)
            edges, rest = [], []
            for edge in self.join_edges:
                pair = {id(self._edge_frame(edge.left)),
                        id(self._edge_frame(edge.right))}
                (edges if pair == {id(left), id(right)}
                 else rest).append(edge)
            self.join_edges = rest
            left_keys, right_keys = [], []
            for edge in edges:
                l_expr, r_expr = edge.left, edge.right
                if self._edge_frame(l_expr) is not left:
                    l_expr, r_expr = r_expr, l_expr
                left_keys.append(self.lower_expr(l_expr, left))
                right_keys.append(self.lower_expr(r_expr, right))
            lkey = left_keys[0] if len(left_keys) == 1 \
                else moa.TupleCons([(k, None) for k in left_keys])
            rkey = right_keys[0] if len(right_keys) == 1 \
                else moa.TupleCons([(k, None) for k in right_keys])
            merged = _Frame(moa.Join(left.set, right.set, lkey, rkey),
                            {}, None, min(left.order, right.order))
            left.prefix(1)
            right.prefix(2)
            merged.anchors.update(left.anchors)
            merged.anchors.update(right.anchors)
            self.frames = [f for f in self.frames
                           if f is not left and f is not right]
            self.frames.append(merged)

    def _edge_frame(self, expr):
        frames = self._frames_of(expr)
        if len(frames) != 1:
            raise SqlUnsupportedError(
                "join condition side %s does not belong to one table"
                % expr.render())
        return next(iter(frames.values()))

    def _apply_leftover(self):
        for conjunct in self.leftover:
            frames = self._frames_of(conjunct)
            if len(frames) != 1:
                raise SqlUnsupportedError(
                    "predicate %s spans tables that are not joined"
                    % conjunct.render())
            frame = next(iter(frames.values()))
            frame.set = moa.Select(
                frame.set, [self.lower_expr(conjunct, frame)])
            frame.pure_class = None
        self.leftover = []

    # ==================================================================
    # subquery predicates
    # ==================================================================
    def _apply_sub_preds(self):
        for conjunct in self.sub_preds:
            self._apply_sub_pred(conjunct)
        self.sub_preds = []

    def _apply_sub_pred(self, conjunct):
        if isinstance(conjunct, ast.InSelect):
            return self._apply_membership(conjunct)
        if isinstance(conjunct, ast.Exists):
            return self._apply_membership(conjunct)
        if isinstance(conjunct, ast.UnExpr) and conjunct.op == "not" \
                and isinstance(conjunct.operand,
                               (ast.InSelect, ast.Exists)):
            flipped = conjunct.operand
            negated = type(flipped)(*_flip_args(flipped))
            return self._apply_membership(negated)
        if isinstance(conjunct, ast.BinExpr) \
                and conjunct.op in ("=", "<>", "<", "<=", ">", ">="):
            lhs, rhs, op = conjunct.left, conjunct.right, conjunct.op
            if isinstance(lhs, ast.ScalarSelect):
                lhs, rhs = rhs, lhs
                op = _MIRROR[op]
            if isinstance(rhs, ast.ScalarSelect) \
                    and not isinstance(lhs, ast.ScalarSelect):
                return self._apply_scalar_subquery(op, lhs, rhs)
        raise SqlUnsupportedError(
            "unsupported subquery predicate %s" % conjunct.render())

    def _apply_membership(self, pred):
        """``x [NOT] IN (select …)`` / ``[NOT] EXISTS`` -> (anti)semijoin."""
        select = pred.select
        inner = _Lowering(select, self.phases, parent=self)
        inner_frame = inner.build_frame()
        left_keys, right_keys, frame = [], [], None
        if isinstance(pred, ast.InSelect):
            frames = self._frames_of(pred.expr)
            if len(frames) != 1:
                raise SqlUnsupportedError(
                    "IN subject %s must belong to one table"
                    % pred.expr.render())
            frame = next(iter(frames.values()))
            if len(select.items) != 1 \
                    or isinstance(select.items[0], ast.Star):
                raise SqlUnsupportedError(
                    "IN subquery must produce exactly one column")
            left_keys.append(self.lower_expr(pred.expr, frame))
            right_keys.append(inner.lower_expr(
                select.items[0].expr, inner_frame))
        for outer_expr, inner_expr in inner.corr:
            outer_frames = self._frames_of(outer_expr)
            if frame is None and len(outer_frames) == 1:
                frame = next(iter(outer_frames.values()))
            if len(outer_frames) != 1 \
                    or next(iter(outer_frames.values())) is not frame:
                raise SqlUnsupportedError(
                    "correlated subquery references several tables")
            left_keys.append(self.lower_expr(outer_expr, frame))
            right_keys.append(inner.lower_expr(inner_expr, inner_frame))
        if frame is None or not left_keys:
            raise SqlUnsupportedError(
                "EXISTS subquery without correlation")
        lkey = left_keys[0] if len(left_keys) == 1 \
            else moa.TupleCons([(k, None) for k in left_keys])
        rkey = right_keys[0] if len(right_keys) == 1 \
            else moa.TupleCons([(k, None) for k in right_keys])
        frame.set = moa.Semijoin(frame.set, inner_frame.set, lkey, rkey,
                                 anti=pred.negated)
        frame.pure_class = None

    def _apply_scalar_subquery(self, op, lhs, sub):
        """``lhs op (select agg …)``: uncorrelated -> earlier phase +
        Hole literal; correlated on equality -> decorrelating group-by
        + join (the Moa Q2 shape)."""
        inner = _Lowering(sub.select, self.phases, parent=self)
        if len(sub.select.items) != 1 \
                or isinstance(sub.select.items[0], ast.Star):
            raise SqlUnsupportedError(
                "scalar subquery must produce exactly one column")
        if sub.select.group_by or sub.select.order_by \
                or sub.select.limit is not None:
            raise SqlUnsupportedError(
                "scalar subquery must be a plain aggregate query")
        item_expr = sub.select.items[0].expr
        if not _has_agg(item_expr):
            raise SqlUnsupportedError(
                "scalar subquery must aggregate (a single row cannot "
                "be guaranteed otherwise)")
        inner_frame = inner.build_frame()
        if not inner.corr:
            index = inner.scalar_phases(item_expr, inner_frame)
            atom = _atom_for(kind_of(item_expr, inner.scope))
            frames = self._frames_of(lhs)
            if len(frames) != 1:
                raise SqlUnsupportedError(
                    "subquery comparison subject %s must belong to "
                    "one table" % lhs.render())
            frame = next(iter(frames.values()))
            lowered = self.lower_expr(lhs, frame)
            frame.set = moa.Select(
                frame.set,
                [moa.BinOp(_OP_MAP[op], lowered, Hole(index, atom))])
            frame.pure_class = None
            return
        self._decorrelate(op, lhs, item_expr, inner, inner_frame)

    def _decorrelate(self, op, lhs, item_expr, inner, inner_frame):
        frames = self._frames_of(lhs)
        for outer_expr, _ in inner.corr:
            frames.update(self._frames_of(outer_expr))
        if len(frames) != 1:
            raise SqlUnsupportedError(
                "correlated subquery comparison spans several tables")
        frame = next(iter(frames.values()))
        keys = []
        for i, (_, inner_expr) in enumerate(inner.corr):
            keys.append((inner.lower_expr(inner_expr, inner_frame),
                         "_k%d" % (i + 1)))
        nest = moa.Nest(inner_frame.set, keys)
        nkeys = len(keys)
        value = inner.grouped_value(item_expr, inner_frame, nkeys)
        items = [(moa.Pos(moa.Element(), i + 1), "_k%d" % (i + 1))
                 for i in range(nkeys)]
        items.append((value, "_v"))
        grouped = moa.Project(nest, items)
        outer_keys = [self.lower_expr(e, frame)
                      for e, _ in inner.corr]
        group_keys = [moa.Attr(moa.Element(), "_k%d" % (i + 1))
                      for i in range(nkeys)]
        if op == "=":
            outer_keys.append(self.lower_expr(lhs, frame))
            group_keys.append(moa.Attr(moa.Element(), "_v"))
            lkey = outer_keys[0] if len(outer_keys) == 1 \
                else moa.TupleCons([(k, None) for k in outer_keys])
            rkey = group_keys[0] if len(group_keys) == 1 \
                else moa.TupleCons([(k, None) for k in group_keys])
            frame.set = moa.Join(frame.set, grouped, lkey, rkey)
            frame.prefix(1)
            frame.pure_class = None
            return
        lkey = outer_keys[0] if len(outer_keys) == 1 \
            else moa.TupleCons([(k, None) for k in outer_keys])
        rkey = group_keys[0] if len(group_keys) == 1 \
            else moa.TupleCons([(k, None) for k in group_keys])
        frame.set = moa.Join(frame.set, grouped, lkey, rkey)
        frame.prefix(1)
        frame.pure_class = None
        value_ref = moa.Attr(moa.Pos(moa.Element(), 2), "_v")
        frame.set = moa.Select(frame.set, [moa.BinOp(
            _OP_MAP[op], self.lower_expr(lhs, frame), value_ref)])

    def grouped_value(self, expr, frame, nkeys):
        """An expression over a nest tuple: aggregates run over the
        group (position ``nkeys+1``), arithmetic stays arithmetic."""
        if isinstance(expr, ast.FuncCall) and expr.name in _AGGS:
            return self._agg_over_group(expr, frame, nkeys)
        if isinstance(expr, (ast.NumberLit, ast.StringLit,
                             ast.DateLit)):
            return self._lower_literal(expr)
        if isinstance(expr, ast.BinExpr) \
                and expr.op in ("+", "-", "*", "/"):
            return moa.BinOp(
                _OP_MAP[expr.op],
                self.grouped_value(expr.left, frame, nkeys),
                self.grouped_value(expr.right, frame, nkeys))
        if isinstance(expr, ast.UnExpr) and expr.op == "-":
            return moa.UnOp("neg",
                            self.grouped_value(expr.operand, frame,
                                               nkeys))
        raise SqlUnsupportedError(
            "cannot aggregate expression %s over a group"
            % expr.render())

    def _agg_over_group(self, call, frame, nkeys):
        group = moa.Pos(moa.Element(), nkeys + 1)
        if call.name == "count":
            if len(call.args) == 1 and isinstance(call.args[0],
                                                  ast.Star):
                return moa.Aggregate("count", group)
            if len(call.args) != 1:
                raise SqlUnsupportedError("count() takes one argument")
            arg = self.lower_expr(call.args[0], frame)
            return moa.Aggregate("count",
                                 moa.Project(group, [(arg, None)]))
        if len(call.args) != 1 or isinstance(call.args[0], ast.Star):
            raise SqlUnsupportedError(
                "%s() takes exactly one expression" % call.name)
        arg = self.lower_expr(call.args[0], frame)
        return moa.Aggregate(call.name,
                             moa.Project(group, [(arg, None)]))

    # ==================================================================
    # expression lowering (over one frame's element)
    # ==================================================================
    def lower_expr(self, expr, frame):
        handler = _EXPR_DISPATCH.get(type(expr).__name__)
        if handler is None:
            raise SqlUnsupportedError(
                "expression %s is not supported here" % expr.render())
        return handler(self, expr, frame)

    def _lower_column(self, expr, frame):
        binding = self.scope.resolve(expr)
        if binding.outer:
            raise SqlUnsupportedError(
                "correlated column %s is only supported in equality "
                "conjuncts" % expr.render())
        anchor = frame.anchors.get(binding.alias)
        if anchor is None:
            raise SqlUnsupportedError(
                "column %s does not belong to this table expression"
                % expr.render())
        return _path_expr(anchor + binding.column.path)

    def _lower_literal(self, expr, frame=None):
        if isinstance(expr, ast.NumberLit):
            atom = "int" if isinstance(expr.value, int) else "double"
            return moa.Literal(expr.value, atom)
        if isinstance(expr, ast.StringLit):
            return moa.Literal(expr.value, "string")
        return moa.Literal(expr.days, "instant")

    def _operand(self, expr, other_kind, frame):
        """A comparison operand, coercing a one-char string literal to
        the ``char`` atom when compared against a char column, and an
        integral double literal to ``int`` against an int column (the
        kernel's select path coerces literals to the column atom, and
        30.0 must mean 30 there, not an AtomError)."""
        if other_kind == "char" and isinstance(expr, ast.StringLit) \
                and len(expr.value) == 1:
            return moa.Literal(expr.value, "char")
        if other_kind == "int" and isinstance(expr, ast.NumberLit) \
                and isinstance(expr.value, float):
            if expr.value != int(expr.value):
                raise SqlUnsupportedError(
                    "comparing the integer column in %r against the "
                    "non-integral literal %r — rewrite the bound as "
                    "an integer" % (expr.render(), expr.value))
            return moa.Literal(int(expr.value), "int")
        return self.lower_expr(expr, frame)

    def _lower_binexpr(self, expr, frame):
        op = expr.op
        if op in ("=", "<>", "<", "<=", ">", ">="):
            left_kind = kind_of(expr.left, self.scope)
            right_kind = kind_of(expr.right, self.scope)
            check_comparable(op, left_kind, right_kind, expr.render())
            return moa.BinOp(_OP_MAP[op],
                             self._operand(expr.left, right_kind, frame),
                             self._operand(expr.right, left_kind, frame))
        return moa.BinOp(_OP_MAP[op],
                         self.lower_expr(expr.left, frame),
                         self.lower_expr(expr.right, frame))

    def _lower_unexpr(self, expr, frame):
        if expr.op == "not":
            return moa.UnOp("not", self.lower_expr(expr.operand, frame))
        return moa.UnOp("neg", self.lower_expr(expr.operand, frame))

    def _lower_funccall(self, expr, frame):
        if expr.name in _AGGS:
            raise SqlUnsupportedError(
                "aggregate %s() is only allowed in the select list of "
                "a grouped or aggregate query (or HAVING)" % expr.name)
        raise SqlUnsupportedError("unknown function %r" % expr.name)

    def _lower_extract(self, expr, frame):
        if expr.field != "year":
            raise SqlUnsupportedError(
                "extract(%s ...) is not supported (only year)"
                % expr.field)
        return moa.Call("year", [self.lower_expr(expr.expr, frame)])

    def _lower_case(self, expr, frame):
        if expr.else_ is None:
            raise SqlUnsupportedError(
                "CASE without ELSE is not supported (no null atom)")
        node = self.lower_expr(expr.else_, frame)
        for cond, value in reversed(expr.whens):
            node = moa.Call("ifthenelse",
                            [self.lower_expr(cond, frame),
                             self.lower_expr(value, frame), node])
        return node

    def _lower_like(self, expr, frame):
        pattern = expr.pattern
        if "_" in pattern or "[" in pattern:
            raise SqlUnsupportedError(
                "LIKE pattern %r is not supported (only %%-wildcard "
                "prefix/suffix/containment shapes)" % pattern)
        subject = self.lower_expr(expr.expr, frame)
        if "%" not in pattern:
            node = moa.BinOp("=", subject,
                             moa.Literal(pattern, "string"))
        elif pattern.startswith("%") and pattern.endswith("%") \
                and len(pattern) > 2 and "%" not in pattern[1:-1]:
            node = moa.Call("contains",
                            [subject,
                             moa.Literal(pattern[1:-1], "string")])
        elif pattern.endswith("%") and "%" not in pattern[:-1]:
            node = moa.Call("startswith",
                            [subject,
                             moa.Literal(pattern[:-1], "string")])
        elif pattern.startswith("%") and "%" not in pattern[1:]:
            node = moa.Call("endswith",
                            [subject,
                             moa.Literal(pattern[1:], "string")])
        else:
            raise SqlUnsupportedError(
                "LIKE pattern %r is not supported (only %%-wildcard "
                "prefix/suffix/containment shapes)" % pattern)
        return moa.UnOp("not", node) if expr.negated else node

    def _lower_inlist(self, expr, frame):
        kind = kind_of(expr.expr, self.scope)
        node = None
        for value in expr.values:
            part = moa.BinOp("=", self.lower_expr(expr.expr, frame),
                             self._operand(value, kind, frame))
            node = part if node is None else moa.BinOp("or", node, part)
        if node is None:
            raise SqlUnsupportedError("IN () with an empty list")
        return moa.UnOp("not", node) if expr.negated else node

    def _reject_subquery_expr(self, expr, frame):
        raise SqlUnsupportedError(
            "subquery %s is only supported as a top-level WHERE/HAVING "
            "conjunct" % expr.render())

    def _reject_star_expr(self, expr, frame):
        raise SqlUnsupportedError("* is only valid as the whole select "
                                  "list or inside count(*)")

    # ==================================================================
    # scalar aggregate queries (no GROUP BY) -> phases
    # ==================================================================
    def scalar_phases(self, expr, frame):
        """Phases computing one scalar select item; returns the index
        of the phase holding the final value."""
        value = self._scalar_expr(expr, frame)
        if isinstance(value, PhaseRef):
            return value.index
        self.phases.append(PyPhase(value))
        return len(self.phases) - 1

    def _scalar_expr(self, expr, frame):
        if isinstance(expr, ast.FuncCall) and expr.name in _AGGS:
            self.phases.append(MoaPhase(self._agg_over_set(expr, frame)))
            return PhaseRef(len(self.phases) - 1)
        if isinstance(expr, (ast.NumberLit, ast.StringLit, ast.DateLit)):
            return self._lower_literal(expr)
        if isinstance(expr, ast.BinExpr) \
                and expr.op in ("+", "-", "*", "/"):
            return moa.BinOp(_OP_MAP[expr.op],
                             self._scalar_expr(expr.left, frame),
                             self._scalar_expr(expr.right, frame))
        if isinstance(expr, ast.UnExpr) and expr.op == "-":
            return moa.UnOp("neg", self._scalar_expr(expr.operand, frame))
        raise SqlUnsupportedError(
            "aggregate query select item %s must combine aggregates "
            "and literals arithmetically" % expr.render())

    def _agg_over_set(self, call, frame):
        if call.name == "count":
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                return moa.Aggregate("count", frame.set)
            if len(call.args) != 1:
                raise SqlUnsupportedError("count() takes one argument")
            arg = self.lower_expr(call.args[0], frame)
            return moa.Aggregate(
                "count", moa.Project(frame.set, [(arg, None)]))
        if len(call.args) != 1 or isinstance(call.args[0], ast.Star):
            raise SqlUnsupportedError(
                "%s() takes exactly one expression" % call.name)
        arg = self.lower_expr(call.args[0], frame)
        return moa.Aggregate(call.name,
                             moa.Project(frame.set, [(arg, None)]))

    # ==================================================================
    # grouped queries -> nest + project (+ having/sort/top)
    # ==================================================================
    def _lower_grouped(self, frame):
        stmt = self.stmt
        key_renders = {e.render(): i
                       for i, e in enumerate(stmt.group_by)}
        nest_keys = [(self.lower_expr(e, frame), "_g%d" % (i + 1))
                     for i, e in enumerate(stmt.group_by)]
        nkeys = len(nest_keys)
        tree = moa.Nest(frame.set, nest_keys)
        proj_items, names, item_renders = [], [], {}
        for item in stmt.items:
            if isinstance(item, ast.Star):
                raise SqlUnsupportedError(
                    "* select list with GROUP BY is not supported")
            name = item.alias if item.alias is not None \
                else output_name(item)
            proj_items.append(
                (self._grouped_item(item.expr, frame, key_renders,
                                    nkeys), name))
            names.append(name)
            item_renders[item.expr.render()] = name
        pre_pred = post_pred = None
        if stmt.having is not None:
            mark = len(self.phases)
            try:
                post_pred = self._having_post(stmt.having, item_renders,
                                              set(names))
            except _NoPostHaving:
                del self.phases[mark:]
                pre_pred = self._having_pre(stmt.having, frame,
                                            key_renders, nkeys)
        if pre_pred is not None:
            tree = moa.Select(tree, [pre_pred])
        tree = moa.Project(tree, proj_items)
        if post_pred is not None:
            tree = moa.Select(tree, [post_pred])
        if stmt.order_by:
            sort_keys = []
            for expr, desc in stmt.order_by:
                name = self._order_post_name(expr, names, item_renders)
                if name is None:
                    raise SqlUnsupportedError(
                        "ORDER BY %s must name an output column of the "
                        "grouped query" % expr.render())
                sort_keys.append((moa.Attr(moa.Element(), name), desc))
            tree = moa.Sort(tree, sort_keys)
        if stmt.limit is not None:
            tree = moa.Top(tree, stmt.limit)
        return tree

    def _grouped_item(self, expr, frame, key_renders, nkeys):
        index = key_renders.get(expr.render())
        if index is not None:
            return moa.Pos(moa.Element(), index + 1)
        if isinstance(expr, ast.FuncCall) and expr.name in _AGGS:
            return self._agg_over_group(expr, frame, nkeys)
        if isinstance(expr, (ast.NumberLit, ast.StringLit, ast.DateLit)):
            return self._lower_literal(expr)
        if isinstance(expr, ast.BinExpr) \
                and expr.op in ("+", "-", "*", "/"):
            return moa.BinOp(_OP_MAP[expr.op],
                             self._grouped_item(expr.left, frame,
                                                key_renders, nkeys),
                             self._grouped_item(expr.right, frame,
                                                key_renders, nkeys))
        if isinstance(expr, ast.UnExpr) and expr.op == "-":
            return moa.UnOp("neg",
                            self._grouped_item(expr.operand, frame,
                                               key_renders, nkeys))
        raise SqlUnsupportedError(
            "select item %s is neither a GROUP BY key nor an aggregate"
            % expr.render())

    def _having_post(self, expr, item_renders, names):
        """HAVING over the *projected* tuple (the Moa Q11 shape:
        select[...](project(nest))); raises _NoPostHaving when the
        predicate mentions an unprojected aggregate."""
        name = item_renders.get(expr.render())
        if name is not None:
            return moa.Attr(moa.Element(), name)
        if isinstance(expr, ast.ColumnRef) and expr.table is None \
                and expr.column in names:
            return moa.Attr(moa.Element(), expr.column)
        if isinstance(expr, (ast.NumberLit, ast.StringLit, ast.DateLit)):
            return self._lower_literal(expr)
        if isinstance(expr, ast.ScalarSelect):
            return self._having_hole(expr)
        if isinstance(expr, ast.BinExpr):
            return moa.BinOp(_OP_MAP[expr.op],
                             self._having_post(expr.left, item_renders,
                                               names),
                             self._having_post(expr.right, item_renders,
                                               names))
        if isinstance(expr, ast.UnExpr):
            op = "not" if expr.op == "not" else "neg"
            return moa.UnOp(op, self._having_post(expr.operand,
                                                  item_renders, names))
        raise _NoPostHaving(expr.render())

    def _having_pre(self, expr, frame, key_renders, nkeys):
        """HAVING over the nest tuple, before projection — for
        predicates on aggregates that are not output columns."""
        if isinstance(expr, ast.BinExpr) and expr.op in (
                "and", "or", "=", "<>", "<", "<=", ">", ">="):
            return moa.BinOp(_OP_MAP[expr.op],
                             self._having_pre(expr.left, frame,
                                              key_renders, nkeys),
                             self._having_pre(expr.right, frame,
                                              key_renders, nkeys))
        if isinstance(expr, ast.UnExpr) and expr.op == "not":
            return moa.UnOp("not", self._having_pre(expr.operand, frame,
                                                    key_renders, nkeys))
        if isinstance(expr, ast.ScalarSelect):
            return self._having_hole(expr)
        return self._grouped_item(expr, frame, key_renders, nkeys)

    def _having_hole(self, sub):
        """An uncorrelated aggregate subquery compared against in
        HAVING: computed as earlier phases, substituted as a Hole."""
        select = sub.select
        if len(select.items) != 1 \
                or isinstance(select.items[0], ast.Star):
            raise SqlUnsupportedError(
                "scalar subquery must produce exactly one column")
        if select.group_by or select.order_by or select.limit is not None:
            raise SqlUnsupportedError(
                "scalar subquery must be a plain aggregate query")
        item_expr = select.items[0].expr
        if not _has_agg(item_expr):
            raise SqlUnsupportedError(
                "scalar subquery must aggregate (a single row cannot "
                "be guaranteed otherwise)")
        inner = _Lowering(select, self.phases, parent=self)
        inner_frame = inner.build_frame()
        if inner.corr:
            raise SqlUnsupportedError(
                "correlated scalar subquery in HAVING is not supported")
        index = inner.scalar_phases(item_expr, inner_frame)
        return Hole(index, _atom_for(kind_of(item_expr, inner.scope)))

    # ==================================================================
    # plain (ungrouped, non-aggregate) queries -> project (+ sort/top)
    # ==================================================================
    def _lower_plain(self, frame):
        stmt = self.stmt
        if len(stmt.items) == 1 and isinstance(stmt.items[0], ast.Star):
            sql_items = self._expand_star()
        else:
            sql_items = []
            for item in stmt.items:
                if isinstance(item, ast.Star):
                    raise SqlUnsupportedError(
                        "* mixed with other select items")
                name = item.alias if item.alias is not None \
                    else output_name(item)
                sql_items.append((item.expr, name))
        names = [name for _e, name in sql_items]
        item_renders = {e.render(): name for e, name in sql_items}
        pre_sort_keys = post_sort_keys = None
        if stmt.order_by:
            post_sort_keys = []
            for expr, desc in stmt.order_by:
                name = self._order_post_name(expr, names, item_renders)
                if name is None:
                    post_sort_keys = None
                    break
                post_sort_keys.append(
                    (moa.Attr(moa.Element(), name), desc))
            if post_sort_keys is None:
                pre_sort_keys = [(self.lower_expr(e, frame), d)
                                 for e, d in stmt.order_by]
        base = frame.set
        if pre_sort_keys is not None:
            base = moa.Sort(base, pre_sort_keys)
        tree = moa.Project(base, [(self.lower_expr(e, frame), name)
                                  for e, name in sql_items])
        if post_sort_keys is not None:
            tree = moa.Sort(tree, post_sort_keys)
        if stmt.limit is not None:
            tree = moa.Top(tree, stmt.limit)
        return tree

    def _expand_star(self):
        """``select *``: every column of every FROM item, in order."""
        out = []
        for from_item in self.stmt.from_items:
            alias = from_item.alias
            table = self.scope.tables[alias]
            for col_name in table.columns:
                out.append((ast.ColumnRef(alias, col_name), col_name))
        return out

    def _order_post_name(self, expr, names, item_renders):
        if isinstance(expr, ast.NumberLit) \
                and isinstance(expr.value, int):
            if 1 <= expr.value <= len(names):
                return names[expr.value - 1]
            raise SqlUnsupportedError(
                "ORDER BY position %d is out of range" % expr.value)
        if isinstance(expr, ast.ColumnRef) and expr.table is None \
                and expr.column in names:
            return expr.column
        return item_renders.get(expr.render())

    # ==================================================================
    # set-valued entry (top level, derived tables, subquery frames)
    # ==================================================================
    def lower_set(self):
        if not self.stmt.group_by:
            for item in self.stmt.items:
                if not isinstance(item, ast.Star) \
                        and _has_agg(item.expr):
                    raise SqlUnsupportedError(
                        "aggregate query without GROUP BY is scalar — "
                        "not usable as a table")
            if self.stmt.having is not None:
                raise SqlUnsupportedError(
                    "HAVING without GROUP BY is not supported")
        frame = self.build_frame()
        if self.stmt.group_by:
            return self._lower_grouped(frame)
        return self._lower_plain(frame)


class _NoPostHaving(Exception):
    """Internal: the HAVING predicate cannot be expressed over the
    projected tuple; fall back to a pre-projection select."""


_MIRROR = {"=": "=", "<>": "<>", "<": ">", "<=": ">=",
           ">": "<", ">=": "<="}


def _flip_args(pred):
    if isinstance(pred, ast.InSelect):
        return (pred.expr, pred.select, not pred.negated)
    return (pred.select, not pred.negated)


def _atom_for(kind):
    if kind in ("int", "double", "string", "char", "instant"):
        return kind
    raise SqlUnsupportedError(
        "a scalar subquery of kind %r cannot become a literal" % kind)


def lower_sql(stmt):
    """Lower a bound SQL AST to a :class:`~.runtime.LoweredQuery`."""
    if not isinstance(stmt, ast.SelectStmt):
        raise SqlUnsupportedError("only SELECT statements are supported")
    phases = []
    top = _Lowering(stmt, phases, parent=None)
    scalar = not stmt.group_by and any(
        _has_agg(item.expr) for item in stmt.items
        if not isinstance(item, ast.Star))
    if scalar:
        if len(stmt.items) != 1 or isinstance(stmt.items[0], ast.Star):
            raise SqlUnsupportedError(
                "aggregate query without GROUP BY must have exactly "
                "one select item")
        if stmt.order_by or stmt.limit is not None \
                or stmt.having is not None:
            raise SqlUnsupportedError(
                "ORDER BY / LIMIT / HAVING make no sense on a scalar "
                "aggregate query")
        frame = top.build_frame()
        top.scalar_phases(stmt.items[0].expr, frame)
    else:
        phases.append(MoaPhase(top.lower_set()))
    return LoweredQuery(phases)


_EXPR_DISPATCH = {
    "ColumnRef": _Lowering._lower_column,
    "NumberLit": _Lowering._lower_literal,
    "StringLit": _Lowering._lower_literal,
    "DateLit": _Lowering._lower_literal,
    "BinExpr": _Lowering._lower_binexpr,
    "UnExpr": _Lowering._lower_unexpr,
    "FuncCall": _Lowering._lower_funccall,
    "Extract": _Lowering._lower_extract,
    "CaseExpr": _Lowering._lower_case,
    "LikeExpr": _Lowering._lower_like,
    "InList": _Lowering._lower_inlist,
    "InSelect": _Lowering._reject_subquery_expr,
    "Exists": _Lowering._reject_subquery_expr,
    "ScalarSelect": _Lowering._reject_subquery_expr,
    "Star": _Lowering._reject_star_expr,
}

#: SQL AST node class name -> the lowering code that owns it.  Must
#: cover ast.NODE_CLASSES exactly (checked here and, statically, by
#: the analysis selfcheck's SQL-totality lint).
_LOWERS = {
    "SelectStmt": lower_sql,
    "SelectItem": _Lowering._lower_plain,
    "Star": _Lowering._expand_star,
    "TableRef": _Lowering._make_frames,
    "DerivedTable": _Lowering._make_frames,
    "ColumnRef": _Lowering._lower_column,
    "NumberLit": _Lowering._lower_literal,
    "StringLit": _Lowering._lower_literal,
    "DateLit": _Lowering._lower_literal,
    "BinExpr": _Lowering._lower_binexpr,
    "UnExpr": _Lowering._lower_unexpr,
    "FuncCall": _Lowering._lower_funccall,
    "Extract": _Lowering._lower_extract,
    "CaseExpr": _Lowering._lower_case,
    "LikeExpr": _Lowering._lower_like,
    "InList": _Lowering._lower_inlist,
    "InSelect": _Lowering._apply_membership,
    "Exists": _Lowering._apply_membership,
    "ScalarSelect": _Lowering._apply_scalar_subquery,
}

assert set(_LOWERS) == {cls.__name__ for cls in ast.NODE_CLASSES}, \
    "lowering does not cover the SQL AST exactly"
