"""SQLite differential oracle for the SQL front-end.

The same generated TPC-D dataset is loaded into an in-memory stdlib
``sqlite3`` database (keys are the object oids, dates are epoch-day
integers — the ``instant`` atom's representation), and every supported
query is executed both ways: through parse -> lower -> Moa/MIL and
through sqlite.  Row *sets* must match (after canonical ordering and
float tolerance); order is deliberately not compared for unsorted
queries, since SQL leaves it unspecified.

The oracle runs the **parsed AST**, re-rendered into sqlite dialect by
:func:`to_sqlite` — so both engines execute the identical tree:

* aliases are double-quoted (``as "order"`` — reserved words are fine
  as Moa-compatible output names),
* ``date '...'`` literals become epoch-day integers,
* ``extract(year from x)`` becomes ``strftime`` over epoch seconds,
* ``LIKE`` becomes ``GLOB`` (sqlite's LIKE is case-insensitive; GLOB
  matches the case-sensitive semantics of the MOA string calls).
"""

import sqlite3

from ..errors import SqlUnsupportedError
from ..moa.values import Ref, Row
from . import ast

_TABLES = ("region", "nation", "part", "supplier", "partsupp",
           "customer", "orders", "lineitem")

_SCHEMAS = {
    "region": "r_regionkey INTEGER, r_name TEXT, r_comment TEXT",
    "nation": "n_nationkey INTEGER, n_name TEXT, n_regionkey INTEGER",
    "part": ("p_partkey INTEGER, p_name TEXT, p_mfgr TEXT, "
             "p_brand TEXT, p_type TEXT, p_size INTEGER, "
             "p_container TEXT, p_retailprice REAL"),
    "supplier": ("s_suppkey INTEGER, s_name TEXT, s_address TEXT, "
                 "s_phone TEXT, s_acctbal REAL, s_nationkey INTEGER"),
    "partsupp": ("ps_suppkey INTEGER, ps_partkey INTEGER, "
                 "ps_supplycost REAL, ps_availqty INTEGER"),
    "customer": ("c_custkey INTEGER, c_name TEXT, c_address TEXT, "
                 "c_phone TEXT, c_acctbal REAL, c_nationkey INTEGER, "
                 "c_mktsegment TEXT"),
    "orders": ("o_orderkey INTEGER, o_custkey INTEGER, "
               "o_orderstatus TEXT, o_totalprice REAL, "
               "o_orderdate INTEGER, o_orderpriority TEXT, "
               "o_clerk TEXT, o_shippriority TEXT"),
    "lineitem": ("l_orderkey INTEGER, l_partkey INTEGER, "
                 "l_suppkey INTEGER, l_quantity INTEGER, "
                 "l_extendedprice REAL, l_discount REAL, l_tax REAL, "
                 "l_returnflag TEXT, l_linestatus TEXT, "
                 "l_shipdate INTEGER, l_commitdate INTEGER, "
                 "l_receiptdate INTEGER, l_shipinstruct TEXT, "
                 "l_shipmode TEXT"),
}


def load_oracle(dataset):
    """Load a generated TPC-D dataset into in-memory sqlite; returns
    the connection.  Keys are row indices (= the loader's oids)."""
    conn = sqlite3.connect(":memory:")
    tables = dataset.tables
    for name in _TABLES:
        conn.execute("CREATE TABLE %s (%s)" % (name, _SCHEMAS[name]))

    def rows(table, *columns):
        n = len(table[columns[0]])
        for i in range(n):
            yield (i,) + tuple(_py(table[c][i]) for c in columns)

    region = tables["region"]
    conn.executemany(
        "INSERT INTO region VALUES (?, ?, ?)",
        [(i, str(name), "region %d" % i)
         for i, name in enumerate(region["name"])])
    conn.executemany(
        "INSERT INTO nation VALUES (?, ?, ?)",
        rows(tables["nation"], "name", "region"))
    conn.executemany(
        "INSERT INTO part VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        rows(tables["part"], "name", "manufacturer", "brand", "type",
             "size", "container", "retailprice"))
    conn.executemany(
        "INSERT INTO supplier VALUES (?, ?, ?, ?, ?, ?)",
        rows(tables["supplier"], "name", "address", "phone", "acctbal",
             "nation"))
    ps = tables["partsupp"]
    conn.executemany(
        "INSERT INTO partsupp VALUES (?, ?, ?, ?)",
        [(_py(ps["supplier"][i]), _py(ps["part"][i]),
          _py(ps["cost"][i]), _py(ps["available"][i]))
         for i in range(len(ps["part"]))])
    conn.executemany(
        "INSERT INTO customer VALUES (?, ?, ?, ?, ?, ?, ?)",
        rows(tables["customer"], "name", "address", "phone", "acctbal",
             "nation", "mktsegment"))
    conn.executemany(
        "INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        rows(tables["orders"], "cust", "status", "totalprice",
             "orderdate", "orderpriority", "clerk", "shippriority"))
    item = tables["item"]
    item_cols = ("order", "part", "supplier", "quantity",
                 "extendedprice", "discount", "tax", "returnflag",
                 "linestatus", "shipdate", "commitdate", "receiptdate",
                 "shipinstruct", "shipmode")
    conn.executemany(
        "INSERT INTO lineitem VALUES "
        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        [tuple(_py(item[c][i]) for c in item_cols)
         for i in range(len(item["order"]))])
    conn.commit()
    return conn


def _py(value):
    """numpy scalar -> plain python for sqlite binding."""
    item = getattr(value, "item", None)
    return item() if item is not None else value


# ----------------------------------------------------------------------
# AST -> sqlite dialect
# ----------------------------------------------------------------------
def to_sqlite(node):
    if isinstance(node, ast.SelectStmt):
        parts = ["SELECT %s" % ", ".join(
            to_sqlite(i) for i in node.items)]
        parts.append("FROM %s" % ", ".join(
            to_sqlite(f) for f in node.from_items))
        if node.where is not None:
            parts.append("WHERE %s" % to_sqlite(node.where))
        if node.group_by:
            parts.append("GROUP BY %s" % ", ".join(
                to_sqlite(e) for e in node.group_by))
        if node.having is not None:
            parts.append("HAVING %s" % to_sqlite(node.having))
        if node.order_by:
            parts.append("ORDER BY %s" % ", ".join(
                "%s %s" % (to_sqlite(e), "DESC" if d else "ASC")
                for e, d in node.order_by))
        if node.limit is not None:
            parts.append("LIMIT %d" % node.limit)
        return " ".join(parts)
    if isinstance(node, ast.SelectItem):
        if node.alias is None:
            return to_sqlite(node.expr)
        return '%s AS "%s"' % (to_sqlite(node.expr), node.alias)
    if isinstance(node, ast.Star):
        return "*"
    if isinstance(node, ast.TableRef):
        if node.alias == node.name:
            return node.name
        return "%s %s" % (node.name, node.alias)
    if isinstance(node, ast.DerivedTable):
        return "(%s) %s" % (to_sqlite(node.select), node.alias)
    if isinstance(node, ast.ColumnRef):
        return node.render()
    if isinstance(node, ast.NumberLit):
        return repr(node.value)
    if isinstance(node, ast.StringLit):
        return "'%s'" % node.value.replace("'", "''")
    if isinstance(node, ast.DateLit):
        return str(node.days)
    if isinstance(node, ast.BinExpr):
        return "(%s %s %s)" % (to_sqlite(node.left), node.op,
                               to_sqlite(node.right))
    if isinstance(node, ast.UnExpr):
        return "(%s %s)" % (node.op, to_sqlite(node.operand))
    if isinstance(node, ast.FuncCall):
        return "%s(%s)" % (node.name, ", ".join(
            to_sqlite(a) for a in node.args))
    if isinstance(node, ast.Extract):
        return ("CAST(strftime('%%Y', (%s) * 86400, 'unixepoch') "
                "AS INTEGER)" % to_sqlite(node.expr))
    if isinstance(node, ast.CaseExpr):
        body = " ".join("WHEN %s THEN %s" % (to_sqlite(c), to_sqlite(v))
                        for c, v in node.whens)
        tail = "" if node.else_ is None \
            else " ELSE %s" % to_sqlite(node.else_)
        return "CASE %s%s END" % (body, tail)
    if isinstance(node, ast.LikeExpr):
        if any(c in node.pattern for c in "*?["):
            raise SqlUnsupportedError(
                "oracle cannot express LIKE pattern %r as GLOB"
                % node.pattern)
        glob = node.pattern.replace("%", "*").replace("_", "?")
        op = "NOT GLOB" if node.negated else "GLOB"
        return "(%s %s '%s')" % (to_sqlite(node.expr), op,
                                 glob.replace("'", "''"))
    if isinstance(node, ast.InList):
        op = "NOT IN" if node.negated else "IN"
        return "(%s %s (%s))" % (to_sqlite(node.expr), op, ", ".join(
            to_sqlite(v) for v in node.values))
    if isinstance(node, ast.InSelect):
        op = "NOT IN" if node.negated else "IN"
        return "(%s %s (%s))" % (to_sqlite(node.expr), op,
                                 to_sqlite(node.select))
    if isinstance(node, ast.Exists):
        op = "NOT EXISTS" if node.negated else "EXISTS"
        return "(%s (%s))" % (op, to_sqlite(node.select))
    if isinstance(node, ast.ScalarSelect):
        return "(%s)" % to_sqlite(node.select)
    raise SqlUnsupportedError("cannot render %r for sqlite" % node)


# ----------------------------------------------------------------------
# canonical comparison
# ----------------------------------------------------------------------
def _canon_value(value):
    if isinstance(value, Ref):
        return value.oid
    item = getattr(value, "item", None)
    if item is not None:                      # numpy scalar
        value = item()
    if hasattr(value, "toordinal"):           # datetime.date
        from ..monet.atoms import date_to_days
        return date_to_days(value.isoformat())
    if isinstance(value, bool):
        return int(value)
    return value


def canonical_rows(result):
    """Query result (ours or sqlite's) -> list of plain value tuples."""
    if result is None or isinstance(result, (int, float, str)):
        return [(_canon_value(result),)]
    out = []
    for row in result:
        if isinstance(row, Row):
            out.append(tuple(_canon_value(v) for v in row.values))
        elif isinstance(row, (tuple, list)):
            out.append(tuple(_canon_value(v) for v in row))
        else:
            out.append((_canon_value(row),))
    return out


def _sort_key(row):
    key = []
    for value in row:
        if value is None:
            key.append((0, 0, ""))
        elif isinstance(value, str):
            key.append((2, 0, value))
        else:
            key.append((1, round(float(value), 2), ""))
    return key


def _values_match(ours, theirs):
    if ours is None or theirs is None:
        # SUM over an empty set is NULL in SQL but 0/0.0 in the MOA
        # drivers' convention; accept either pairing of "nothing".
        return ours in (None, 0, 0.0) and theirs in (None, 0, 0.0)
    if isinstance(ours, str) or isinstance(theirs, str):
        return ours == theirs
    import math
    return math.isclose(float(ours), float(theirs),
                        rel_tol=1e-6, abs_tol=1e-6)


def rows_equivalent(ours, theirs):
    """Multiset equality of canonical rows under float tolerance."""
    if len(ours) != len(theirs):
        return False
    ours = sorted(ours, key=_sort_key)
    theirs = sorted(theirs, key=_sort_key)
    for mine, other in zip(ours, theirs):
        if len(mine) != len(other):
            return False
        if not all(_values_match(a, b) for a, b in zip(mine, other)):
            return False
    return True


def check_query(db, conn, text, sqlite_text=None):
    """Run ``text`` through both engines and compare; returns the row
    count on success, raises AssertionError with details otherwise.
    ``sqlite_text`` overrides the oracle side (tests use it to prove
    the harness catches an injected divergence)."""
    from .parser import parse_sql
    from .runtime import execute_sql
    stmt = parse_sql(text)
    ours = canonical_rows(execute_sql(db, text))
    if sqlite_text is None:
        sqlite_text = to_sqlite(stmt)
    theirs = canonical_rows(conn.execute(sqlite_text).fetchall())
    if not rows_equivalent(ours, theirs):
        raise AssertionError(
            "SQL/sqlite divergence for:\n%s\nours (%d rows): %r\n"
            "oracle (%d rows): %r"
            % (text.strip(), len(ours), ours[:5], len(theirs),
               theirs[:5]))
    return len(ours)


def run_differential(db, conn, queries):
    """Run a {name: sql} suite through :func:`check_query`; returns
    {name: row count}.  Raises on the first divergence."""
    return {name: check_query(db, conn, text)
            for name, text in queries.items()}
