"""Tokenizer + recursive-descent parser for the SQL subset.

Mirrors the structure of :mod:`repro.moa.parser`: a verbose token
regex, a token stream with position tracking, and one method per
grammar production.  Two error channels, both typed:

* :class:`~repro.errors.SqlParseError` — the text is not syntactically
  in the grammar (carries the character position, rendered line/col);
* :class:`~repro.errors.SqlUnsupportedError` — the construct is
  recognised SQL but outside the supported subset (window functions,
  outer joins, DISTINCT, set operations, IS NULL, simple CASE).

Canonicalisations applied while parsing (render is idempotent over
them): ``BETWEEN a AND b`` desugars to two comparisons, explicit
``JOIN ... ON`` folds into the FROM list + WHERE conjuncts, and
``date`` +/- ``interval`` arithmetic over literals folds into a single
:class:`~repro.sql.ast.DateLit`.
"""

import re

from ..errors import SqlParseError, SqlUnsupportedError
from ..monet.atoms import date_to_days, days_to_date
from . import ast

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|<>|!=|\|\||[=<>+\-*/])
  | (?P<sym>[(),.])
""", re.VERBOSE)

#: constructs we recognise and refuse with a typed error
_UNSUPPORTED_KEYWORDS = {
    "union": "set operations (UNION/INTERSECT/EXCEPT)",
    "intersect": "set operations (UNION/INTERSECT/EXCEPT)",
    "except": "set operations (UNION/INTERSECT/EXCEPT)",
    "distinct": "SELECT DISTINCT / aggregate DISTINCT",
    "over": "window functions (OVER)",
    "null": "NULL literals / IS NULL (the catalog has no NULLs)",
    "is": "IS [NOT] NULL (the catalog has no NULLs)",
}

_AGG_NAMES = ("sum", "count", "avg", "min", "max")

_CLAUSE_STOPPERS = frozenset((
    "from", "where", "group", "having", "order", "limit", "on",
    "join", "inner", "left", "right", "full", "cross", "union",
    "intersect", "except", "and", "or", "not", "then", "else", "when",
    "end", "asc", "desc", "in", "between", "like", "exists", "is",
    "by", "as", "distinct", "over"))


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind, text, position):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self):
        return "%s(%r)" % (self.kind, self.text)


def _tokenize(text):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SqlParseError(
                "unexpected character %r" % text[position],
                position, text)
        kind = match.lastgroup
        if kind != "ws":
            word = match.group()
            if kind == "ident":
                word = word.lower()
            tokens.append(_Token(kind, word, position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Interval:
    """Parsed ``interval 'n' unit`` — folded into date literals during
    additive parsing, never part of the AST."""

    __slots__ = ("months", "days")

    def __init__(self, months, days):
        self.months = months
        self.days = days


def _shift_date(days, interval, sign):
    date = days_to_date(days)
    months = date.year * 12 + (date.month - 1) \
        + sign * interval.months
    year, month = divmod(months, 12)
    day = min(date.day, _month_len(year, month + 1))
    shifted = date.replace(year=year, month=month + 1, day=day)
    return date_to_days(shifted) + sign * interval.days


def _month_len(year, month):
    if month == 2:
        leap = year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)
        return 29 if leap else 28
    return 30 if month in (4, 6, 9, 11) else 31


class Parser:
    """Recursive-descent parser over the SQL token stream."""

    def __init__(self, text):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing ------------------------------------------------
    def peek(self, offset=0):
        return self.tokens[min(self.index + offset,
                               len(self.tokens) - 1)]

    def next(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, text):
        token = self.next()
        if token.text != text:
            raise SqlParseError(
                "expected %r, found %r" % (text, token.text),
                token.position, self.text)
        return token

    def at(self, text):
        return self.peek().text == text

    def at_keyword(self, *words):
        token = self.peek()
        return token.kind == "ident" and token.text in words

    def accept(self, text):
        if self.at(text):
            self.next()
            return True
        return False

    def error(self, message):
        token = self.peek()
        raise SqlParseError(message + " (found %r)" % token.text,
                            token.position, self.text)

    def unsupported(self, what):
        raise SqlUnsupportedError("unsupported SQL: %s" % what)

    def _check_unsupported_keyword(self):
        token = self.peek()
        if token.kind == "ident" and token.text in _UNSUPPORTED_KEYWORDS:
            self.unsupported(_UNSUPPORTED_KEYWORDS[token.text])

    # -- entry ---------------------------------------------------------
    def parse(self):
        stmt = self.parse_select()
        self.accept(";")
        if self.peek().kind != "eof":
            self._check_unsupported_keyword()
            self.error("trailing input after statement")
        return stmt

    # -- statement -----------------------------------------------------
    def parse_select(self):
        self.expect("select")
        self._check_unsupported_keyword()
        items = self._select_items()
        self.expect("from")
        from_items, on_conjuncts = self._from_list()
        where = None
        if self.accept("where"):
            where = self.parse_expr()
        for conjunct in on_conjuncts:
            where = conjunct if where is None \
                else ast.BinExpr("and", where, conjunct)
        group_by = []
        if self.accept("group"):
            self.expect("by")
            group_by.append(self.parse_expr())
            while self.accept(","):
                group_by.append(self.parse_expr())
        having = None
        if self.accept("having"):
            having = self.parse_expr()
        order_by = []
        if self.accept("order"):
            self.expect("by")
            order_by.append(self._order_item())
            while self.accept(","):
                order_by.append(self._order_item())
        limit = None
        if self.accept("limit"):
            token = self.next()
            if token.kind != "number" or "." in token.text:
                raise SqlParseError(
                    "limit needs an integer, found %r" % token.text,
                    token.position, self.text)
            limit = int(token.text)
        self._check_unsupported_keyword()
        return ast.SelectStmt(items, from_items, where, group_by,
                              having, order_by, limit)

    def _select_items(self):
        if self.accept("*"):
            return [ast.Star()]
        items = [self._select_item()]
        while self.accept(","):
            items.append(self._select_item())
        return items

    def _select_item(self):
        expr = self.parse_expr()
        alias = None
        if self.accept("as"):
            alias = self._ident("alias")
        elif self.peek().kind == "ident" \
                and self.peek().text not in _CLAUSE_STOPPERS:
            alias = self._ident("alias")
        return ast.SelectItem(expr, alias)

    def _order_item(self):
        expr = self.parse_expr()
        descending = False
        if self.accept("desc"):
            descending = True
        else:
            self.accept("asc")
        return (expr, descending)

    def _ident(self, what):
        token = self.next()
        if token.kind != "ident":
            raise SqlParseError(
                "expected %s, found %r" % (what, token.text),
                token.position, self.text)
        return token.text

    # -- FROM ----------------------------------------------------------
    def _from_list(self):
        items, on_conjuncts = [self._from_item()], []
        while True:
            if self.accept(","):
                items.append(self._from_item())
                continue
            if self.at_keyword("left", "right", "full"):
                self.unsupported("outer joins")
            if self.at_keyword("cross"):
                self.next()
                self.expect("join")
                items.append(self._from_item())
                continue
            if self.at_keyword("inner", "join"):
                if self.accept("inner"):
                    self.expect("join")
                else:
                    self.next()
                items.append(self._from_item())
                self.expect("on")
                on_conjuncts.append(self.parse_expr())
                continue
            return items, on_conjuncts

    def _from_item(self):
        if self.at("("):
            self.next()
            select = self.parse_select()
            self.expect(")")
            self.accept("as")
            alias = self._ident("derived-table alias")
            return ast.DerivedTable(select, alias)
        name = self._ident("table name")
        alias = None
        if self.accept("as"):
            alias = self._ident("alias")
        elif self.peek().kind == "ident" \
                and self.peek().text not in _CLAUSE_STOPPERS:
            alias = self._ident("alias")
        return ast.TableRef(name, alias)

    # -- expressions ---------------------------------------------------
    def parse_expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept("or"):
            left = ast.BinExpr("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.accept("and"):
            left = ast.BinExpr("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.accept("not"):
            return ast.UnExpr("not", self._not_expr())
        return self._predicate()

    def _predicate(self):
        left = self._additive()
        token = self.peek()
        if token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.next()
            op = "<>" if token.text == "!=" else token.text
            return ast.BinExpr(op, left, self._additive())
        negated = False
        if self.at_keyword("not") and self.peek(1).text in (
                "between", "in", "like"):
            self.next()
            negated = True
        if self.accept("between"):
            low = self._additive()
            self.expect("and")
            high = self._additive()
            desugared = ast.BinExpr(
                "and", ast.BinExpr(">=", left, low),
                ast.BinExpr("<=", left, high))
            return ast.UnExpr("not", desugared) if negated else desugared
        if self.accept("in"):
            self.expect("(")
            if self.at_keyword("select"):
                select = self.parse_select()
                self.expect(")")
                return ast.InSelect(left, select, negated)
            values = [self.parse_expr()]
            while self.accept(","):
                values.append(self.parse_expr())
            self.expect(")")
            return ast.InList(left, values, negated)
        if self.accept("like"):
            token = self.next()
            if token.kind != "string":
                raise SqlParseError(
                    "like needs a string pattern, found %r"
                    % token.text, token.position, self.text)
            pattern = token.text[1:-1].replace("''", "'")
            return ast.LikeExpr(left, pattern, negated)
        if self.at_keyword("is"):
            self.unsupported(_UNSUPPORTED_KEYWORDS["is"])
        if negated:
            self.error("expected BETWEEN, IN or LIKE after NOT")
        return left

    def _additive(self):
        left = self._multiplicative()
        while self.peek().text in ("+", "-"):
            op = self.next().text
            right = self._interval_or_multiplicative()
            if isinstance(right, _Interval):
                if not isinstance(left, ast.DateLit):
                    self.unsupported(
                        "interval arithmetic on non-literal dates")
                left = ast.DateLit(_shift_date(
                    left.days, right, 1 if op == "+" else -1))
            else:
                left = ast.BinExpr(op, left, right)
        return left

    def _interval_or_multiplicative(self):
        if self.at_keyword("interval"):
            return self._interval()
        return self._multiplicative()

    def _interval(self):
        self.expect("interval")
        token = self.next()
        if token.kind != "string":
            raise SqlParseError(
                "interval needs a quoted count, found %r" % token.text,
                token.position, self.text)
        try:
            count = int(token.text[1:-1])
        except ValueError:
            raise SqlParseError(
                "interval count must be an integer, found %s"
                % token.text, token.position, self.text) from None
        unit = self._ident("interval unit")
        if unit == "year":
            return _Interval(12 * count, 0)
        if unit == "month":
            return _Interval(count, 0)
        if unit == "day":
            return _Interval(0, count)
        self.unsupported("interval unit %r" % unit)

    def _multiplicative(self):
        left = self._unary()
        while self.peek().text in ("*", "/"):
            op = self.next().text
            left = ast.BinExpr(op, left, self._unary())
        return left

    def _unary(self):
        if self.at("-"):
            self.next()
            operand = self._unary()
            if isinstance(operand, ast.NumberLit):
                return ast.NumberLit(-operand.value)
            return ast.UnExpr("-", operand)
        if self.at("+"):
            self.next()
            return self._unary()
        return self._primary()

    def _primary(self):
        token = self.peek()
        if token.text == "||":
            self.unsupported("string concatenation (||)")
        if token.kind == "number":
            self.next()
            if "." in token.text or "e" in token.text \
                    or "E" in token.text:
                return ast.NumberLit(float(token.text))
            return ast.NumberLit(int(token.text))
        if token.kind == "string":
            self.next()
            return ast.StringLit(token.text[1:-1].replace("''", "'"))
        if token.text == "(":
            self.next()
            if self.at_keyword("select"):
                select = self.parse_select()
                self.expect(")")
                return ast.ScalarSelect(select)
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind != "ident":
            self.error("expected an expression")
        if token.text in _UNSUPPORTED_KEYWORDS:
            self.unsupported(_UNSUPPORTED_KEYWORDS[token.text])
        if token.text == "date":
            self.next()
            lit = self.next()
            if lit.kind != "string":
                raise SqlParseError(
                    "date literal needs a quoted ISO date, found %r"
                    % lit.text, lit.position, self.text)
            try:
                days = date_to_days(lit.text[1:-1])
            except Exception:
                raise SqlParseError(
                    "malformed date literal %s" % lit.text,
                    lit.position, self.text) from None
            return ast.DateLit(days)
        if token.text == "interval":
            self.unsupported("interval outside date +/- arithmetic")
        if token.text == "case":
            return self._case()
        if token.text == "extract":
            return self._extract()
        if token.text == "exists":
            self.next()
            self.expect("(")
            select = self.parse_select()
            self.expect(")")
            return ast.Exists(select)
        name = self._ident("expression")
        if self.at("("):
            self.next()
            if self.accept("*"):
                args = [ast.Star()]
            elif self.at(")"):
                args = []
            else:
                self._check_unsupported_keyword()
                args = [self.parse_expr()]
                while self.accept(","):
                    args.append(self.parse_expr())
            self.expect(")")
            if self.at_keyword("over"):
                self.unsupported(_UNSUPPORTED_KEYWORDS["over"])
            return ast.FuncCall(name, args)
        if self.accept("."):
            column = self._ident("column name")
            return ast.ColumnRef(name, column)
        return ast.ColumnRef(None, name)

    def _case(self):
        self.expect("case")
        if not self.at_keyword("when"):
            self.unsupported("simple CASE (use searched CASE WHEN)")
        whens = []
        while self.accept("when"):
            cond = self.parse_expr()
            self.expect("then")
            whens.append((cond, self.parse_expr()))
        else_ = None
        if self.accept("else"):
            else_ = self.parse_expr()
        self.expect("end")
        return ast.CaseExpr(whens, else_)

    def _extract(self):
        self.expect("extract")
        self.expect("(")
        field = self._ident("extract field")
        if field != "year":
            self.unsupported("extract(%s ...) — only year" % field)
        self.expect("from")
        expr = self.parse_expr()
        self.expect(")")
        return ast.Extract(field, expr)


def parse_sql(text):
    """Parse SQL text into a :class:`~repro.sql.ast.SelectStmt`.

    Raises :class:`~repro.errors.SqlParseError` on syntax errors (with
    line/column position) and
    :class:`~repro.errors.SqlUnsupportedError` on recognised-but-
    unsupported constructs."""
    if not isinstance(text, str) or not text.strip():
        raise SqlParseError("empty SQL text", 0, text or "")
    return Parser(text).parse()
