"""Execution of lowered SQL queries.

A lowered query is a list of *phases*, mirroring how the hand-written
TPC-D drivers in :mod:`repro.tpcd.queries` handle SQL's scalar
subqueries (Q11/Q14/Q15 are two-phase there): each phase is either

* a ``moa`` phase — a MOA set or aggregate tree, possibly containing
  :class:`Hole` placeholders to be filled with the scalar results of
  earlier phases (as typed literals), compiled and executed through
  the exact pipeline the Moa text path uses (resolve -> rewrite ->
  verify -> MIL); or
* a ``py`` phase — scalar arithmetic combining earlier phase results
  in Python, e.g. Q14's ``100.0 * promo / total`` (no MIL operator
  works on two scalars, and doing this in Python is precisely what
  the Moa drivers do).

The query's result is the last phase's value.  :class:`PreparedSql`
is the serving-path object: hole-free phases compile once (and pass
admission budgets once); holed phases re-resolve per execution after
their literals are known.
"""

from ..errors import SqlUnsupportedError
from ..moa import ast as moa_ast
from ..moa.rewriter import rewrite
from ..moa.typecheck import resolve


class Hole(moa_ast.Node):
    """Placeholder for the scalar result of an earlier phase; replaced
    by a typed :class:`~repro.moa.ast.Literal` before resolution."""

    __slots__ = ("index", "atom_name")

    def __init__(self, index, atom_name):
        self.index = index
        self.atom_name = atom_name

    def render(self):
        return "$%d" % self.index


class PhaseRef(moa_ast.Node):
    """Reference to an earlier phase's value inside a ``py`` phase."""

    __slots__ = ("index",)

    def __init__(self, index):
        self.index = index

    def render(self):
        return "$%d" % self.index


class MoaPhase:
    __slots__ = ("tree",)
    kind = "moa"

    def __init__(self, tree):
        self.tree = tree

    @property
    def has_holes(self):
        return any(isinstance(n, Hole) for n in moa_ast.walk(self.tree))

    def render(self):
        return self.tree.render()


class PyPhase:
    """Scalar combination of earlier phases: a tree of PhaseRef,
    Literal, BinOp(+,-,*,/) and UnOp(neg) nodes."""

    __slots__ = ("expr",)
    kind = "py"

    def __init__(self, expr):
        self.expr = expr

    def render(self):
        return self.expr.render()


class LoweredQuery:
    """Ordered phases; the last phase's value is the query result."""

    __slots__ = ("phases", "text")

    def __init__(self, phases, text=None):
        self.phases = list(phases)
        self.text = text

    def render(self):
        return "\n".join("phase %d [%s]: %s" % (i, p.kind, p.render())
                         for i, p in enumerate(self.phases))


# ----------------------------------------------------------------------
# hole substitution (structure-preserving MOA tree copy)
# ----------------------------------------------------------------------
def _copy_moa(node, values):
    a = moa_ast
    if isinstance(node, Hole):
        return a.Literal(_coerce(values[node.index], node.atom_name),
                         node.atom_name)
    if isinstance(node, a.Extent):
        return a.Extent(node.class_name)
    if isinstance(node, a.Select):
        return a.Select(_copy_moa(node.input, values),
                        [_copy_moa(p, values) for p in node.predicates])
    if isinstance(node, a.Project):
        return a.Project(_copy_moa(node.input, values),
                         [(_copy_moa(e, values), n)
                          for e, n in node.items])
    if isinstance(node, a.Join):
        return a.Join(_copy_moa(node.left, values),
                      _copy_moa(node.right, values),
                      _copy_moa(node.left_key, values),
                      _copy_moa(node.right_key, values))
    if isinstance(node, a.Semijoin):
        return a.Semijoin(_copy_moa(node.left, values),
                          _copy_moa(node.right, values),
                          _copy_moa(node.left_key, values),
                          _copy_moa(node.right_key, values),
                          anti=node.anti)
    if isinstance(node, a.SetOp):
        return a.SetOp(node.kind, _copy_moa(node.left, values),
                       _copy_moa(node.right, values))
    if isinstance(node, a.Nest):
        return a.Nest(_copy_moa(node.input, values),
                      [(_copy_moa(e, values), n) for e, n in node.keys],
                      node.group_name)
    if isinstance(node, a.Unnest):
        return a.Unnest(_copy_moa(node.input, values), node.attr)
    if isinstance(node, a.Sort):
        return a.Sort(_copy_moa(node.input, values),
                      [(_copy_moa(e, values), d) for e, d in node.keys])
    if isinstance(node, a.Top):
        return a.Top(_copy_moa(node.input, values), node.n)
    if isinstance(node, a.Element):
        return a.Element()
    if isinstance(node, a.Name):
        return a.Name(node.name)
    if isinstance(node, a.Attr):
        return a.Attr(_copy_moa(node.base, values), node.name)
    if isinstance(node, a.Pos):
        return a.Pos(_copy_moa(node.base, values), node.index)
    if isinstance(node, a.Literal):
        return a.Literal(node.value, node.atom_name)
    if isinstance(node, a.BinOp):
        return a.BinOp(node.op, _copy_moa(node.left, values),
                       _copy_moa(node.right, values))
    if isinstance(node, a.UnOp):
        return a.UnOp(node.op, _copy_moa(node.operand, values))
    if isinstance(node, a.Call):
        return a.Call(node.fname,
                      [_copy_moa(x, values) for x in node.args])
    if isinstance(node, a.Aggregate):
        return a.Aggregate(node.func, _copy_moa(node.input, values))
    if isinstance(node, a.TupleCons):
        return a.TupleCons([(_copy_moa(e, values), n)
                            for e, n in node.items])
    if isinstance(node, a.In):
        return a.In(_copy_moa(node.item, values),
                    _copy_moa(node.input, values))
    raise SqlUnsupportedError("cannot copy MOA node %r" % node)


def fill_holes(tree, values):
    """A copy of ``tree`` with every Hole replaced by a Literal."""
    return _copy_moa(tree, values)


def _coerce(value, atom_name):
    if value is None:
        raise SqlUnsupportedError(
            "a scalar subquery produced no value (empty input)")
    if atom_name == "double":
        return float(value)
    if atom_name in ("int", "long"):
        return int(value)
    return value


# ----------------------------------------------------------------------
# py-phase evaluation (mirrors the drivers' float arithmetic)
# ----------------------------------------------------------------------
def eval_py(expr, values):
    a = moa_ast
    if isinstance(expr, PhaseRef):
        value = values[expr.index]
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return int(value)
        try:
            return float(value)
        except (TypeError, ValueError):
            return value
    if isinstance(expr, a.Literal):
        return expr.value
    if isinstance(expr, a.BinOp):
        left = eval_py(expr.left, values)
        right = eval_py(expr.right, values)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            # the Q14 driver's convention: x / 0 -> 0.0, not an error
            return left / right if right else 0.0
        raise SqlUnsupportedError("py phase cannot apply %r" % expr.op)
    if isinstance(expr, a.UnOp) and expr.op == "neg":
        return -eval_py(expr.operand, values)
    raise SqlUnsupportedError("py phase cannot evaluate %r" % expr)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
class PreparedSql:
    """A lowered SQL query bound to a database, ready to re-execute.

    Hole-free moa phases are compiled (resolve + rewrite) once here —
    and budget-checked once, so a rejected plan never gets cached —
    matching what the plan cache does for Moa text.  Holed phases are
    re-resolved per run once their literals are known (they are tiny
    scalar-threshold queries; the heavy phases have no holes)."""

    def __init__(self, db, lowered, budget=None, catalog=None):
        self.db = db
        self.lowered = lowered
        self._compiled = []
        for phase in lowered.phases:
            if phase.kind == "moa" and not phase.has_holes:
                compiled = self._compile(phase.tree, budget, catalog)
            else:
                compiled = None
            self._compiled.append(compiled)
        self._budget = budget
        self._catalog = catalog

    def _compile(self, tree, budget, catalog):
        resolved = resolve(tree, self.db.schema)
        compiled = rewrite(resolved, self.db.flat)
        if budget is not None:
            from ..analysis.verify import check_program
            check_program(compiled.program, catalog=catalog,
                          budget=budget)
        return compiled

    def run(self):
        values = []
        for phase, compiled in zip(self.lowered.phases, self._compiled):
            if phase.kind == "py":
                values.append(eval_py(phase.expr, values))
                continue
            if compiled is None:
                tree = fill_holes(phase.tree, values)
                compiled = self._compile(tree, self._budget,
                                         self._catalog)
            values.append(self.db.run_compiled(compiled))
        return values[-1]


def prepare_sql(db, text, budget=None, catalog=None):
    """Parse, bind and lower SQL text against ``db``; returns a
    :class:`PreparedSql`."""
    from .lower import lower_sql
    from .parser import parse_sql
    lowered = lower_sql(parse_sql(text))
    lowered.text = text
    return PreparedSql(db, lowered, budget=budget, catalog=catalog)


def execute_sql(db, text):
    """One-shot: parse, lower, execute; returns rows (or the scalar
    for aggregate-only queries), exactly like the Moa path."""
    return prepare_sql(db, text).run()
