"""SQL formulations of the reproduced TPC-D queries (and extras).

Each entry mirrors the hand-written MOA formulation in
:mod:`repro.tpcd.queries` *structurally* — same output column names,
same aggregate order, same predicate order — so the lowered plans
produce results that are checksum-identical to the Moa path (the
bench ``sql`` section hard-gates on this).  Output aliases matter:
``result_checksum`` hashes Row field names, so e.g. Q3 must alias
``l_orderkey`` to ``order`` exactly as the Moa text names it.

``EXTRAS`` exercises TPC-H constructs beyond the 15 reproduced
queries (CASE, LIKE shapes, date arithmetic, IN lists, NOT EXISTS,
scalar subqueries in predicates); they are verified against the
sqlite oracle only.  ``GAPS`` names the TPC-H queries (of the 22)
the front-end cannot lower yet, with the blocking construct.
"""

_REV = "l_extendedprice * (1.0 - l_discount)"


def _build(number, params):
    return _BUILDERS[number](params)


def _q1(p):
    return """
select l_returnflag as returnflag, l_linestatus as linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(%(rev)s) as sum_disc_price,
       sum(%(rev)s * (1.0 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date '%(date)s'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus
""" % {"rev": _REV, "date": p["date"]}


def _q2(p):
    return """
select s_acctbal, s_name, n_name, p_name, p_mfgr, s_address, s_phone,
       ps_supplycost as cost
from partsupp, supplier, nation, region, part
where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey and ps_partkey = p_partkey
  and r_name = '%(region)s' and p_size = %(size)d
  and p_type like '%%%(type)s'
  and ps_supplycost = (
    select min(ps_supplycost)
    from partsupp, supplier, nation, region
    where ps_partkey = p_partkey and ps_suppkey = s_suppkey
      and s_nationkey = n_nationkey and n_regionkey = r_regionkey
      and r_name = '%(region)s')
order by s_acctbal desc, n_name, p_name
limit 100
""" % p


def _q3(p):
    return """
select l_orderkey as order, sum(%(rev)s) as revenue,
       o_orderdate as odate, o_shippriority as ship
from customer, orders, lineitem
where c_custkey = o_custkey and l_orderkey = o_orderkey
  and l_shipdate > date '%(date)s'
  and c_mktsegment = '%(segment)s' and o_orderdate < date '%(date)s'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, odate
limit 10
""" % {"rev": _REV, "date": p["date"], "segment": p["segment"]}


def _q4(p):
    return """
select o_orderpriority as orderpriority, count(*) as order_count
from orders
where o_orderdate >= date '%(d1)s' and o_orderdate < date '%(d2)s'
  and exists (select * from lineitem
              where l_orderkey = o_orderkey
                and l_commitdate < l_receiptdate)
group by o_orderpriority
order by o_orderpriority
""" % p


def _q5(p):
    return """
select n_name as nation, sum(%(rev)s) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and o_orderdate >= date '%(d1)s' and o_orderdate < date '%(d2)s'
  and r_name = '%(region)s' and c_nationkey = s_nationkey
group by n_name
order by revenue desc
""" % {"rev": _REV, "d1": p["d1"], "d2": p["d2"],
       "region": p["region"]}


def _q6(p):
    return """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '%(d1)s' and l_shipdate < date '%(d2)s'
  and l_discount between %(disc_lo)s and %(disc_hi)s
  and l_quantity < %(qty)d
""" % p


def _q7(p):
    return """
select supp_nation, cust_nation, lyear, sum(volume) as revenue
from (select n1.n_name as supp_nation, n2.n_name as cust_nation,
             extract(year from l_shipdate) as lyear,
             %(rev)s as volume
      from supplier, lineitem, orders, customer, nation n1, nation n2
      where s_suppkey = l_suppkey and o_orderkey = l_orderkey
        and c_custkey = o_custkey and s_nationkey = n1.n_nationkey
        and c_nationkey = n2.n_nationkey
        and l_shipdate >= date '%(d1)s' and l_shipdate <= date '%(d2)s'
        and ((n1.n_name = '%(n1)s' and n2.n_name = '%(n2)s')
          or (n1.n_name = '%(n2)s' and n2.n_name = '%(n1)s'))
     ) shipping
group by supp_nation, cust_nation, lyear
order by supp_nation, cust_nation, lyear
""" % {"rev": _REV, "d1": p["d1"], "d2": p["d2"],
       "n1": p["nation1"], "n2": p["nation2"]}


def _q8(p):
    return """
select oyear,
       sum(case when snation = '%(nation)s' then volume else 0.0 end)
         / sum(volume) as mkt_share
from (select extract(year from o_orderdate) as oyear,
             %(rev)s as volume, n2.n_name as snation
      from lineitem, orders, customer, nation n1, region, supplier,
           nation n2, part
      where p_partkey = l_partkey and o_orderkey = l_orderkey
        and c_custkey = o_custkey and c_nationkey = n1.n_nationkey
        and n1.n_regionkey = r_regionkey and s_suppkey = l_suppkey
        and s_nationkey = n2.n_nationkey
        and p_type = '%(type)s' and r_name = '%(region)s'
        and o_orderdate >= date '%(d1)s'
        and o_orderdate <= date '%(d2)s'
     ) all_nations
group by oyear
order by oyear
""" % {"rev": _REV, "nation": p["nation"], "type": p["type"],
       "region": p["region"], "d1": p["d1"], "d2": p["d2"]}


def _q9(p):
    return """
select nation, oyear, sum(amount) as profit
from (select n_name as nation, extract(year from o_orderdate) as oyear,
             %(rev)s - ps_supplycost * l_quantity as amount
      from lineitem, partsupp, part, orders, supplier, nation
      where l_suppkey = ps_suppkey and l_partkey = ps_partkey
        and p_partkey = l_partkey and o_orderkey = l_orderkey
        and s_suppkey = l_suppkey and s_nationkey = n_nationkey
        and p_name like '%%%(colour)s%%'
     ) profit
group by nation, oyear
order by nation, oyear desc
""" % {"rev": _REV, "colour": p["colour"]}


def _q10(p):
    return """
select c_custkey as cust, c_name, c_acctbal, n_name, sum(%(rev)s) as revenue
from customer, orders, lineitem, nation
where c_custkey = o_custkey and l_orderkey = o_orderkey
  and c_nationkey = n_nationkey
  and l_returnflag = 'R'
  and o_orderdate >= date '%(d1)s' and o_orderdate < date '%(d2)s'
group by c_custkey, c_name, c_acctbal, n_name
order by revenue desc
limit 20
""" % {"rev": _REV, "d1": p["d1"], "d2": p["d2"]}


def _q11(p):
    return """
select ps_partkey as part, sum(ps_supplycost * ps_availqty) as stock
from partsupp, supplier, nation
where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
  and n_name = '%(nation)s'
group by ps_partkey
having sum(ps_supplycost * ps_availqty) > (
    select sum(ps_supplycost * ps_availqty) * %(fraction)r
    from partsupp, supplier, nation
    where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
      and n_name = '%(nation)s')
order by stock desc
""" % p


def _q12(p):
    urgent = ("o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH'")
    return """
select l_shipmode as shipmode,
       sum(case when %(urgent)s then 1 else 0 end) as high_count,
       sum(case when %(urgent)s then 0 else 1 end) as low_count
from orders, lineitem
where o_orderkey = l_orderkey
  and (l_shipmode = '%(m1)s' or l_shipmode = '%(m2)s')
  and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
  and l_receiptdate >= date '%(d1)s' and l_receiptdate < date '%(d2)s'
group by l_shipmode
order by l_shipmode
""" % {"urgent": urgent, "m1": p["mode1"], "m2": p["mode2"],
       "d1": p["d1"], "d2": p["d2"]}


def _q13(p):
    return """
select extract(year from o_orderdate) as year, sum(%(rev)s) as loss
from orders, lineitem
where o_orderkey = l_orderkey
  and o_clerk = '%(clerk)s' and l_returnflag = 'R'
group by extract(year from o_orderdate)
order by year
""" % {"rev": _REV, "clerk": p["clerk"]}


def _q14(p):
    return """
select 100.0 * sum(case when p_type like 'PROMO%%'
                        then %(rev)s else 0.0 end)
             / sum(%(rev)s) as promo_revenue
from lineitem, part
where l_partkey = p_partkey
  and l_shipdate >= date '%(d1)s' and l_shipdate < date '%(d2)s'
""" % {"rev": _REV, "d1": p["d1"], "d2": p["d2"]}


_Q15_REVENUE = """(select l_suppkey as supplier, sum(%(rev)s) as total_revenue
      from lineitem
      where l_shipdate >= date '%(d1)s' and l_shipdate < date '%(d2)s'
      group by l_suppkey) revenue"""


def _q15(p):
    revenue = _Q15_REVENUE % {"rev": _REV, "d1": p["d1"], "d2": p["d2"]}
    return """
select s_name, s_address, s_phone, total_revenue
from supplier, %(revenue)s
where s_suppkey = supplier
  and total_revenue = (select max(total_revenue) from %(revenue)s)
order by s_name
""" % {"revenue": revenue}


_BUILDERS = {1: _q1, 2: _q2, 3: _q3, 4: _q4, 5: _q5, 6: _q6, 7: _q7,
             8: _q8, 9: _q9, 10: _q10, 11: _q11, 12: _q12, 13: _q13,
             14: _q14, 15: _q15}


def sql_text(number, overrides=None):
    """The SQL formulation of reproduced query ``number``, with the
    same default parameters as the Moa formulation."""
    from ..tpcd.queries import QUERIES
    return _build(number, QUERIES[number].params(overrides)).strip()


def sql_queries(overrides=None):
    """{number: sql text} for every reproduced query."""
    return {n: sql_text(n, overrides) for n in sorted(_BUILDERS)}


#: Additional TPC-H constructs beyond the 15 reproduced queries,
#: verified against the sqlite oracle (name -> SQL).
EXTRAS = {
    "in_list": """
select l_shipmode as shipmode, count(*) as n
from lineitem
where l_shipmode in ('MAIL', 'SHIP', 'AIR')
group by l_shipmode
order by l_shipmode
""",
    "not_in_list": """
select o_orderpriority as priority, count(*) as n
from orders
where o_orderpriority not in ('1-URGENT', '2-HIGH')
group by o_orderpriority
order by o_orderpriority
""",
    "not_exists": """
select c_custkey as cust, c_acctbal as acctbal
from customer
where c_acctbal > 9000.0
  and not exists (select * from orders where o_custkey = c_custkey)
order by acctbal desc
""",
    "scalar_pred": """
select s_suppkey as supplier, s_acctbal as acctbal
from supplier
where s_acctbal > (select avg(s_acctbal) from supplier)
order by acctbal desc
""",
    "case_like_date": """
select extract(year from l_shipdate) as year,
       sum(case when p_type like 'PROMO%' then 1 else 0 end) as promo,
       count(*) as total
from lineitem, part
where l_partkey = p_partkey
  and l_shipdate >= date '1995-01-01' - interval '1' year
  and l_shipdate < date '1995-01-01' + interval '2' year
group by extract(year from l_shipdate)
order by year
""",
    "semijoin_in": """
select o_orderkey as order, o_totalprice as total
from orders
where o_totalprice > 150000.0
  and o_orderkey in (select l_orderkey from lineitem
                     where l_quantity >= 48)
order by total desc
""",
}

#: TPC-H queries (of the 22) the front-end cannot lower yet.
GAPS = {
    16: "COUNT(DISTINCT ps_suppkey) — no distinct aggregate in MIL "
        "mapping yet",
    17: "scalar subquery correlated on a non-output aggregate "
        "(0.2 * avg(l_quantity)) compared with <",
    18: "IN over a grouped HAVING subquery producing keys",
    19: "OR of multi-column conjunct groups mixing part and lineitem "
        "predicates (needs disjunctive join predicate)",
    20: "nested IN/scalar chain: IN over partsupp filtered by a "
        "correlated scalar subquery on lineitem",
    21: "EXISTS/NOT EXISTS with inequality correlation "
        "(l2.l_suppkey <> l1.l_suppkey)",
    22: "substring() on phone numbers and NOT EXISTS + scalar avg "
        "over a filtered customer set",
}
