"""TPC-D substrate: generator, nested schema, queries, baselines.

The paper "slightly adapted TPC-D to fit an object-oriented context"
(section 1); this package contains everything needed to rerun its
section 6 experiments at laptop scale: a deterministic DBGEN
equivalent, the Figure 1 nested MOA schema, MOA formulations of
Q1-Q15, an independent reference oracle, the bulk-load pipeline, and
an n-ary row-store baseline playing the role of the relational
comparator.
"""

from .dbgen import CURRENT_DATE, TPCDDataset, generate
from .loader import (LoadReport, load_tpcd, open_tpcd, peek_tpcd_meta,
                     save_tpcd)
from .queries import QUERIES, TPCDQuery
from .reference import REFERENCES, reference
from .rowstore import RowStore, open_rowstore, save_rowstore_tables
from .schema import tpcd_schema

__all__ = [
    "CURRENT_DATE", "TPCDDataset", "generate",
    "LoadReport", "load_tpcd", "open_tpcd", "peek_tpcd_meta",
    "save_tpcd",
    "QUERIES", "TPCDQuery",
    "REFERENCES", "reference",
    "RowStore", "open_rowstore", "save_rowstore_tables",
    "tpcd_schema",
]
