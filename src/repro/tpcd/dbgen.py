"""Deterministic, scalable TPC-D data generator (DBGEN equivalent).

The paper loads the official 1 GB DBGEN output; offline we synthesise
an equivalent database at a configurable scale factor.  Cardinalities
follow the spec (per SF=1: 10 k suppliers, 200 k parts, 150 k
customers, 1.5 M orders, ~6 M lineitems, 25 nations, 5 regions) and the
value distributions preserve the properties the queries select on:

* order dates uniform over 1992-01-01 .. 1998-08-02,
* ship/commit/receipt dates offset from the order date like the spec,
* returnflag R/A for items received before the current date
  (1995-06-17), N after — so Q1/Q10/Q13 selectivities match,
* part types composed of the spec's three syllable lists ("PROMO
  BURNISHED BRASS"), sizes 1..50, names containing colour words,
* each part supplied by (up to) 4 suppliers with independent cost and
  availability, reflected in the *nested* Supplier.supplies set,
* clerks drawn from a pool of 1000*SF names, so a one-clerk selection
  (Q13) has selectivity ~1/(1000*SF).

Everything is driven by one ``numpy`` PCG64 generator seeded from the
``seed`` argument: equal (scale, seed) pairs produce identical
databases on every platform.

Two views of the same data are produced:

* ``dataset.data`` — the logical object store used by the MOA layer
  (flattening input and reference-evaluator input),
* ``dataset.tables`` — columnar arrays per *relational* table
  (region, nation, supplier, customer, part, partsupp, orders, item),
  used by the row-store baseline of :mod:`repro.tpcd.rowstore`.
"""

import datetime

import numpy as np

from ..errors import DBGenError
from ..monet.atoms import date_to_days
from . import text

#: TPC-D "current date" used for returnflag / linestatus rules
CURRENT_DATE = date_to_days(datetime.date(1995, 6, 17))
START_DATE = date_to_days(datetime.date(1992, 1, 1))
END_DATE = date_to_days(datetime.date(1998, 8, 2))


class TPCDDataset:
    """The generated database, in logical and columnar form."""

    def __init__(self, scale, seed, data, tables, counts):
        self.scale = scale
        self.seed = seed
        self.data = data
        self.tables = tables
        self.counts = counts

    def __repr__(self):
        return ("TPCDDataset(scale=%g, seed=%d, %s)"
                % (self.scale, self.seed,
                   ", ".join("%s=%d" % kv for kv in
                             sorted(self.counts.items()))))


def _count(base, scale, minimum):
    return max(minimum, int(round(base * scale)))


def generate(scale=0.001, seed=42):
    """Generate a TPC-D database at the given scale factor."""
    if scale <= 0:
        raise DBGenError("scale factor must be positive")
    rng = np.random.Generator(np.random.PCG64(seed))
    counts = {
        "region": len(text.REGIONS),
        "nation": len(text.NATIONS),
        "supplier": _count(10_000, scale, 3),
        "part": _count(200_000, scale, 8),
        "customer": _count(150_000, scale, 5),
        "order": _count(1_500_000, scale, 20),
        # keep a reasonably sized clerk pool even at tiny scale, so a
        # one-clerk selection (Q13) stays low-selectivity as in the
        # paper (s ~ 0.001 at SF 1)
        "clerk": _count(1_000, scale, 25),
    }
    tables = {}
    tables["region"] = {"name": np.array(text.REGIONS, dtype=object)}
    tables["nation"] = {
        "name": np.array([n for n, _r in text.NATIONS], dtype=object),
        "region": np.array([r for _n, r in text.NATIONS], dtype=np.int64),
    }
    _gen_supplier(rng, counts, tables)
    _gen_part(rng, counts, tables)
    _gen_partsupp(rng, counts, tables)
    _gen_customer(rng, counts, tables)
    _gen_orders_items(rng, counts, tables)
    counts["item"] = len(tables["item"]["order"])
    counts["partsupp"] = len(tables["partsupp"]["part"])
    data = _logical_view(tables)
    return TPCDDataset(scale, seed, data, tables, counts)


def _gen_supplier(rng, counts, tables):
    n = counts["supplier"]
    nation = rng.integers(0, counts["nation"], size=n)
    tables["supplier"] = {
        "name": np.array([text.supplier_name(i) for i in range(n)],
                         dtype=object),
        "address": np.array(["addr sup %d" % i for i in range(n)],
                            dtype=object),
        "phone": np.array([text.phone(int(nation[i]), i)
                           for i in range(n)], dtype=object),
        "acctbal": np.round(rng.uniform(-999.99, 9999.99, size=n), 2),
        "nation": nation.astype(np.int64),
    }


def _gen_part(rng, counts, tables):
    n = counts["part"]
    syllable_1 = rng.integers(0, len(text.TYPE_SYLLABLE_1), size=n)
    syllable_2 = rng.integers(0, len(text.TYPE_SYLLABLE_2), size=n)
    syllable_3 = rng.integers(0, len(text.TYPE_SYLLABLE_3), size=n)
    types = np.array(["%s %s %s" % (text.TYPE_SYLLABLE_1[a],
                                    text.TYPE_SYLLABLE_2[b],
                                    text.TYPE_SYLLABLE_3[c])
                      for a, b, c in zip(syllable_1, syllable_2,
                                         syllable_3)], dtype=object)
    colour_idx = rng.integers(0, len(text.PART_COLOURS), size=(n, 2))
    names = np.array(["%s %s part %d"
                      % (text.PART_COLOURS[int(a)],
                         text.PART_COLOURS[int(b)], i)
                      for i, (a, b) in enumerate(colour_idx)],
                     dtype=object)
    manufacturer = rng.integers(1, 6, size=n)
    container = np.array(["%s %s"
                          % (text.CONTAINERS_1[int(a)],
                             text.CONTAINERS_2[int(b)])
                          for a, b in zip(
                              rng.integers(0, len(text.CONTAINERS_1),
                                           size=n),
                              rng.integers(0, len(text.CONTAINERS_2),
                                           size=n))], dtype=object)
    # spec retail price formula: 90000 + (i%20001)/10 + 100*(i%1000),
    # all divided by 100
    indices = np.arange(n)
    retail = (90000 + (indices % 20001) / 10.0 + 100 * (indices % 1000)) \
        / 100.0
    tables["part"] = {
        "name": names,
        "manufacturer": np.array(["Manufacturer#%d" % m
                                  for m in manufacturer], dtype=object),
        "brand": np.array([text.brand(int(m), i)
                           for i, m in enumerate(manufacturer)],
                          dtype=object),
        "type": types,
        "size": rng.integers(1, 51, size=n).astype(np.int64),
        "container": container,
        "retailprice": np.round(retail, 2),
    }


def _gen_partsupp(rng, counts, tables):
    n_part = counts["part"]
    n_supp = counts["supplier"]
    per_part = min(4, n_supp)
    parts = np.repeat(np.arange(n_part), per_part)
    # spec formula: supplier of part p, copy k = (p + k*(S/4 + floor))
    # % S — spreads suppliers; a plain stride keeps the same property
    offsets = np.tile(np.arange(per_part), n_part)
    supps = (parts + offsets * max(1, n_supp // per_part)
             + offsets) % n_supp
    n = len(parts)
    tables["partsupp"] = {
        "part": parts.astype(np.int64),
        "supplier": supps.astype(np.int64),
        "cost": np.round(rng.uniform(1.0, 1000.0, size=n), 2),
        "available": rng.integers(1, 10_000, size=n).astype(np.int64),
    }


def _gen_customer(rng, counts, tables):
    n = counts["customer"]
    nation = rng.integers(0, counts["nation"], size=n)
    tables["customer"] = {
        "name": np.array([text.customer_name(i) for i in range(n)],
                         dtype=object),
        "address": np.array(["addr cust %d" % i for i in range(n)],
                            dtype=object),
        "phone": np.array([text.phone(int(nation[i]), i + 7)
                           for i in range(n)], dtype=object),
        "acctbal": np.round(rng.uniform(-999.99, 9999.99, size=n), 2),
        "nation": nation.astype(np.int64),
        "mktsegment": np.array(text.MARKET_SEGMENTS, dtype=object)[
            rng.integers(0, len(text.MARKET_SEGMENTS), size=n)],
    }


def _gen_orders_items(rng, counts, tables):
    n_order = counts["order"]
    n_customer = counts["customer"]
    # the spec populates orders for two thirds of the customers
    eligible = max(1, (n_customer * 2) // 3)
    cust = rng.integers(0, eligible, size=n_order).astype(np.int64)
    orderdate = rng.integers(START_DATE, END_DATE + 1,
                             size=n_order).astype(np.int32)
    priorities = np.array(text.ORDER_PRIORITIES, dtype=object)[
        rng.integers(0, len(text.ORDER_PRIORITIES), size=n_order)]
    clerks = np.array([text.clerk_name(int(c)) for c in
                       rng.integers(0, counts["clerk"], size=n_order)],
                      dtype=object)

    items_per_order = rng.integers(1, 8, size=n_order)
    n_item = int(items_per_order.sum())
    item_order = np.repeat(np.arange(n_order), items_per_order)
    part = rng.integers(0, counts["part"], size=n_item).astype(np.int64)
    # the supplier comes from the part's supplier list (partsupp)
    per_part = min(4, counts["supplier"])
    copy = rng.integers(0, per_part, size=n_item)
    ps_part = tables["partsupp"]["part"]
    ps_supp = tables["partsupp"]["supplier"]
    supplier = ps_supp[part * per_part + copy]

    quantity = rng.integers(1, 51, size=n_item).astype(np.int64)
    retail = tables["part"]["retailprice"][part]
    extendedprice = np.round(quantity * retail, 2)
    discount = np.round(rng.integers(0, 11, size=n_item) / 100.0, 2)
    tax = np.round(rng.integers(0, 9, size=n_item) / 100.0, 2)

    odate_per_item = orderdate[item_order].astype(np.int64)
    shipdate = (odate_per_item
                + rng.integers(1, 122, size=n_item)).astype(np.int32)
    commitdate = (odate_per_item
                  + rng.integers(30, 91, size=n_item)).astype(np.int32)
    receiptdate = (shipdate
                   + rng.integers(1, 31, size=n_item)).astype(np.int32)

    returned = receiptdate <= CURRENT_DATE
    coin = rng.random(size=n_item) < 0.5
    returnflag = np.where(returned, np.where(coin, "R", "A"), "N")
    returnflag = returnflag.astype(object)
    linestatus = np.where(shipdate <= CURRENT_DATE, "F", "O").astype(object)

    shipmode = np.array(text.SHIP_MODES, dtype=object)[
        rng.integers(0, len(text.SHIP_MODES), size=n_item)]
    shipinstruct = np.array(text.SHIP_INSTRUCTIONS, dtype=object)[
        rng.integers(0, len(text.SHIP_INSTRUCTIONS), size=n_item)]

    # order status: F when all its items shipped, O when none, else P
    shipped = (linestatus == "F").astype(np.int64)
    shipped_per_order = np.bincount(item_order, weights=shipped,
                                    minlength=n_order)
    status = np.where(shipped_per_order == items_per_order, "F",
                      np.where(shipped_per_order == 0, "O", "P"))
    status = status.astype(object)
    line_total = extendedprice * (1.0 - discount) * (1.0 + tax)
    totalprice = np.round(np.bincount(item_order, weights=line_total,
                                      minlength=n_order), 2)

    tables["orders"] = {
        "cust": cust,
        "status": status,
        "totalprice": totalprice,
        "orderdate": orderdate,
        "orderpriority": priorities,
        "clerk": clerks,
        "shippriority": np.array(["0"] * n_order, dtype=object),
    }
    tables["item"] = {
        "part": part,
        "supplier": supplier.astype(np.int64),
        "order": item_order.astype(np.int64),
        "quantity": quantity,
        "returnflag": returnflag,
        "linestatus": linestatus,
        "extendedprice": extendedprice,
        "discount": discount,
        "tax": tax,
        "shipdate": shipdate,
        "commitdate": commitdate,
        "receiptdate": receiptdate,
        "shipmode": shipmode,
        "shipinstruct": shipinstruct,
    }


def _logical_view(tables):
    """Build the logical object store (nested, per Figure 1)."""
    data = {}
    data["Region"] = {
        oid: {"name": name, "comment": "region %d" % oid}
        for oid, name in enumerate(tables["region"]["name"])}
    data["Nation"] = {
        oid: {"name": tables["nation"]["name"][oid],
              "region": int(tables["nation"]["region"][oid])}
        for oid in range(len(tables["nation"]["name"]))}

    supplies_by_supplier = {}
    ps = tables["partsupp"]
    for position in range(len(ps["part"])):
        supplies_by_supplier.setdefault(
            int(ps["supplier"][position]), []).append({
                "part": int(ps["part"][position]),
                "cost": float(ps["cost"][position]),
                "available": int(ps["available"][position]),
            })
    sup = tables["supplier"]
    data["Supplier"] = {
        oid: {"name": sup["name"][oid], "address": sup["address"][oid],
              "phone": sup["phone"][oid],
              "acctbal": float(sup["acctbal"][oid]),
              "nation": int(sup["nation"][oid]),
              "supplies": supplies_by_supplier.get(oid, [])}
        for oid in range(len(sup["name"]))}

    part = tables["part"]
    data["Part"] = {
        oid: {"name": part["name"][oid],
              "manufacturer": part["manufacturer"][oid],
              "brand": part["brand"][oid], "type": part["type"][oid],
              "size": int(part["size"][oid]),
              "container": part["container"][oid],
              "retailPrice": float(part["retailprice"][oid])}
        for oid in range(len(part["name"]))}

    orders_by_customer = {}
    for oid, cust in enumerate(tables["orders"]["cust"]):
        orders_by_customer.setdefault(int(cust), []).append(oid)
    cus = tables["customer"]
    data["Customer"] = {
        oid: {"name": cus["name"][oid], "address": cus["address"][oid],
              "phone": cus["phone"][oid],
              "acctbal": float(cus["acctbal"][oid]),
              "nation": int(cus["nation"][oid]),
              "mktsegment": cus["mktsegment"][oid],
              "orders": orders_by_customer.get(oid, [])}
        for oid in range(len(cus["name"]))}

    items_by_order = {}
    for oid, order in enumerate(tables["item"]["order"]):
        items_by_order.setdefault(int(order), []).append(oid)
    orders = tables["orders"]
    data["Order"] = {
        oid: {"cust": int(orders["cust"][oid]),
              "item": items_by_order.get(oid, []),
              "status": orders["status"][oid],
              "totalprice": float(orders["totalprice"][oid]),
              "orderdate": int(orders["orderdate"][oid]),
              "orderpriority": orders["orderpriority"][oid],
              "clerk": orders["clerk"][oid],
              "shippriority": orders["shippriority"][oid]}
        for oid in range(len(orders["cust"]))}

    item = tables["item"]
    data["Item"] = {
        oid: {"part": int(item["part"][oid]),
              "supplier": int(item["supplier"][oid]),
              "order": int(item["order"][oid]),
              "quantity": int(item["quantity"][oid]),
              "returnflag": item["returnflag"][oid],
              "linestatus": item["linestatus"][oid],
              "extendedprice": float(item["extendedprice"][oid]),
              "discount": float(item["discount"][oid]),
              "tax": float(item["tax"][oid]),
              "shipdate": int(item["shipdate"][oid]),
              "commitdate": int(item["commitdate"][oid]),
              "receiptdate": int(item["receiptdate"][oid]),
              "shipmode": item["shipmode"][oid],
              "shipinstruct": item["shipinstruct"][oid]}
        for oid in range(len(item["part"]))}
    return data
