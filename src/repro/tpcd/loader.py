"""TPC-D bulk load pipeline with phase timings (paper section 6).

Reproduces the three load phases the paper reports:

1. bulk load of the generated database into BATs ("using its bulk load
   utility, which took 1:28 hour" — properties key/ordered/synced are
   set by the loader),
2. extent + datavector creation ("took about half an hour"),
3. reordering all attribute BATs on tail values ("an additional hour").

Returns a :class:`LoadReport` with per-phase wall-clock seconds and
the resulting catalog sizes (the paper's "1.6 GB of disk space, of
which 300 MB in data vectors, 1.3 GB as base data" row).
"""

import time

from ..moa.mapping import create_datavectors, reorder_on_tail
from ..moa.session import MOADatabase
from .schema import tpcd_schema


class LoadReport:
    """Phase timings + catalog sizes of one load run."""

    def __init__(self, load_s, datavector_s, reorder_s, base_bytes,
                 vector_bytes):
        self.load_s = load_s
        self.datavector_s = datavector_s
        self.reorder_s = reorder_s
        self.base_bytes = base_bytes
        self.vector_bytes = vector_bytes

    @property
    def total_s(self):
        return self.load_s + self.datavector_s + self.reorder_s

    @property
    def total_bytes(self):
        return self.base_bytes + self.vector_bytes

    def format_table(self):
        rows = [
            ("ascii import / bulk load", self.load_s),
            ("extent + datavector creation", self.datavector_s),
            ("reorder all tables on tail", self.reorder_s),
            ("total", self.total_s),
        ]
        lines = ["%-32s %10s" % ("load phase", "seconds")]
        for label, seconds in rows:
            lines.append("%-32s %10.2f" % (label, seconds))
        lines.append("%-32s %10.1f MB (base %0.1f + vectors %0.1f)"
                     % ("database size", self.total_bytes / 1e6,
                        self.base_bytes / 1e6, self.vector_bytes / 1e6))
        return "\n".join(lines)


def load_tpcd(dataset, kernel=None):
    """Load a generated dataset; returns (MOADatabase, LoadReport)."""
    db = MOADatabase(tpcd_schema(), kernel=kernel)

    started = time.perf_counter()
    db.load(dataset.data)
    load_s = time.perf_counter() - started
    base_bytes = db.kernel.total_bytes()

    started = time.perf_counter()
    create_datavectors(db.flat)
    datavector_s = time.perf_counter() - started
    vector_bytes = _vector_bytes(db.kernel)

    started = time.perf_counter()
    reorder_on_tail(db.flat)
    reorder_s = time.perf_counter() - started

    report = LoadReport(load_s, datavector_s, reorder_s, base_bytes,
                        vector_bytes)
    return db, report


def _vector_bytes(kernel):
    total = 0
    for name in kernel.names():
        bat = kernel.get(name)
        accel = bat.accel.get("datavector")
        if accel is not None:
            for heap in accel.vector.heaps:
                total += heap.nbytes
    return total
